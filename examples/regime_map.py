#!/usr/bin/env python
"""Strategy advisor: numeric period optimization and a protocol regime map.

The paper's headline message is a *comparison*: none of NoFT,
PurePeriodicCkpt, BiPeriodicCkpt and ABFT&PeriodicCkpt dominates everywhere
-- each wins a region of the platform-parameter space, provided each runs at
its own optimal checkpointing period (Equation 11).  This example walks the
three layers of :mod:`repro.optimize` that turn the comparison into data:

1. :func:`repro.optimize.optimize_period` finds a protocol's optimal
   period(s) *numerically* (scanning bracket + Brent refinement, NumPy
   only), and agrees with the Equation 11 closed form to ~1e-9 relative
   error where the closed form exists -- while also handling protocols and
   regimes where it does not (zero checkpoint cost, MTBF <= D + R, and any
   third-party protocol registered with a ``period``-like knob).

2. :func:`repro.optimize.refine_period` re-optimizes the analytical optimum
   against the Monte-Carlo engine: a geometric fan of candidate periods is
   simulated (vectorized engine where supported), cached per candidate, and
   the lowest simulated mean waste wins.

3. :func:`repro.optimize.compute_regime_map` sweeps a
   (nodes x per-node MTBF x checkpoint cost x ABFT overhead) grid, runs the
   optimization in every cell and names the winner, reproducing the paper's
   strategy-crossover narrative as an ASCII table and a deterministic JSON
   document.

Run with::

    python examples/regime_map.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import ApplicationWorkload, ResilienceParameters
from repro.optimize import (
    RegimeMapSpec,
    compute_regime_map,
    optimize_period,
    refine_period,
)
from repro.utils.units import DAY, MINUTE, YEAR


def optimize_one_protocol() -> None:
    """Layer 1: the numeric optimum vs the Equation 11 closed form."""
    parameters = ResilienceParameters.from_scalars(
        platform_mtbf=120 * MINUTE,
        checkpoint=10 * MINUTE,
        recovery=10 * MINUTE,
        downtime=1 * MINUTE,
    )
    workload = ApplicationWorkload.single_epoch(1 * DAY, alpha=0.8)
    for protocol in ("PurePeriodicCkpt", "BiPeriodicCkpt", "ABFT&PeriodicCkpt"):
        optimum = optimize_period(protocol, parameters, workload)
        print(f"{protocol}: minimal waste {optimum.waste:.4f}")
        for keyword in sorted(optimum.periods):
            print(
                f"  {keyword} = {optimum.periods[keyword]:.2f} s "
                f"(Eq. 11: {optimum.closed_form[keyword]:.2f} s, "
                f"relative error {optimum.relative_error(keyword):.1e})"
            )


def refine_against_simulation(cache_dir: Path) -> None:
    """Layer 2: simulation-backed refinement, resumable via the cache."""
    parameters = ResilienceParameters.from_scalars(
        platform_mtbf=120 * MINUTE,
        checkpoint=10 * MINUTE,
        recovery=10 * MINUTE,
        downtime=1 * MINUTE,
    )
    workload = ApplicationWorkload.single_epoch(1 * DAY, alpha=0.8)
    refined = refine_period(
        "PurePeriodicCkpt",
        parameters,
        workload,
        runs=100,
        seed=2014,
        backend="auto",  # vectorized engine: PurePeriodicCkpt supports it
        cache_dir=cache_dir,
        points=5,
        rounds=2,
    )
    best = refined.best
    assert best is not None
    print(
        f"analytical period {refined.analytical.period():.1f} s "
        f"(model waste {refined.analytical.waste:.4f}) -> refined "
        f"{best.periods['period']:.1f} s "
        f"(simulated waste {best.waste_mean:.4f}, scale {refined.shift:.3f}x)"
    )
    resumed = refine_period(
        "PurePeriodicCkpt",
        parameters,
        workload,
        runs=100,
        seed=2014,
        backend="auto",
        cache_dir=cache_dir,
        points=5,
        rounds=2,
    )
    print(
        f"resumed refinement: {resumed.computed} campaigns computed, "
        f"{resumed.cached} loaded from the cache"
    )


def build_regime_map(cache_dir: Path) -> None:
    """Layer 3: who wins where, over a 3 x 3 platform grid."""
    spec = RegimeMapSpec(
        node_counts=(1_000, 10_000, 100_000),
        node_mtbf_values=(5 * YEAR, 25 * YEAR, 125 * YEAR),
        checkpoint_costs=(10 * MINUTE,),
        abft_overheads=(1.03,),
        application_time=1 * DAY,
    )
    regime_map = compute_regime_map(spec, cache_dir=cache_dir)
    print(regime_map.to_ascii())
    counts = regime_map.winner_counts()
    print("cells won:", ", ".join(f"{k}: {v}" for k, v in counts.items()))
    path = regime_map.save(cache_dir / "regime_map.json")
    print(f"deterministic JSON map written to {path}")


def main() -> None:
    print("== numeric period optimization vs Equation 11 ==")
    optimize_one_protocol()
    with tempfile.TemporaryDirectory() as tmp:
        print("\n== simulation-backed refinement ==")
        refine_against_simulation(Path(tmp) / "refine-cache")
        print("\n== regime map ==")
        build_regime_map(Path(tmp) / "regime-cache")


if __name__ == "__main__":
    main()
