#!/usr/bin/env python
"""The unified Scenario API: one declarative spec drives every layer.

A :class:`repro.ScenarioSpec` describes an experiment as *protocol set x
failure law x platform costs x workload x sweep axes x simulation settings*.
This example shows the full life cycle:

1. build a spec fluently (start from the paper's Figure 7 scenario, swap
   the failure law for a bursty Weibull, keep two protocols, shrink the
   grid so the example runs in seconds);
2. serialize it to JSON and read it back (`from_dict(to_dict(s)) == s` --
   the same file format `python -m repro.cli scenario run` consumes);
3. run it end-to-end through the campaign layer and inspect the output;
4. demonstrate the guard rails: the analytical column is only an
   exponential-equivalent reference under a non-exponential law, and
   unknown names fail with a nearest-match suggestion.

Run with::

    python examples/custom_scenario.py
"""

from __future__ import annotations

import tempfile
import warnings
from pathlib import Path

from repro import Scenario, ScenarioSpec
from repro.core.registry import UnknownProtocolError, resolve_protocol
from repro.scenario import ExponentialAssumptionWarning
from repro.utils import MINUTE


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Build a scenario fluently.
    # ------------------------------------------------------------------ #
    spec = (
        Scenario.paper_figure7()
        .named("weibull-burstiness-demo")
        .with_failures("weibull", shape=0.7)  # bursty: k < 1
        .with_protocols("BiPeriodicCkpt", "ABFT&PeriodicCkpt")
        .with_sweep(
            mtbf_values=[60 * MINUTE, 120 * MINUTE, 240 * MINUTE],
            alpha_values=[0.2, 0.8],
        )
        .with_simulation(runs=40, seed=2014)
        .build()
    )
    print(spec.describe())

    # ------------------------------------------------------------------ #
    # 2. JSON round trip -- the exact file format of `scenario run`.
    # ------------------------------------------------------------------ #
    with tempfile.TemporaryDirectory() as tmp:
        path = spec.save(Path(tmp) / "scenario.json")
        reloaded = ScenarioSpec.load(path)
        assert reloaded == spec
        print(f"round-tripped through {path.name}: specs are equal")

    # ------------------------------------------------------------------ #
    # 3. Run end-to-end (simulators + campaign layer).  The analytical
    #    column assumes exponential failures, so a warning is emitted and
    #    the model values are only a reference here.
    # ------------------------------------------------------------------ #
    from repro import run_scenario

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ExponentialAssumptionWarning)
        outcome = run_scenario(spec)
    print(outcome.to_table().to_text())

    # ------------------------------------------------------------------ #
    # 4. Guard rails.
    # ------------------------------------------------------------------ #
    bound = spec.resolve("abft", mtbf=120 * MINUTE)
    print(
        "resolved triple:",
        type(bound.model).__name__,
        type(bound.simulator).__name__,
        type(bound.failure_model).__name__,
    )
    print("alias lookup: 'composite' ->", resolve_protocol("composite").name)
    try:
        resolve_protocol("BiPeriodikCkpt")
    except UnknownProtocolError as exc:
        print(f"unknown names are actionable: {exc}")


if __name__ == "__main__":
    main()
