#!/usr/bin/env python
"""Running campaigns at scale: parallel Monte-Carlo + resumable sweeps.

The paper's validation averages 1000 independent simulated executions per
parameter point and sweeps the whole (MTBF, alpha) plane for the Figure 7
heatmaps.  This example shows the two campaign primitives that make that
tractable:

1. :class:`repro.ParallelMonteCarloExecutor` fans the trials of one
   Monte-Carlo campaign out over a process pool.  Trial ``i`` derives its
   random stream from ``SeedSequence(entropy=seed, spawn_key=(i,))`` --
   exactly as the serial runner does -- so the same root seed produces
   bit-identical summary statistics for any worker count (verified below).

2. :class:`repro.SweepRunner` materialises an (MTBF, alpha) grid as a
   resumable job.  Every completed grid point is stored as one JSON file in
   a cache directory, keyed by the parameters, the point coordinates, the
   protocol list and the simulation settings; rerunning the job (after a
   crash, or to extend the grid) recomputes only the missing points.  When
   no simulation is requested, the analytical heatmaps are evaluated in one
   vectorised NumPy pass.

Run with::

    python examples/parallel_campaign.py
"""

from __future__ import annotations

import tempfile

from repro import (
    ApplicationWorkload,
    ParallelMonteCarloExecutor,
    PurePeriodicCkptSimulator,
    ResilienceParameters,
    SweepJob,
    SweepRunner,
    run_monte_carlo,
)
from repro.utils import DAY, MINUTE


def main() -> None:
    parameters = ResilienceParameters.from_scalars(
        platform_mtbf=120 * MINUTE,
        checkpoint=10 * MINUTE,
        recovery=10 * MINUTE,
        downtime=1 * MINUTE,
        library_fraction=0.8,
        abft_overhead=1.03,
        abft_reconstruction=2.0,
    )
    workload = ApplicationWorkload.single_epoch(1 * DAY, 0.8, library_fraction=0.8)

    # ------------------------------------------------------------------ #
    # 1. Parallel Monte-Carlo campaign: bit-identical to the serial path.
    # ------------------------------------------------------------------ #
    simulator = PurePeriodicCkptSimulator(parameters, workload)
    serial = run_monte_carlo(simulator.simulate_once, runs=200, seed=2014)
    executor = ParallelMonteCarloExecutor(workers=4)  # backend="process"
    parallel = executor.run(simulator.simulate_once, runs=200, seed=2014)
    print("Monte-Carlo campaign, 200 runs, seed 2014")
    print(f"  serial   mean waste : {serial.waste.mean!r}")
    print(f"  parallel mean waste : {parallel.waste.mean!r}")
    print(f"  bit-identical       : {parallel.waste == serial.waste}")

    # ------------------------------------------------------------------ #
    # 2. Resumable sweep with an on-disk cache.
    # ------------------------------------------------------------------ #
    job = SweepJob(
        parameters=parameters,
        application_time=1 * DAY,
        mtbf_values=(60 * MINUTE, 120 * MINUTE, 240 * MINUTE),
        alpha_values=(0.0, 0.4, 0.8),
        simulate=True,          # also run a small simulation per point
        simulation_runs=50,
        seed=2014,
    )
    with tempfile.TemporaryDirectory() as cache_dir:
        first = SweepRunner(cache_dir=cache_dir, workers=4).run(job)
        print("\nSweep, first run (cold cache)")
        print(f"  computed points : {first.computed_points}")
        print(f"  cached points   : {first.cached_points}")

        # A second runner -- think "restarted after a crash" -- finds every
        # point in the cache and recomputes nothing.
        resumed = SweepRunner(cache_dir=cache_dir, workers=4).run(job)
        print("Sweep, resumed run (warm cache)")
        print(f"  computed points : {resumed.computed_points}")
        print(f"  cached points   : {resumed.cached_points}")
        print(f"  identical data  : {resumed.points == first.points}")

    print("\nWaste at (MTBF=120 min, alpha=0.8):")
    for name in job.protocols:
        point = next(
            p for p in first.points if p.mtbf == 120 * MINUTE and p.alpha == 0.8
        )
        print(
            f"  {name:<20} model {point.model_waste[name]:.4f}"
            f"  simulated {point.simulated_waste[name]:.4f}"
        )


if __name__ == "__main__":
    main()
