#!/usr/bin/env python
"""Regenerate the weak-scalability study (Figures 8, 9 and 10).

The study evaluates the three protocols while the machine grows from one
thousand to one million nodes under Gustafson weak scaling.  Three scenarios
are considered:

* **Figure 8** -- both phases are O(n^3) kernels (alpha stays at 0.8) and the
  checkpoint cost grows linearly with the total memory;
* **Figure 9** -- the GENERAL phase is an O(n^2) update (constant time), so
  alpha grows with the machine (0.55 -> 0.975);
* **Figure 10** -- like Figure 9 but with a constant 60 s checkpoint cost
  (perfectly scalable buddy/NVRAM checkpoint storage).

For each scenario the script prints the waste and expected-failure series of
the paper and the node count at which the composite protocol overtakes pure
periodic checkpointing.  Both readings of the platform-MTBF scaling are
reported (see EXPERIMENTS.md for the discussion).

Run with::

    python examples/weak_scaling_study.py
"""

from __future__ import annotations

from repro.application.scaling import ScalingMode
from repro.experiments import run_figure8, run_figure9, run_figure10


def report(result) -> None:
    print()
    print(result.to_table().to_text())
    crossover = result.crossover_node_count()
    if crossover is None:
        print("ABFT&PeriodicCkpt never overtakes PurePeriodicCkpt in this range")
    else:
        print(
            f"ABFT&PeriodicCkpt overtakes PurePeriodicCkpt at {crossover:,} nodes"
        )


def main() -> None:
    for mtbf_scaling, label in (
        (ScalingMode.INVERSE, "platform MTBF shrinking with the node count (paper text)"),
        (ScalingMode.CONSTANT, "platform MTBF held at its 10k-node value (figure calibration)"),
    ):
        print("=" * 78)
        print(f"MTBF scaling: {label}")
        print("=" * 78)
        report(run_figure8(mtbf_scaling=mtbf_scaling))
        report(run_figure9(mtbf_scaling=mtbf_scaling))
        report(run_figure10(mtbf_scaling=mtbf_scaling))


if __name__ == "__main__":
    main()
