#!/usr/bin/env python
"""Regenerate Figure 7: waste heatmaps and model validation.

Figure 7 of the paper shows, for each protocol, the waste over a grid of
platform MTBFs (60-240 minutes) and LIBRARY-time ratios alpha (0-1), plus the
difference between the waste measured by the discrete-event simulator and the
waste predicted by the model.

This example prints the model heatmap as an ASCII table (one block per
protocol) and runs the simulation validation on a reduced grid so it
completes in a few seconds.  Use ``python -m repro.cli figure7 --validate``
for the full-resolution campaign.

Run with::

    python examples/figure7_waste_heatmaps.py
"""

from __future__ import annotations

from repro.experiments import paper_figure7_config, run_figure7
from repro.experiments.figure7 import PROTOCOLS
from repro.utils import MINUTE


def print_heatmap(result, protocol: str) -> None:
    """Print one protocol's waste as an alpha (rows) x MTBF (columns) grid."""
    config = result.config
    print(f"\nWaste of {protocol} (model)")
    header = "alpha\\mtbf(min) " + "".join(
        f"{m / MINUTE:>8.0f}" for m in config.mtbf_values
    )
    print(header)
    grid = result.waste_grid(protocol)
    for alpha in reversed(config.alpha_values):
        row = f"{alpha:>14.2f} " + "".join(
            f"{grid[(m, alpha)]:>8.3f}" for m in config.mtbf_values
        )
        print(row)


def main() -> None:
    # Model heatmaps on the paper's full grid (cheap: closed form).
    full = run_figure7(paper_figure7_config())
    for protocol in PROTOCOLS:
        print_heatmap(full, protocol)

    # Validation (Figures 7b/7d/7f) on a reduced grid with 100 runs/point.
    reduced = paper_figure7_config().reduced(mtbf_count=3, alpha_count=3)
    validated = run_figure7(reduced, validate=True, simulation_runs=100, seed=7)
    print("\nModel validation: WASTE_simul - WASTE_model (reduced grid)")
    print(f"{'mtbf(min)':>10} {'alpha':>6}", end="")
    for protocol in PROTOCOLS:
        print(f" {protocol:>20}", end="")
    print()
    for row in validated.rows:
        print(f"{row.mtbf / MINUTE:>10.0f} {row.alpha:>6.2f}", end="")
        for protocol in PROTOCOLS:
            print(f" {row.difference(protocol):>20.4f}", end="")
        print()
    for protocol in PROTOCOLS:
        print(
            f"max |difference| for {protocol}: "
            f"{validated.max_difference(protocol):.4f}"
        )


if __name__ == "__main__":
    main()
