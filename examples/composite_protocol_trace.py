#!/usr/bin/env python
"""Inspect a single simulated execution of the composite protocol.

The Monte-Carlo campaigns only report aggregate wastes; this example runs
*one* execution of each protocol with event recording enabled and prints the
time breakdown (useful work, ABFT overhead, checkpointing, lost work,
recoveries, downtime) plus the chronological event log of the composite run,
so the protocol's behaviour -- forced partial checkpoints around the library
call, no periodic checkpoints inside it, ABFT recoveries instead of rollbacks
-- can be read directly off the trace.

Run with::

    python examples/composite_protocol_trace.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AbftPeriodicCkptSimulator,
    ApplicationWorkload,
    BiPeriodicCkptSimulator,
    PurePeriodicCkptSimulator,
    ResilienceParameters,
)
from repro.simulation.events import EventKind
from repro.utils import HOUR, MINUTE, format_duration


def describe(trace) -> None:
    print(f"\n{trace.protocol}")
    print(f"  makespan          : {format_duration(trace.makespan)}")
    print(f"  waste             : {trace.waste:.4f}")
    print(f"  failures          : {trace.failure_count}")
    print("  time breakdown:")
    for category, seconds in trace.breakdown.as_dict().items():
        share = seconds / trace.makespan if trace.makespan else 0.0
        print(f"    {category:<15}: {format_duration(seconds):>12}  ({share:6.2%})")


def main() -> None:
    parameters = ResilienceParameters.from_scalars(
        platform_mtbf=90 * MINUTE,
        checkpoint=10 * MINUTE,
        recovery=10 * MINUTE,
        downtime=1 * MINUTE,
        library_fraction=0.8,
        abft_overhead=1.03,
        abft_reconstruction=2.0,
    )
    # A smaller application (24 h, 3 epochs) keeps the event log readable.
    workload = ApplicationWorkload.iterative(
        epoch_count=3, epoch_time=8 * HOUR, alpha=0.75, library_fraction=0.8
    )

    rng_seed = 11
    simulators = [
        PurePeriodicCkptSimulator(parameters, workload, record_events=True),
        BiPeriodicCkptSimulator(parameters, workload, record_events=True),
        AbftPeriodicCkptSimulator(parameters, workload, record_events=True),
    ]
    traces = []
    for simulator in simulators:
        trace = simulator.simulate(rng=np.random.default_rng(rng_seed))
        traces.append(trace)
        describe(trace)

    composite = traces[-1]
    print("\nChronological event log of the composite execution")
    interesting = {
        EventKind.FAILURE,
        EventKind.CHECKPOINT_END,
        EventKind.GENERAL_PHASE_START,
        EventKind.GENERAL_PHASE_END,
        EventKind.LIBRARY_PHASE_START,
        EventKind.LIBRARY_PHASE_END,
        EventKind.ABFT_RECOVERY_START,
        EventKind.ABFT_RECOVERY_END,
    }
    for event in composite.events:
        if event.kind in interesting:
            print(f"  {format_duration(event.time):>12}  {event.kind.value}"
                  + (f"  {dict(event.payload)}" if event.payload else ""))

    periodic_in_library = sum(
        1
        for event in composite.events
        if event.kind is EventKind.CHECKPOINT_END and event.payload.get("during") == "abft"
    )
    print(
        "\nNo periodic checkpoint is ever taken inside an ABFT-protected "
        f"library phase (count: {periodic_in_library})."
    )


if __name__ == "__main__":
    main()
