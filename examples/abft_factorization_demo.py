#!/usr/bin/env python
"""ABFT mechanism demonstration: surviving a process crash without rollback.

The composite protocol of the paper relies on the fact that ABFT-protected
library calls can rebuild the data of a crashed process from checksums and
continue, instead of rolling the whole application back to a checkpoint.
This example shows that mechanism end to end on the package's own dense
linear-algebra substrate:

1. an ABFT matrix multiplication loses the result blocks of one process and
   rebuilds them exactly from the checksum blocks;
2. an ABFT LU factorization is interrupted half-way by a process failure that
   destroys the process's blocks in the already-computed L and U panels *and*
   in the trailing matrix; everything is reconstructed and the factorization
   finishes with a residual at machine precision;
3. the overhead parameters the analytical model consumes (phi and
   Recons_ABFT) are measured on the substrate.

Run with::

    python examples/abft_factorization_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.abft import AbftCholesky, AbftLU, ProcessGrid, abft_matmul, measure_overhead
from repro.abft.cholesky import random_spd
from repro.abft.lu import random_diagonally_dominant


def demo_matmul(rng: np.random.Generator) -> None:
    print("1. ABFT matrix multiplication (Huang & Abraham full-checksum product)")
    a = rng.standard_normal((16, 16))
    b = rng.standard_normal((16, 16))
    grid = ProcessGrid(2, 2)
    result = abft_matmul(
        a, b, block_size=4, num_checksums=2, grid=grid, fail_process=(1, 1)
    )
    print(f"   blocks destroyed by the crash of process (1,1): {len(result.lost_blocks)}")
    print(f"   all blocks recovered from checksums          : {result.recovered}")
    print(f"   max |C - A@B| after recovery                 : {result.error:.2e}")


def demo_lu(rng: np.random.Generator) -> None:
    print("\n2. ABFT LU factorization with a mid-factorization process failure")
    matrix = random_diagonally_dominant(64, rng)
    grid = ProcessGrid(2, 2)
    factorization = AbftLU(matrix, block_size=8, grid=grid)
    result = factorization.run(fail_at_step=4, fail_process=(0, 1))
    print(f"   failure injected at step                     : {result.fail_step}")
    print(f"   blocks destroyed (L, U and trailing)         : {len(result.lost_blocks)}")
    print(f"   reconstruction time                          : {result.reconstruction_time * 1e3:.2f} ms")
    print(f"   |A - L U| residual after completion          : {result.residual:.2e}")
    print(f"   checksum residual on L (G L relation)        : {result.l_checksum_residual:.2e}")
    print(f"   checksum residual on U (U W relation)        : {result.u_checksum_residual:.2e}")


def demo_cholesky(rng: np.random.Generator) -> None:
    print("\n3. ABFT Cholesky factorization with a process failure")
    matrix = random_spd(64, rng)
    result = AbftCholesky(matrix, block_size=8, grid=ProcessGrid(2, 2)).run(
        fail_at_step=3, fail_process=(1, 0)
    )
    print(f"   blocks destroyed                             : {len(result.lost_blocks)}")
    print(f"   |A - L L^T| residual after completion        : {result.residual:.2e}")


def demo_overhead() -> None:
    print("\n4. Measured model parameters (phi, Recons_ABFT) on this substrate")
    measurement = measure_overhead("lu", n=128, block_size=32, trials=3)
    print(f"   unprotected LU time                          : {measurement.unprotected_time:.4f} s")
    print(f"   ABFT-protected LU time                       : {measurement.protected_time:.4f} s")
    print(f"   measured phi (slowdown)                      : {measurement.phi:.2f}")
    print(f"   measured reconstruction time                 : {measurement.reconstruction_time * 1e3:.2f} ms")
    print(
        "   (production ABFT implementations on real clusters achieve "
        "phi ~ 1.03; the pure-Python blocked kernels here pay a larger "
        "constant, which is why the model takes phi as a parameter.)"
    )


def main() -> None:
    rng = np.random.default_rng(2014)
    demo_matmul(rng)
    demo_lu(rng)
    demo_cholesky(rng)
    demo_overhead()


if __name__ == "__main__":
    main()
