#!/usr/bin/env python
"""Quickstart: which fault-tolerance strategy wastes the least platform time?

This example reproduces, for a single configuration, the central comparison
of the paper: a one-week application that spends 80 % of its time inside an
ABFT-capable library, running on a platform whose MTBF is two hours, with
10-minute checkpoints.  It evaluates the three protocols analytically, then
cross-checks the analytical prediction with the discrete-event simulator.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AbftPeriodicCkptModel,
    AbftPeriodicCkptSimulator,
    ApplicationWorkload,
    BiPeriodicCkptModel,
    BiPeriodicCkptSimulator,
    PurePeriodicCkptModel,
    PurePeriodicCkptSimulator,
    ResilienceParameters,
    run_monte_carlo,
)
from repro.utils import MINUTE, WEEK, format_duration


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Describe the platform and the application.
    # ------------------------------------------------------------------ #
    parameters = ResilienceParameters.from_scalars(
        platform_mtbf=120 * MINUTE,     # one failure every two hours
        checkpoint=10 * MINUTE,         # C: full-memory coordinated checkpoint
        recovery=10 * MINUTE,           # R: reload time
        downtime=1 * MINUTE,            # D: reboot / spare swap-in
        library_fraction=0.8,           # rho: 80 % of memory is the LIBRARY dataset
        abft_overhead=1.03,             # phi: 3 % ABFT slowdown
        abft_reconstruction=2.0,        # Recons_ABFT: 2 s to rebuild lost data
    )
    workload = ApplicationWorkload.single_epoch(
        total_time=1 * WEEK,            # T0: one week of fault-free compute
        alpha=0.8,                      # 80 % of the time inside the library
        library_fraction=0.8,
    )

    # ------------------------------------------------------------------ #
    # 2. Analytical model: expected waste of each protocol (Section IV).
    # ------------------------------------------------------------------ #
    models = [
        PurePeriodicCkptModel(parameters),
        BiPeriodicCkptModel(parameters),
        AbftPeriodicCkptModel(parameters),
    ]
    print("Analytical model (Section IV)")
    print(f"{'protocol':<22} {'waste':>8} {'T_final':>12} {'E[failures]':>12}")
    for model in models:
        prediction = model.evaluate(workload)
        print(
            f"{model.name:<22} {prediction.waste:>8.4f} "
            f"{format_duration(prediction.final_time):>12} "
            f"{prediction.expected_failures:>12.1f}"
        )

    # ------------------------------------------------------------------ #
    # 3. Discrete-event simulation cross-check (Section V-A).
    # ------------------------------------------------------------------ #
    simulators = [
        PurePeriodicCkptSimulator(parameters, workload),
        BiPeriodicCkptSimulator(parameters, workload),
        AbftPeriodicCkptSimulator(parameters, workload),
    ]
    print("\nDiscrete-event simulation (100 runs each)")
    print(f"{'protocol':<22} {'waste':>8} {'95% CI':>20} {'failures/run':>13}")
    for simulator in simulators:
        campaign = run_monte_carlo(simulator.simulate_once, runs=100, seed=42)
        summary = campaign.waste
        print(
            f"{simulator.name:<22} {summary.mean:>8.4f} "
            f"[{summary.ci_low:>8.4f}, {summary.ci_high:>8.4f}] "
            f"{campaign.mean_failures:>13.1f}"
        )

    print(
        "\nThe composite ABFT&PeriodicCkpt protocol wastes the least platform "
        "time: it skips periodic checkpoints during the 80% of the execution "
        "protected by ABFT and recovers from failures there without rollback."
    )


if __name__ == "__main__":
    main()
