"""Benchmark: serial vs parallel Monte-Carlo campaign execution.

Tracks the cost of one Figure 7 validation campaign through the serial
runner and through :class:`repro.campaign.ParallelMonteCarloExecutor`, so
the campaign subsystem's overhead/speed-up stays visible in the bench
trajectory.  (On a single-core runner the process pool only adds overhead;
the point of tracking both is exactly to see that crossover.)  Also times
the vectorised analytical grid against the per-point scalar sweep.
"""

from __future__ import annotations

import pytest

from repro.campaign import ParallelMonteCarloExecutor, SweepJob, SweepRunner
from repro.core.protocols import AbftPeriodicCkptSimulator
from repro.simulation import run_monte_carlo
from repro.utils.units import MINUTE

RUNS = 60
SEED = 2014


@pytest.fixture(scope="module")
def campaign_simulator(paper_parameters, paper_workload):
    return AbftPeriodicCkptSimulator(paper_parameters, paper_workload)


def test_campaign_serial(benchmark, campaign_simulator):
    result = benchmark(
        run_monte_carlo, campaign_simulator.simulate_once, runs=RUNS, seed=SEED
    )
    assert result.runs == RUNS


def test_campaign_parallel_processes(benchmark, campaign_simulator):
    executor = ParallelMonteCarloExecutor(workers=2, backend="process")
    result = benchmark(
        executor.run, campaign_simulator.simulate_once, runs=RUNS, seed=SEED
    )
    assert result.runs == RUNS
    # The perf may differ; the statistics must not.
    serial = run_monte_carlo(campaign_simulator.simulate_once, runs=RUNS, seed=SEED)
    assert result.waste == serial.waste


def _analytical_grid_job(paper_parameters) -> SweepJob:
    return SweepJob(
        parameters=paper_parameters,
        application_time=paper_parameters.platform_mtbf * 100,
        mtbf_values=tuple(float(m) * MINUTE for m in range(60, 241, 10)),
        alpha_values=tuple(i / 20 for i in range(21)),
    )


@pytest.mark.parametrize("vectorized", [True, False], ids=["vectorized", "scalar"])
def test_analytical_sweep(benchmark, paper_parameters, vectorized):
    job = _analytical_grid_job(paper_parameters)
    result = benchmark(SweepRunner(vectorized=vectorized).run, job)
    assert len(result.points) == len(job.mtbf_values) * len(job.alpha_values)
