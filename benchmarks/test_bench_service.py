"""Load benchmark of the advisor service: the CI ``service-smoke`` gate.

Boots the tiered advisor in-process (:class:`ServiceThread`), replays a
mixed ~200-request workload over real HTTP (keep-alive per client batch),
and gates three contracts:

* **byte-identity** -- every cache-hit answer is bit-for-bit the body its
  miss produced;
* **interactive latency** -- p99 per tier stays under the gate (tier 1,
  the answer cache, must be sub-10 ms even on a busy CI box; tier 2, map
  interpolation, under 250 ms);
* **tier routing** -- the workload's hit/miss mix lands in the expected
  tiers (repeats hit tier 1, on/off-grid map questions hit tier 2,
  out-of-hull ones fall back to tier 3).

Per-tier latency percentiles are appended to the BENCH trajectory as
``BENCH_SERVICE.json`` (path overridable via ``REPRO_BENCH_SERVICE_PATH``)
and uploaded as a CI artifact, so latency regressions are visible across
PRs.  ``REPRO_BENCH_QUICK=1`` shrinks the workload.

Run locally with::

    REPRO_BENCH_QUICK=1 pytest benchmarks/test_bench_service.py -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List

import pytest

from repro.optimize.regime import RegimeMapSpec, compute_regime_map
from repro.service import create_app
from repro.service.testing import ServiceThread
from repro.service.tiers import RegimeSurface

QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") not in ("0", "", "false")

TRAJECTORY_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_SERVICE_PATH", Path(__file__).with_name("BENCH_SERVICE.json")
    )
)

#: p99 latency gates per serving tier, in seconds.  Generous versus the
#: observed numbers (tier 1 is typically < 1 ms, tier 2 a few ms) so only a
#: real regression -- a recomputation sneaking into the cache path, the
#: interpolator going quadratic -- trips them on shared CI runners.
P99_GATE_SECONDS = {"answer-cache": 0.050, "map": 0.250}

NODES = 1000
PLATFORM_MTBFS = tuple(3600.0 * 2**k for k in range(6))
TOTAL_TIME = 360000.0
PROTOCOLS = ["PurePeriodicCkpt", "BiPeriodicCkpt", "ABFT&PeriodicCkpt"]


def scenario(mtbf: float) -> dict:
    return {
        "name": "bench",
        "platform": {"mtbf": mtbf, "checkpoint": 600.0},
        "workload": {"total_time": TOTAL_TIME, "alpha": 0.8},
        "protocols": PROTOCOLS,
    }


def build_workload(total_requests: int) -> List[dict]:
    """The mixed request stream: unique misses plus ~70% repeats.

    Mimics advisor traffic: a few distinct questions asked many times.
    Deterministic (round-robin over a fixed question pool) so the workload
    -- and therefore the latency distribution -- is comparable across runs.
    """
    questions = []
    # On-grid and off-grid map questions (tier 2), one per platform MTBF
    # and one per geometric midpoint.
    for mtbf in PLATFORM_MTBFS:
        questions.append({"scenario": scenario(mtbf)})
    for lo, hi in zip(PLATFORM_MTBFS, PLATFORM_MTBFS[1:]):
        questions.append({"scenario": scenario((lo * hi) ** 0.5)})
    # Out-of-hull questions (tier-3 fallback).
    questions.append({"scenario": scenario(PLATFORM_MTBFS[0] / 8)})
    questions.append({"scenario": scenario(PLATFORM_MTBFS[-1] * 8)})
    # Forced-analytical questions (tier 3 by request).
    questions.append({"scenario": scenario(PLATFORM_MTBFS[2]), "tier": "analytical"})
    return [questions[i % len(questions)] for i in range(total_requests)]


def percentile(samples: List[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def test_service_load_replay_and_latency_gate():
    total_requests = 60 if QUICK else 200
    map_spec = RegimeMapSpec(
        node_counts=(NODES,),
        node_mtbf_values=tuple(mu * NODES for mu in PLATFORM_MTBFS),
        checkpoint_costs=(600.0,),
        abft_overheads=(1.03,),
        application_time=TOTAL_TIME,
    )
    surface = RegimeSurface(compute_regime_map(map_spec))
    app = create_app(surface=surface)
    workload = build_workload(total_requests)

    latencies: Dict[str, List[float]] = {}
    bodies_by_miss: Dict[bytes, bytes] = {}
    tier_mix: Dict[str, int] = {}
    hit_count = 0
    byte_checks = 0

    with ServiceThread(app) as svc:
        # Warm nothing: the first pass over the question pool is all misses,
        # later passes replay them as answer-cache hits.
        for body in workload:
            request_key = json.dumps(body, sort_keys=True).encode()
            start = time.perf_counter()
            reply = svc.request("POST", "/optimize", body)
            elapsed = time.perf_counter() - start
            assert reply.status == 200, reply.body
            tier = reply.tier
            latencies.setdefault(tier, []).append(elapsed)
            tier_mix[tier] = tier_mix.get(tier, 0) + 1
            if reply.cache == "miss":
                bodies_by_miss[request_key] = reply.body
            else:
                hit_count += 1
                byte_checks += 1
                # The load test's core contract: a hit re-serves the exact
                # bytes its miss produced.
                assert reply.body == bodies_by_miss[request_key]
        health = svc.healthz()

    # Tier routing sanity: all three serving tiers participated.
    assert tier_mix.get("answer-cache", 0) > 0, tier_mix
    assert tier_mix.get("map", 0) > 0, tier_mix
    assert tier_mix.get("analytical", 0) > 0, tier_mix
    assert hit_count == byte_checks and byte_checks > 0
    # Every repeated question must have hit the cache: hits = total - unique.
    assert hit_count == total_requests - len(bodies_by_miss)
    assert health["answer_cache"]["hits"] == hit_count

    summary: Dict[str, Dict[str, float]] = {}
    for tier, samples in latencies.items():
        summary[tier] = {
            "requests": len(samples),
            "p50_ms": round(percentile(samples, 0.50) * 1e3, 3),
            "p99_ms": round(percentile(samples, 0.99) * 1e3, 3),
            "max_ms": round(max(samples) * 1e3, 3),
        }
    print(f"\nservice latency by tier: {json.dumps(summary, sort_keys=True)}")

    payload = {
        "description": (
            "Advisor-service load replay: per-tier request latency over a "
            "mixed /optimize workload with ~70% repeats, plus the byte-"
            "identity check hits vs misses. Written by "
            "benchmarks/test_bench_service.py (REPRO_BENCH_QUICK shrinks "
            "the workload) and uploaded by the CI service-smoke job as a "
            "workflow artifact."
        ),
        "quick_mode": QUICK,
        "total_requests": total_requests,
        "unique_questions": len(bodies_by_miss),
        "cache_hits": hit_count,
        "tier_mix": dict(sorted(tier_mix.items())),
        "latency_by_tier": summary,
        "p99_gate_seconds": P99_GATE_SECONDS,
    }
    TRAJECTORY_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"service latency trajectory written to {TRAJECTORY_PATH}")

    # Latency gates last, so a gate trip still leaves the artifact behind
    # for diagnosis.
    for tier, gate in P99_GATE_SECONDS.items():
        observed = percentile(latencies[tier], 0.99)
        assert observed <= gate, (
            f"tier {tier!r} p99 latency {observed * 1e3:.1f} ms exceeds the "
            f"{gate * 1e3:.0f} ms gate"
        )


def test_background_job_does_not_block_interactive_tiers():
    """A running Monte-Carlo job must not stall answer-cache reads."""
    app = create_app()
    doc = scenario(PLATFORM_MTBFS[2])
    doc["simulation"] = {"runs": 100 if QUICK else 300, "seed": 7}
    with ServiceThread(app) as svc:
        warm = svc.request("POST", "/optimize", {"scenario": doc})
        assert warm.status == 200
        job_reply = svc.request(
            "POST",
            "/simulate",
            {"scenario": doc, "protocol": "PurePeriodicCkpt"},
        )
        assert job_reply.status == 202
        # While the job computes, cached answers must stay interactive.
        stalls = []
        for _ in range(20):
            start = time.perf_counter()
            reply = svc.request("POST", "/optimize", {"scenario": doc})
            stalls.append(time.perf_counter() - start)
            assert reply.cache == "hit"
        snapshot = svc.wait_for_job(job_reply.json()["job"]["id"])
        assert snapshot["state"] == "done"
        assert percentile(stalls, 0.99) <= P99_GATE_SECONDS["answer-cache"]


@pytest.mark.skipif(QUICK, reason="eviction churn is exercised in full runs only")
def test_answer_cache_eviction_under_churn():
    """A tiny cache under a wide workload keeps answering correctly."""
    map_spec = RegimeMapSpec(
        node_counts=(NODES,),
        node_mtbf_values=tuple(mu * NODES for mu in PLATFORM_MTBFS),
        checkpoint_costs=(600.0,),
        abft_overheads=(1.03,),
        application_time=TOTAL_TIME,
    )
    surface = RegimeSurface(compute_regime_map(map_spec))
    app = create_app(surface=surface, answer_cache_entries=4)
    with ServiceThread(app) as svc:
        reference: Dict[float, bytes] = {}
        for sweep in range(3):
            for mtbf in PLATFORM_MTBFS:
                reply = svc.request(
                    "POST", "/optimize", {"scenario": scenario(mtbf)}
                )
                assert reply.status == 200
                if sweep == 0:
                    reference[mtbf] = reply.body
                else:
                    # Evicted-and-recomputed answers are still byte-identical
                    # because the body is deterministically rendered.
                    assert reply.body == reference[mtbf]
        health = svc.healthz()
        assert health["answer_cache"]["evictions"] > 0
        assert health["answer_cache"]["entries"] <= 4
