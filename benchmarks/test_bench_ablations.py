"""Ablation benchmarks for the design choices called out in DESIGN.md.

* optimal-period formula: Young vs Daly vs the paper's Equation 11;
* failure distribution: exponential (model assumption) vs Weibull vs
  log-normal at the same MTBF;
* composite safeguard: on vs off for an application with short library
  phases;
* first-order model vs simulator across the MTBF range.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ApplicationWorkload
from repro.core.analytical import AbftPeriodicCkptModel, PurePeriodicCkptModel
from repro.core.protocols import PurePeriodicCkptSimulator
from repro.failures import (
    ExponentialFailureModel,
    FailureTimeline,
    LogNormalFailureModel,
    WeibullFailureModel,
)
from repro.simulation import run_monte_carlo
from repro.utils import MINUTE, WEEK


@pytest.mark.parametrize("formula", ["paper", "young", "daly"])
def test_period_formula_ablation(benchmark, formula, paper_parameters, paper_workload):
    """The three period approximations give wastes within a point of each other."""
    model = PurePeriodicCkptModel(paper_parameters, period_formula=formula)
    prediction = benchmark(model.evaluate, paper_workload)
    reference = PurePeriodicCkptModel(paper_parameters).waste(paper_workload)
    assert prediction.waste == pytest.approx(reference, abs=0.02)
    print(f"\n{formula}: waste={prediction.waste:.4f} period={prediction.details['period'] / MINUTE:.2f} min")


@pytest.mark.parametrize(
    "distribution",
    ["exponential", "weibull", "lognormal"],
)
def test_failure_distribution_ablation(
    benchmark, distribution, paper_parameters, paper_workload
):
    """Sensitivity of the simulated waste to the failure law (same MTBF)."""
    mtbf = paper_parameters.platform_mtbf
    models = {
        "exponential": ExponentialFailureModel(mtbf),
        "weibull": WeibullFailureModel(mtbf, shape=0.7),
        "lognormal": LogNormalFailureModel(mtbf, sigma=1.0),
    }
    failure_model = models[distribution]
    simulator = PurePeriodicCkptSimulator(paper_parameters, paper_workload)

    def campaign():
        wastes = []
        for index in range(50):
            rng = np.random.default_rng(1000 + index)
            timeline = FailureTimeline(failure_model, rng)
            wastes.append(simulator.simulate(timeline=timeline).waste)
        return float(np.mean(wastes))

    mean_waste = benchmark(campaign)
    exponential_model_waste = PurePeriodicCkptModel(paper_parameters).waste(
        paper_workload
    )
    # The exponential assumption of the model stays within ~0.15 waste of the
    # bursty/heavy-tailed laws at the same MTBF.
    assert abs(mean_waste - exponential_model_waste) < 0.15
    print(f"\n{distribution}: simulated waste = {mean_waste:.4f}")


def test_safeguard_ablation(benchmark, paper_parameters):
    """Section III-B safeguard: short library phases fall back to checkpointing."""
    workload = ApplicationWorkload.iterative(200, 30 * MINUTE, 0.1)

    def evaluate():
        on = AbftPeriodicCkptModel(paper_parameters, safeguard=True).waste(workload)
        off = AbftPeriodicCkptModel(paper_parameters, safeguard=False).waste(workload)
        return on, off

    on, off = benchmark(evaluate)
    assert on <= off
    print(f"\nsafeguard on: {on:.4f}  safeguard off: {off:.4f}")


def test_model_vs_simulation_gap_across_mtbf(benchmark, paper_parameters):
    """Quantify the first-order model's error against the simulator."""
    workload = ApplicationWorkload.single_epoch(1 * WEEK, 0.8, library_fraction=0.8)

    def gaps():
        results = {}
        for mtbf_minutes in (60, 120, 240):
            params = paper_parameters.with_mtbf(mtbf_minutes * MINUTE)
            model = PurePeriodicCkptModel(params).waste(workload)
            simulator = PurePeriodicCkptSimulator(params, workload)
            campaign = run_monte_carlo(simulator.simulate_once, runs=60, seed=mtbf_minutes)
            results[mtbf_minutes] = campaign.mean_waste - model
        return results

    differences = benchmark(gaps)
    for mtbf_minutes, diff in differences.items():
        assert abs(diff) < 0.12, f"gap too large at mtbf={mtbf_minutes}"
    print("\nWASTE_simul - WASTE_model:", {k: round(v, 4) for k, v in differences.items()})
