"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one figure (or ablation) of the paper and
uses ``pytest-benchmark`` to time the regeneration, so both the *content*
(the series the paper plots, printed to stdout and asserted qualitatively)
and the *cost* of reproducing it are tracked.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro import ApplicationWorkload, ResilienceParameters
from repro.utils import MINUTE, WEEK


@pytest.fixture(scope="session")
def paper_parameters() -> ResilienceParameters:
    """Figure 7 parameters at a 120-minute platform MTBF."""
    return ResilienceParameters.from_scalars(
        platform_mtbf=120 * MINUTE,
        checkpoint=10 * MINUTE,
        recovery=10 * MINUTE,
        downtime=1 * MINUTE,
        library_fraction=0.8,
        abft_overhead=1.03,
        abft_reconstruction=2.0,
    )


@pytest.fixture(scope="session")
def paper_workload() -> ApplicationWorkload:
    """Figure 7 one-week application at alpha = 0.8."""
    return ApplicationWorkload.single_epoch(1 * WEEK, 0.8, library_fraction=0.8)
