"""Overhead gate for the repro.obs instrumentation (PR 9).

Instrumentation is only free if nobody pays for it when it is off.  This
module enforces the acceptance bound from the observability PR:

1. **Disabled overhead <= 2%**: on the 100k-trial ``PurePeriodicCkpt``
   bench cell, the instrumented public entry point
   (``run_trial_range`` with ``repro.obs`` disabled -- one flag check,
   then the bare engine) must stay within 2% of a baseline that calls
   the internal engine body directly, exactly as the pre-instrumentation
   code did.  A small absolute slack absorbs timer granularity on fast
   quick-mode cells.
2. **Bit-identity with tracing on**: the fully instrumented run (spans +
   phase profiling) must produce a table ``==`` to the uninstrumented
   one.  Timers never change values.

The trajectory -- baseline and instrumented seconds, the overhead ratio,
and the traced run's phase breakdown -- is written to ``BENCH_OBS.json``
(path overridable via ``REPRO_BENCH_OBS_PATH``) and uploaded by the CI
bench job as a workflow artifact.

Quick mode (``REPRO_BENCH_QUICK=1``) shrinks the cell so the suite stays
fast under the tier-1 run; the 2% gate still applies, cushioned by the
absolute slack.

Run with::

    pytest benchmarks/test_bench_obs.py -q
    REPRO_BENCH_QUICK=1 pytest benchmarks/test_bench_obs.py -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

import repro.obs as obs
from repro import ApplicationWorkload, ResilienceParameters
from repro.core.protocols import PurePeriodicCkptVectorized
from repro.utils import DAY, MINUTE

QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") not in ("0", "", "false")
#: The cell the 2% bound is defined on; quick mode shrinks it and leans
#: on the absolute slack instead.
BENCH_TRIALS = 10_000 if QUICK else 100_000
SEED = 2014
REPS = 5
#: Relative ceiling for disabled instrumentation, plus an absolute slack
#: so sub-second quick cells don't fail on scheduler jitter.
OVERHEAD_RATIO = 1.02
ABSOLUTE_SLACK = 0.010
TRAJECTORY_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_OBS_PATH", Path(__file__).with_name("BENCH_OBS.json")
    )
)


@pytest.fixture(autouse=True)
def obs_disabled():
    """Benchmarks control instrumentation themselves; restore on exit."""
    was_enabled, was_tracing = obs.enabled(), obs.tracing()
    obs.configure(metrics=False, trace=False)
    obs.reset()
    yield
    obs.configure(trace=was_tracing, metrics=was_enabled)
    obs.reset()


def _parameters() -> ResilienceParameters:
    return ResilienceParameters.from_scalars(
        platform_mtbf=120 * MINUTE,
        checkpoint=10 * MINUTE,
        recovery=10 * MINUTE,
        downtime=60.0,
        library_fraction=0.8,
    )


def _workload() -> ApplicationWorkload:
    return ApplicationWorkload.single_epoch(1 * DAY, 0.8, library_fraction=0.8)


def _engine() -> PurePeriodicCkptVectorized:
    return PurePeriodicCkptVectorized(_parameters(), _workload())


def _time_baseline(engine, trials: int) -> float:
    # The pre-instrumentation body of run_trial_range: derive the trial
    # generators, run the engine core, no flag checks and no profiling.
    core = engine._engine
    start = time.perf_counter()
    core._run(trials, core._trial_rngs(0, trials, SEED))
    return time.perf_counter() - start


def _time_instrumented(engine, trials: int) -> float:
    start = time.perf_counter()
    engine.run_trial_range(0, trials, seed=SEED)
    return time.perf_counter() - start


def test_disabled_instrumentation_overhead_gate():
    engine = _engine()
    # Warm both paths once (JIT-free, but page/allocator warmup matters),
    # then interleave the reps so drift hits both measurements equally.
    _time_baseline(engine, min(BENCH_TRIALS, 1000))
    _time_instrumented(engine, min(BENCH_TRIALS, 1000))
    baseline_times, instrumented_times = [], []
    for _ in range(REPS):
        baseline_times.append(_time_baseline(engine, BENCH_TRIALS))
        instrumented_times.append(_time_instrumented(engine, BENCH_TRIALS))
    baseline = min(baseline_times)
    instrumented = min(instrumented_times)
    ratio = instrumented / baseline

    # The gated run doubles as a correctness check: the public entry
    # point must match the bare body bit-for-bit.
    core = engine._engine
    assert engine.run_trial_range(0, 200, seed=SEED) == core._run(
        200, core._trial_rngs(0, 200, SEED)
    )

    print(
        f"\nobs disabled overhead ({BENCH_TRIALS} trials): baseline "
        f"{baseline:.3f}s, instrumented {instrumented:.3f}s, "
        f"ratio {ratio:.4f}"
    )
    _write_trajectory(baseline, instrumented, ratio)
    assert instrumented <= baseline * OVERHEAD_RATIO + ABSOLUTE_SLACK, (
        f"disabled instrumentation costs {ratio:.4f}x over the bare engine "
        f"on a {BENCH_TRIALS}-trial cell (acceptance bound: "
        f"{OVERHEAD_RATIO:.2f}x + {ABSOLUTE_SLACK * 1000:.0f}ms)"
    )


def test_traced_run_is_bit_identical_and_profiled():
    trials = min(BENCH_TRIALS, 5_000)
    plain = _engine().run_trial_range(0, trials, seed=SEED)

    # Build the engine under tracing too: the "compile" phase is recorded
    # at schedule-lowering time, not per run.
    obs.configure(trace=True)
    traced = _engine().run_trial_range(0, trials, seed=SEED)
    assert traced == plain  # instrumentation never changes values

    records = [r for r in obs.global_tracer().records() if r.name == "engine"]
    assert len(records) == 1
    span = records[0]
    assert span.args["trials"] == trials
    for phase in ("sample_seconds", "execute_seconds", "gather_seconds"):
        assert span.args[phase] >= 0.0
    phases = obs.catalog.family("repro_engine_phase_seconds_total")
    recorded = {key[0] for key in phases.values()}
    assert recorded == {"compile", "sample", "execute", "gather"}


def _write_trajectory(
    baseline: float, instrumented: float, ratio: float
) -> None:
    payload = {
        "bench": "obs-overhead",
        "quick": QUICK,
        "trials": BENCH_TRIALS,
        "reps": REPS,
        "seed": SEED,
        "baseline_seconds": round(baseline, 6),
        "instrumented_disabled_seconds": round(instrumented, 6),
        "overhead_ratio": round(ratio, 6),
        "gate": {
            "ratio_ceiling": OVERHEAD_RATIO,
            "absolute_slack_seconds": ABSOLUTE_SLACK,
        },
    }
    TRAJECTORY_PATH.write_text(json.dumps(payload, indent=2) + "\n")
