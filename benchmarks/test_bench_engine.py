"""Benchmark + regression gate for the Monte-Carlo engine.

This module seeds the BENCH trajectory for the simulation hot path and
enforces two hard guarantees of the columnar engine refactor:

1. **Stream regression**: the event backend's per-seed results (makespan,
   waste, failure count) are pinned bit-for-bit (as IEEE-754 hex) to the
   values produced *before* the refactor.  Any change to the failure-stream
   block pattern, the per-trial RNG derivation or the state-machine
   arithmetic trips these immediately.
2. **Speedup floor**: a 10k-trial ``PurePeriodicCkpt`` exponential sweep
   point must run at least 5x faster through ``backend="vectorized"`` than
   through the event walk, and must not regress by more than 2x against the
   recorded baseline in ``baseline_engine.json`` (the ratio is compared, so
   the gate is machine-independent).

Quick mode (the CI smoke job) sets ``REPRO_BENCH_QUICK=1``, which shrinks
the sweep point to 2000 trials while keeping both gates active.

Run with::

    pytest benchmarks/test_bench_engine.py -q
    REPRO_BENCH_QUICK=1 pytest benchmarks/test_bench_engine.py -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro import ApplicationWorkload, ResilienceParameters
from repro.core.protocols import (
    AbftPeriodicCkptSimulator,
    BiPeriodicCkptSimulator,
    NoFaultToleranceSimulator,
    PurePeriodicCkptSimulator,
)
from repro.core.protocols.no_ft import NoFaultToleranceVectorized
from repro.core.protocols.pure_periodic import PurePeriodicCkptVectorized
from repro.simulation.rng import RandomStreams
from repro.simulation.trace import CATEGORIES
from repro.utils import DAY, HOUR, MINUTE

QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") not in ("0", "", "false")
SWEEP_TRIALS = 2000 if QUICK else 10000
SEED = 2014
BASELINE_PATH = Path(__file__).with_name("baseline_engine.json")

#: Pre-refactor per-seed results: ``protocol -> [(makespan.hex(),
#: waste.hex(), failure_count), ...]`` for trials 0..7 of root seed 2014.
#: Captured from the per-call-scalar-draw engine the refactor replaced; the
#: paper protocols use the one-day workload, NoFT the one-hour workload
#: (the one-day NoFT run truncates after ~120k failures, which is pinned
#: separately by the truncation tests).
PINNED_REGRESSION = {
    "NoFT": [
        ("0x1.c200000000000p+11", "0x0.0p+0", 0),
        ("0x1.1e94573c5878ap+13", "0x1.37023500e1f15p-1", 4),
        ("0x1.c200000000000p+11", "0x0.0p+0", 0),
        ("0x1.12940be6e1e03p+12", "0x1.71ca4bbea9934p-3", 1),
        ("0x1.c200000000000p+11", "0x0.0p+0", 0),
        ("0x1.20ffba31025c8p+12", "0x1.c587cbeb13e84p-3", 1),
        ("0x1.c200000000000p+11", "0x0.0p+0", 0),
        ("0x1.eb1694b14ec47p+13", "0x1.8ab59f4ad7d94p-1", 5),
    ],
    "PurePeriodicCkpt": [
        ("0x1.1c941eb1feb26p+17", "0x1.a0c94fb4c0168p-2", 18),
        ("0x1.17bc1794f5956p+17", "0x1.96459cb3f0848p-2", 21),
        ("0x1.44897f5487953p+17", "0x1.eb8ca00f525ecp-2", 32),
        ("0x1.4d94dc02e6117p+17", "0x1.f9fc5280a335ep-2", 33),
        ("0x1.0794f0978eef4p+17", "0x1.706a810680f82p-2", 17),
        ("0x1.12dff37f40e88p+17", "0x1.8b59a53d28eb4p-2", 14),
        ("0x1.35e3bc72c371dp+17", "0x1.d261ce15e1b0ep-2", 26),
        ("0x1.653607b7aab2bp+17", "0x1.0e204dc9ac792p-1", 34),
    ],
    "BiPeriodicCkpt": [
        ("0x1.15f2ed8edb8ecp+17", "0x1.924d963dfda8ep-2", 18),
        ("0x1.16939d4150a50p+17", "0x1.93b4306804d28p-2", 21),
        ("0x1.43610500e2a4ep+17", "0x1.e9a477c7224f4p-2", 32),
        ("0x1.3ce1699fad934p+17", "0x1.deaf1e0a75088p-2", 32),
        ("0x1.041cf3e3142b8p+17", "0x1.67ac70473345ap-2", 17),
        ("0x1.08c77ecadd07ep+17", "0x1.7361863a0152cp-2", 14),
        ("0x1.267df844961acp+17", "0x1.b53a1b9549252p-2", 25),
        ("0x1.37db50fb64414p+17", "0x1.d5e63c5afecf4p-2", 29),
    ],
    "ABFT&PeriodicCkpt": [
        ("0x1.80ba07f20cc25p+16", "0x1.f6ccbf2c99450p-4", 11),
        ("0x1.ab6dba0ad549dp+16", "0x1.aee34c64938bcp-3", 19),
        ("0x1.e29665c5942a3p+16", "0x1.33dc44da01a1ep-2", 25),
        ("0x1.bcb826a79b61cp+16", "0x1.edc2e5d2b84dcp-3", 22),
        ("0x1.82295195a6409p+16", "0x1.02132a05a9d28p-3", 14),
        ("0x1.9f5563052a3e2p+16", "0x1.7fcb9dfb4c8dcp-3", 12),
        ("0x1.b77d3bfa14dc6p+16", "0x1.db43dd34526e4p-3", 21),
        ("0x1.cfa6686c965fcp+16", "0x1.169c369a6e5f0p-2", 20),
    ],
}

EVENT_SIMULATORS = {
    "NoFT": NoFaultToleranceSimulator,
    "PurePeriodicCkpt": PurePeriodicCkptSimulator,
    "BiPeriodicCkpt": BiPeriodicCkptSimulator,
    "ABFT&PeriodicCkpt": AbftPeriodicCkptSimulator,
}


def _parameters() -> ResilienceParameters:
    return ResilienceParameters.from_scalars(
        platform_mtbf=120 * MINUTE,
        checkpoint=10 * MINUTE,
        recovery=10 * MINUTE,
        downtime=60.0,
        library_fraction=0.8,
        abft_overhead=1.03,
        abft_reconstruction=2.0,
    )


def _workload(protocol: str) -> ApplicationWorkload:
    total = 1 * HOUR if protocol == "NoFT" else 1 * DAY
    return ApplicationWorkload.single_epoch(total, 0.8, library_fraction=0.8)


# --------------------------------------------------------------------- #
# Gate 1: the event backend is bit-identical to its pre-refactor stream.
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("protocol", sorted(PINNED_REGRESSION))
def test_event_backend_pinned_per_seed_values(protocol):
    simulator = EVENT_SIMULATORS[protocol](_parameters(), _workload(protocol))
    streams = RandomStreams(SEED)
    for trial, (makespan_hex, waste_hex, failure_count) in enumerate(
        PINNED_REGRESSION[protocol]
    ):
        trace = simulator.simulate(streams.generator_for_trial(trial))
        assert trace.makespan.hex() == makespan_hex, (protocol, trial)
        assert trace.waste.hex() == waste_hex, (protocol, trial)
        assert trace.failure_count == failure_count, (protocol, trial)


# --------------------------------------------------------------------- #
# Gate 2: the vectorized backend reproduces the event walk exactly.
# --------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "protocol, vectorized_cls",
    [
        ("NoFT", NoFaultToleranceVectorized),
        ("PurePeriodicCkpt", PurePeriodicCkptVectorized),
    ],
)
def test_vectorized_matches_event_trial_for_trial(protocol, vectorized_cls):
    parameters = _parameters()
    workload = _workload(protocol)
    table = vectorized_cls(parameters, workload).run_trials(64, seed=SEED)
    simulator = EVENT_SIMULATORS[protocol](parameters, workload)
    streams = RandomStreams(SEED)
    for trial in range(64):
        trace = simulator.simulate(streams.generator_for_trial(trial))
        row = table.data[trial]
        assert float(row["makespan"]) == trace.makespan, (protocol, trial)
        assert float(row["waste"]) == trace.waste, (protocol, trial)
        assert int(row["failure_count"]) == trace.failure_count, (protocol, trial)
        assert bool(row["truncated"]) == trace.metadata["truncated"]
        for category in CATEGORIES:
            assert float(row[category]) == getattr(trace.breakdown, category), (
                protocol,
                trial,
                category,
            )


# --------------------------------------------------------------------- #
# Gate 3: >= 5x vectorized speedup on the 10k-trial sweep point, and no
# >2x regression against the recorded baseline ratio.
# --------------------------------------------------------------------- #
def _time_event_backend(runs: int) -> float:
    simulator = PurePeriodicCkptSimulator(_parameters(), _workload("PurePeriodicCkpt"))
    streams = RandomStreams(SEED)
    start = time.perf_counter()
    for trial in range(runs):
        simulator.simulate(streams.generator_for_trial(trial))
    return time.perf_counter() - start


def _time_vectorized_backend(runs: int) -> float:
    engine = PurePeriodicCkptVectorized(_parameters(), _workload("PurePeriodicCkpt"))
    start = time.perf_counter()
    engine.run_trials(runs, seed=SEED)
    return time.perf_counter() - start


def test_vectorized_speedup_on_sweep_point():
    # Same best-of-3 policy on both sides so the gated ratio is not biased
    # by asymmetric noise sensitivity: a single transient stall can neither
    # hide a vectorized regression nor fail the gate.
    event_seconds = min(_time_event_backend(SWEEP_TRIALS) for _ in range(3))
    vectorized_seconds = min(_time_vectorized_backend(SWEEP_TRIALS) for _ in range(3))
    speedup = event_seconds / vectorized_seconds
    print(
        f"\nengine sweep point ({SWEEP_TRIALS} trials): "
        f"event {event_seconds:.2f}s, vectorized {vectorized_seconds:.3f}s, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0, (
        f"vectorized backend is only {speedup:.1f}x faster than the event "
        f"backend on a {SWEEP_TRIALS}-trial pure_periodic sweep point "
        "(acceptance floor: 5x)"
    )
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
        floor = baseline["speedup"] / 2.0
        assert speedup >= floor, (
            f"engine speedup regressed more than 2x: measured {speedup:.1f}x "
            f"vs recorded baseline {baseline['speedup']:.1f}x "
            f"(floor {floor:.1f}x); see benchmarks/baseline_engine.json"
        )


# --------------------------------------------------------------------- #
# BENCH trajectory: absolute timings tracked by pytest-benchmark.
# --------------------------------------------------------------------- #
def test_bench_event_backend(benchmark):
    runs = 200 if QUICK else 500
    result = benchmark.pedantic(
        _time_event_backend, args=(runs,), iterations=1, rounds=1
    )
    assert result > 0.0


def test_bench_vectorized_backend(benchmark):
    engine = PurePeriodicCkptVectorized(_parameters(), _workload("PurePeriodicCkpt"))
    table = benchmark.pedantic(
        engine.run_trials, args=(SWEEP_TRIALS,), kwargs={"seed": SEED},
        iterations=1, rounds=3,
    )
    assert table.runs == SWEEP_TRIALS
