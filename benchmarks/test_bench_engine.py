"""Benchmark + regression gate for the Monte-Carlo engine.

This module records the BENCH trajectory for the simulation hot path and
enforces three hard guarantees of the vectorized engine:

1. **Stream regression**: the event backend's per-seed results (makespan,
   waste, failure count) are pinned bit-for-bit (as IEEE-754 hex) to the
   values produced *before* the columnar refactor, for all four protocols.
   Any change to the failure-stream block pattern, the per-trial RNG
   derivation or the state-machine arithmetic trips these immediately.
2. **Cross-validation**: every vectorized engine (all four protocols, all
   three vectorized laws) must match the event walk trial for trial with
   exact ``==`` on every TrialTable column.
3. **Speedup floors**: a ``SWEEP_TRIALS``-trial exponential sweep point
   must run at least 5x (``PurePeriodicCkpt``) / 3x (the phase-structured
   ``BiPeriodicCkpt`` and ``ABFT&PeriodicCkpt``) faster through
   ``backend="vectorized"`` than through the event walk, and must not
   regress by more than 2x against the per-protocol ratios recorded in
   ``baseline_engine.json`` (ratios are compared, so the gates are
   machine-independent).

The perf *trajectory* -- per-protocol x per-law trials/sec for both
backends plus the speedup ratio -- is written to ``BENCH_PR5.json`` (path
overridable via ``REPRO_BENCH_PR5_PATH``) and uploaded by the CI bench
job as a workflow artifact, so regressions show up as a curve over PRs,
not a single frozen number.

Quick mode (the CI smoke job) sets ``REPRO_BENCH_QUICK=1``, which shrinks
the sweep point to 2000 trials while keeping every gate active.

Run with::

    pytest benchmarks/test_bench_engine.py -q
    REPRO_BENCH_QUICK=1 pytest benchmarks/test_bench_engine.py -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro import ApplicationWorkload, ResilienceParameters
from repro.core.protocols import (
    AbftPeriodicCkptSimulator,
    AbftPeriodicCkptVectorized,
    BiPeriodicCkptSimulator,
    BiPeriodicCkptVectorized,
    NoFaultToleranceSimulator,
    NoFaultToleranceVectorized,
    PurePeriodicCkptSimulator,
    PurePeriodicCkptVectorized,
)
from repro.failures import LogNormalFailureModel, WeibullFailureModel
from repro.simulation.rng import RandomStreams
from repro.simulation.trace import CATEGORIES
from repro.utils import DAY, HOUR, MINUTE

QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") not in ("0", "", "false")
SWEEP_TRIALS = 2000 if QUICK else 10000
SEED = 2014
BASELINE_PATH = Path(__file__).with_name("baseline_engine.json")
TRAJECTORY_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_PR5_PATH", Path(__file__).with_name("BENCH_PR5.json")
    )
)

#: Pre-refactor per-seed results: ``protocol -> [(makespan.hex(),
#: waste.hex(), failure_count), ...]`` for trials 0..7 of root seed 2014.
#: Captured from the per-call-scalar-draw engine the refactor replaced; the
#: paper protocols use the one-day workload, NoFT the one-hour workload
#: (the one-day NoFT run truncates after ~120k failures, which is pinned
#: separately by the truncation tests).
PINNED_REGRESSION = {
    "NoFT": [
        ("0x1.c200000000000p+11", "0x0.0p+0", 0),
        ("0x1.1e94573c5878ap+13", "0x1.37023500e1f15p-1", 4),
        ("0x1.c200000000000p+11", "0x0.0p+0", 0),
        ("0x1.12940be6e1e03p+12", "0x1.71ca4bbea9934p-3", 1),
        ("0x1.c200000000000p+11", "0x0.0p+0", 0),
        ("0x1.20ffba31025c8p+12", "0x1.c587cbeb13e84p-3", 1),
        ("0x1.c200000000000p+11", "0x0.0p+0", 0),
        ("0x1.eb1694b14ec47p+13", "0x1.8ab59f4ad7d94p-1", 5),
    ],
    "PurePeriodicCkpt": [
        ("0x1.1c941eb1feb26p+17", "0x1.a0c94fb4c0168p-2", 18),
        ("0x1.17bc1794f5956p+17", "0x1.96459cb3f0848p-2", 21),
        ("0x1.44897f5487953p+17", "0x1.eb8ca00f525ecp-2", 32),
        ("0x1.4d94dc02e6117p+17", "0x1.f9fc5280a335ep-2", 33),
        ("0x1.0794f0978eef4p+17", "0x1.706a810680f82p-2", 17),
        ("0x1.12dff37f40e88p+17", "0x1.8b59a53d28eb4p-2", 14),
        ("0x1.35e3bc72c371dp+17", "0x1.d261ce15e1b0ep-2", 26),
        ("0x1.653607b7aab2bp+17", "0x1.0e204dc9ac792p-1", 34),
    ],
    "BiPeriodicCkpt": [
        ("0x1.15f2ed8edb8ecp+17", "0x1.924d963dfda8ep-2", 18),
        ("0x1.16939d4150a50p+17", "0x1.93b4306804d28p-2", 21),
        ("0x1.43610500e2a4ep+17", "0x1.e9a477c7224f4p-2", 32),
        ("0x1.3ce1699fad934p+17", "0x1.deaf1e0a75088p-2", 32),
        ("0x1.041cf3e3142b8p+17", "0x1.67ac70473345ap-2", 17),
        ("0x1.08c77ecadd07ep+17", "0x1.7361863a0152cp-2", 14),
        ("0x1.267df844961acp+17", "0x1.b53a1b9549252p-2", 25),
        ("0x1.37db50fb64414p+17", "0x1.d5e63c5afecf4p-2", 29),
    ],
    "ABFT&PeriodicCkpt": [
        ("0x1.80ba07f20cc25p+16", "0x1.f6ccbf2c99450p-4", 11),
        ("0x1.ab6dba0ad549dp+16", "0x1.aee34c64938bcp-3", 19),
        ("0x1.e29665c5942a3p+16", "0x1.33dc44da01a1ep-2", 25),
        ("0x1.bcb826a79b61cp+16", "0x1.edc2e5d2b84dcp-3", 22),
        ("0x1.82295195a6409p+16", "0x1.02132a05a9d28p-3", 14),
        ("0x1.9f5563052a3e2p+16", "0x1.7fcb9dfb4c8dcp-3", 12),
        ("0x1.b77d3bfa14dc6p+16", "0x1.db43dd34526e4p-3", 21),
        ("0x1.cfa6686c965fcp+16", "0x1.169c369a6e5f0p-2", 20),
    ],
}

EVENT_SIMULATORS = {
    "NoFT": NoFaultToleranceSimulator,
    "PurePeriodicCkpt": PurePeriodicCkptSimulator,
    "BiPeriodicCkpt": BiPeriodicCkptSimulator,
    "ABFT&PeriodicCkpt": AbftPeriodicCkptSimulator,
}

VECTORIZED_ENGINES = {
    "NoFT": NoFaultToleranceVectorized,
    "PurePeriodicCkpt": PurePeriodicCkptVectorized,
    "BiPeriodicCkpt": BiPeriodicCkptVectorized,
    "ABFT&PeriodicCkpt": AbftPeriodicCkptVectorized,
}

LAW_MODELS = {
    "exponential": lambda mtbf: None,  # the simulators' bit-identical default
    "weibull": lambda mtbf: WeibullFailureModel(mtbf, shape=0.7),
    "lognormal": lambda mtbf: LogNormalFailureModel(mtbf, sigma=1.0),
}

#: Per-protocol vectorized speedup floors on the exponential sweep point.
#: The chunked engine keeps its historical 5x bar; the phase-structured
#: engine's rounds are heavier, so its protocols gate at the acceptance
#: floor of 3x (measured ~14x / ~11x; the recorded-ratio guard below keeps
#: a tighter leash than these absolute minima).
SPEEDUP_FLOORS = {
    "PurePeriodicCkpt": 5.0,
    "BiPeriodicCkpt": 3.0,
    "ABFT&PeriodicCkpt": 3.0,
}


def _parameters() -> ResilienceParameters:
    return ResilienceParameters.from_scalars(
        platform_mtbf=120 * MINUTE,
        checkpoint=10 * MINUTE,
        recovery=10 * MINUTE,
        downtime=60.0,
        library_fraction=0.8,
        abft_overhead=1.03,
        abft_reconstruction=2.0,
    )


def _workload(protocol: str) -> ApplicationWorkload:
    total = 1 * HOUR if protocol == "NoFT" else 1 * DAY
    return ApplicationWorkload.single_epoch(total, 0.8, library_fraction=0.8)


# --------------------------------------------------------------------- #
# Gate 1: the event backend is bit-identical to its pre-refactor stream.
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("protocol", sorted(PINNED_REGRESSION))
def test_event_backend_pinned_per_seed_values(protocol):
    simulator = EVENT_SIMULATORS[protocol](_parameters(), _workload(protocol))
    streams = RandomStreams(SEED)
    for trial, (makespan_hex, waste_hex, failure_count) in enumerate(
        PINNED_REGRESSION[protocol]
    ):
        trace = simulator.simulate(streams.generator_for_trial(trial))
        assert trace.makespan.hex() == makespan_hex, (protocol, trial)
        assert trace.waste.hex() == waste_hex, (protocol, trial)
        assert trace.failure_count == failure_count, (protocol, trial)


# --------------------------------------------------------------------- #
# Gate 2: every vectorized backend reproduces the event walk exactly,
# for all four protocols and all three vectorized laws.
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("law", sorted(LAW_MODELS))
@pytest.mark.parametrize("protocol", sorted(VECTORIZED_ENGINES))
def test_vectorized_matches_event_trial_for_trial(protocol, law):
    parameters = _parameters()
    workload = _workload(protocol)
    model = LAW_MODELS[law](parameters.platform_mtbf)
    kwargs = {} if model is None else {"failure_model": model}
    runs = 64 if law == "exponential" else 24
    table = VECTORIZED_ENGINES[protocol](parameters, workload, **kwargs).run_trials(
        runs, seed=SEED
    )
    simulator = EVENT_SIMULATORS[protocol](parameters, workload, **kwargs)
    streams = RandomStreams(SEED)
    for trial in range(runs):
        trace = simulator.simulate(streams.generator_for_trial(trial))
        row = table.data[trial]
        assert float(row["makespan"]) == trace.makespan, (protocol, law, trial)
        assert float(row["waste"]) == trace.waste, (protocol, law, trial)
        assert int(row["failure_count"]) == trace.failure_count, (protocol, trial)
        assert bool(row["truncated"]) == trace.metadata["truncated"]
        for category in CATEGORIES:
            assert float(row[category]) == getattr(trace.breakdown, category), (
                protocol,
                law,
                trial,
                category,
            )


def test_vectorized_matches_json_pinned_values():
    """The per-seed hex values recorded in baseline_engine.json hold.

    The ``protocols`` section of the baseline pins trials 0..7 of root seed
    2014 for the newly vectorized protocols; both backends must keep
    reproducing them bit for bit.
    """
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    for protocol, entry in baseline["protocols"].items():
        table = VECTORIZED_ENGINES[protocol](
            _parameters(), _workload(protocol)
        ).run_trials(len(entry["pinned"]), seed=SEED)
        for trial, (makespan_hex, waste_hex, failure_count) in enumerate(
            entry["pinned"]
        ):
            row = table.data[trial]
            assert float(row["makespan"]).hex() == makespan_hex, (protocol, trial)
            assert float(row["waste"]).hex() == waste_hex, (protocol, trial)
            assert int(row["failure_count"]) == failure_count, (protocol, trial)


# --------------------------------------------------------------------- #
# Gate 3: per-protocol vectorized speedup floors on the sweep point, and
# no >2x regression against the recorded baseline ratios.
# --------------------------------------------------------------------- #
def _time_event_backend(runs: int, protocol: str = "PurePeriodicCkpt") -> float:
    simulator = EVENT_SIMULATORS[protocol](_parameters(), _workload(protocol))
    streams = RandomStreams(SEED)
    start = time.perf_counter()
    for trial in range(runs):
        simulator.simulate(streams.generator_for_trial(trial))
    return time.perf_counter() - start


def _time_vectorized_backend(runs: int, protocol: str = "PurePeriodicCkpt") -> float:
    engine = VECTORIZED_ENGINES[protocol](_parameters(), _workload(protocol))
    start = time.perf_counter()
    engine.run_trials(runs, seed=SEED)
    return time.perf_counter() - start


def _recorded_speedup(baseline: dict, protocol: str) -> float:
    if protocol == "PurePeriodicCkpt":
        return float(baseline["speedup"])
    return float(baseline["protocols"][protocol]["speedup"])


@pytest.mark.parametrize("protocol", sorted(SPEEDUP_FLOORS))
def test_vectorized_speedup_on_sweep_point(protocol):
    # Same best-of-3 policy on both sides so the gated ratio is not biased
    # by asymmetric noise sensitivity: a single transient stall can neither
    # hide a vectorized regression nor fail the gate.
    event_seconds = min(
        _time_event_backend(SWEEP_TRIALS, protocol) for _ in range(3)
    )
    vectorized_seconds = min(
        _time_vectorized_backend(SWEEP_TRIALS, protocol) for _ in range(3)
    )
    speedup = event_seconds / vectorized_seconds
    floor = SPEEDUP_FLOORS[protocol]
    print(
        f"\nengine sweep point ({protocol}, {SWEEP_TRIALS} trials): "
        f"event {event_seconds:.2f}s, vectorized {vectorized_seconds:.3f}s, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= floor, (
        f"vectorized backend is only {speedup:.1f}x faster than the event "
        f"backend on a {SWEEP_TRIALS}-trial {protocol} sweep point "
        f"(acceptance floor: {floor:.0f}x)"
    )
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
        recorded = _recorded_speedup(baseline, protocol)
        regression_floor = recorded / 2.0
        assert speedup >= regression_floor, (
            f"engine speedup regressed more than 2x on {protocol}: measured "
            f"{speedup:.1f}x vs recorded baseline {recorded:.1f}x "
            f"(floor {regression_floor:.1f}x); see "
            "benchmarks/baseline_engine.json"
        )


# --------------------------------------------------------------------- #
# Gate 4: the schedule interpreter does not tax the event backend.
# --------------------------------------------------------------------- #
# The pre-IR hand-written walks, verbatim, as _run overrides on the
# production simulators (the base class keeps the building-block helpers
# for exactly this): the timing reference the interpreter is gated
# against.  tests/property/test_property_schedule.py pins that the two
# are bit-identical; this module pins that they cost the same.
class _LegacyNoFT(NoFaultToleranceSimulator):
    def _run(self, timeline, recorder):
        from repro.simulation.events import EventKind

        work = self._workload.total_time
        time_now = 0.0
        while True:
            self._check_cap(time_now)
            next_failure = timeline.next_failure_after(time_now)
            if next_failure >= time_now + work:
                recorder.account("useful_work", work)
                return time_now + work
            recorder.account("lost_work", next_failure - time_now)
            recorder.record(next_failure, EventKind.FAILURE, during="no-ft")
            time_now = self._restart(
                next_failure,
                timeline,
                recorder,
                (("downtime", self._params.downtime),),
            )


class _LegacyPurePeriodic(PurePeriodicCkptSimulator):
    def _run(self, timeline, recorder):
        params = self._params
        return self._periodic_section(
            0.0,
            self._workload.total_time,
            timeline,
            recorder,
            checkpoint_cost=params.full_checkpoint,
            recovery_cost=params.full_recovery,
            period=self.period(),
            trailing_checkpoint=False,
        )


class _LegacyBiPeriodic(BiPeriodicCkptSimulator):
    def _run(self, timeline, recorder):
        from repro.simulation.events import EventKind

        params = self._params
        phases = self._workload.phase_sequence()
        time_now = 0.0
        for index, (kind, duration, _abft_capable) in enumerate(phases):
            is_last = index == len(phases) - 1
            if kind == "general":
                checkpoint, period = params.full_checkpoint, self.general_period()
                enter, leave = (
                    EventKind.GENERAL_PHASE_START,
                    EventKind.GENERAL_PHASE_END,
                )
            else:
                checkpoint, period = params.library_checkpoint, self.library_period()
                enter, leave = (
                    EventKind.LIBRARY_PHASE_START,
                    EventKind.LIBRARY_PHASE_END,
                )
            recorder.record(time_now, enter)
            time_now = self._periodic_section(
                time_now,
                duration,
                timeline,
                recorder,
                checkpoint_cost=checkpoint,
                recovery_cost=params.full_recovery,
                period=period,
                trailing_checkpoint=not is_last,
            )
            recorder.record(time_now, leave)
        return time_now


class _LegacyAbftPeriodic(AbftPeriodicCkptSimulator):
    def _run(self, timeline, recorder):
        import math

        from repro.simulation.events import EventKind

        params = self._params
        time_now = 0.0
        general_period = self.general_period()
        for epoch in self._workload.epochs:
            recorder.record(time_now, EventKind.GENERAL_PHASE_START)
            general_time = epoch.general_time
            if not math.isnan(general_period) and general_time >= general_period:
                time_now = self._periodic_section(
                    time_now,
                    general_time,
                    timeline,
                    recorder,
                    checkpoint_cost=params.full_checkpoint,
                    recovery_cost=params.full_recovery,
                    period=general_period,
                    trailing_checkpoint=True,
                )
            else:
                time_now = self._unprotected_section(
                    time_now,
                    general_time,
                    timeline,
                    recorder,
                    recovery_cost=params.full_recovery,
                    checkpoint_cost=params.remainder_checkpoint,
                )
            recorder.record(time_now, EventKind.GENERAL_PHASE_END)
            if epoch.library_time <= 0.0:
                continue
            if self._library_uses_abft(epoch):
                time_now = self._abft_section(
                    time_now,
                    epoch.library_time,
                    timeline,
                    recorder,
                    exit_checkpoint_cost=params.library_checkpoint,
                )
            else:
                recorder.record(time_now, EventKind.LIBRARY_PHASE_START)
                time_now = self._periodic_section(
                    time_now,
                    epoch.library_time,
                    timeline,
                    recorder,
                    checkpoint_cost=params.library_checkpoint,
                    recovery_cost=params.full_recovery,
                    period=self.library_fallback_period(),
                    trailing_checkpoint=True,
                )
                recorder.record(time_now, EventKind.LIBRARY_PHASE_END)
        return time_now


LEGACY_SIMULATORS = {
    "NoFT": _LegacyNoFT,
    "PurePeriodicCkpt": _LegacyPurePeriodic,
    "BiPeriodicCkpt": _LegacyBiPeriodic,
    "ABFT&PeriodicCkpt": _LegacyAbftPeriodic,
}

#: Interpreter time / legacy-walk time on the summed four-protocol run.
#: The interpreter compiles once and caches the schedule across trials
#: while the legacy walks re-derive their periods every run, so in
#: practice the ratio sits at or below 1.0; the gate allows 10% headroom.
INTERPRETER_OVERHEAD_CEILING = 1.10


def _time_simulator(cls, protocol: str, runs: int) -> float:
    simulator = cls(_parameters(), _workload(protocol))
    streams = RandomStreams(SEED)
    start = time.perf_counter()
    for trial in range(runs):
        simulator.simulate(streams.generator_for_trial(trial))
    return time.perf_counter() - start


def _interpreter_vs_legacy_timings(runs: int) -> dict:
    """Per-protocol min-of-3 seconds for the interpreter and legacy walks."""
    timings = {}
    for protocol in sorted(EVENT_SIMULATORS):
        interpreter_seconds = min(
            _time_simulator(EVENT_SIMULATORS[protocol], protocol, runs)
            for _ in range(3)
        )
        legacy_seconds = min(
            _time_simulator(LEGACY_SIMULATORS[protocol], protocol, runs)
            for _ in range(3)
        )
        timings[protocol] = {
            "interpreter_seconds": interpreter_seconds,
            "legacy_seconds": legacy_seconds,
            "overhead_ratio": interpreter_seconds / legacy_seconds,
        }
    return timings


def test_interpreter_overhead_within_ceiling():
    runs = 100 if QUICK else 300
    timings = _interpreter_vs_legacy_timings(runs)
    total_interpreter = sum(t["interpreter_seconds"] for t in timings.values())
    total_legacy = sum(t["legacy_seconds"] for t in timings.values())
    ratio = total_interpreter / total_legacy
    for protocol, entry in sorted(timings.items()):
        print(
            f"\ninterpreter vs legacy walk ({protocol}, {runs} trials): "
            f"interpreter {entry['interpreter_seconds']:.3f}s, "
            f"legacy {entry['legacy_seconds']:.3f}s, "
            f"ratio {entry['overhead_ratio']:.3f}"
        )
    # Gate on the four-protocol aggregate: per-protocol ratios are recorded
    # in the trajectory for trend-watching, but a single protocol's run is
    # short enough that scheduler noise could trip a per-protocol 10% gate.
    assert ratio <= INTERPRETER_OVERHEAD_CEILING, (
        f"the schedule interpreter costs {ratio:.3f}x the legacy hand-written "
        f"walks over the four-protocol sweep (ceiling "
        f"{INTERPRETER_OVERHEAD_CEILING:.2f}x); per-protocol: "
        + ", ".join(
            f"{p}={t['overhead_ratio']:.3f}" for p, t in sorted(timings.items())
        )
    )


# --------------------------------------------------------------------- #
# Perf trajectory: the full protocol x law matrix, written to
# BENCH_PR5.json and uploaded by CI as a workflow artifact.
# --------------------------------------------------------------------- #
def test_write_perf_trajectory():
    event_runs = 150 if QUICK else 400
    matrix = {}
    for protocol in sorted(VECTORIZED_ENGINES):
        workload = _workload(protocol)
        parameters = _parameters()
        matrix[protocol] = {}
        for law in sorted(LAW_MODELS):
            model = LAW_MODELS[law](parameters.platform_mtbf)
            kwargs = {} if model is None else {"failure_model": model}
            simulator = EVENT_SIMULATORS[protocol](parameters, workload, **kwargs)
            streams = RandomStreams(SEED)
            start = time.perf_counter()
            for trial in range(event_runs):
                simulator.simulate(streams.generator_for_trial(trial))
            event_seconds = time.perf_counter() - start
            engine = VECTORIZED_ENGINES[protocol](parameters, workload, **kwargs)
            start = time.perf_counter()
            engine.run_trials(SWEEP_TRIALS, seed=SEED)
            vectorized_seconds = time.perf_counter() - start
            event_rate = event_runs / event_seconds
            vectorized_rate = SWEEP_TRIALS / vectorized_seconds
            matrix[protocol][law] = {
                "event_trials_per_sec": round(event_rate, 1),
                "vectorized_trials_per_sec": round(vectorized_rate, 1),
                "speedup": round(vectorized_rate / event_rate, 2),
            }
            assert vectorized_rate > 0.0 and event_rate > 0.0
    interpreter_runs = 100 if QUICK else 300
    interpreter = {
        protocol: {
            "interpreter_seconds": round(entry["interpreter_seconds"], 4),
            "legacy_seconds": round(entry["legacy_seconds"], 4),
            "overhead_ratio": round(entry["overhead_ratio"], 3),
        }
        for protocol, entry in _interpreter_vs_legacy_timings(
            interpreter_runs
        ).items()
    }
    payload = {
        "description": (
            "Perf trajectory of the Monte-Carlo engines: trials/sec per "
            "(protocol, failure law) for the event and vectorized backends "
            "plus their ratio, and the schedule interpreter's cost relative "
            "to the legacy hand-written event walks. Written by "
            "benchmarks/test_bench_engine.py (REPRO_BENCH_QUICK shrinks the "
            "vectorized sweep point) and uploaded by the CI bench job as a "
            "workflow artifact."
        ),
        "quick_mode": QUICK,
        "vectorized_trials": SWEEP_TRIALS,
        "event_trials": event_runs,
        "interpreter_trials": interpreter_runs,
        "seed": SEED,
        "matrix": matrix,
        "interpreter_vs_legacy_walk": interpreter,
    }
    TRAJECTORY_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"\nperf trajectory written to {TRAJECTORY_PATH}")


# --------------------------------------------------------------------- #
# BENCH trajectory: absolute timings tracked by pytest-benchmark.
# --------------------------------------------------------------------- #
def test_bench_event_backend(benchmark):
    runs = 200 if QUICK else 500
    result = benchmark.pedantic(
        _time_event_backend, args=(runs,), iterations=1, rounds=1
    )
    assert result > 0.0


def test_bench_vectorized_backend(benchmark):
    engine = PurePeriodicCkptVectorized(_parameters(), _workload("PurePeriodicCkpt"))
    table = benchmark.pedantic(
        engine.run_trials, args=(SWEEP_TRIALS,), kwargs={"seed": SEED},
        iterations=1, rounds=3,
    )
    assert table.runs == SWEEP_TRIALS


@pytest.mark.parametrize(
    "protocol", ["BiPeriodicCkpt", "ABFT&PeriodicCkpt"]
)
def test_bench_vectorized_phased_backend(benchmark, protocol):
    engine = VECTORIZED_ENGINES[protocol](_parameters(), _workload(protocol))
    table = benchmark.pedantic(
        engine.run_trials, args=(SWEEP_TRIALS,), kwargs={"seed": SEED},
        iterations=1, rounds=3,
    )
    assert table.runs == SWEEP_TRIALS
