"""Benchmark + regeneration of Figure 10 (constant checkpoint cost)."""

from __future__ import annotations

import pytest

from repro.application.scaling import ScalingMode
from repro.experiments import run_figure9, run_figure10


def test_figure10_series(benchmark):
    result = benchmark(run_figure10)
    for row in result.rows:
        assert row.checkpoint_cost == pytest.approx(60.0)
    last = result.rows[-1]
    # Even with perfectly scalable checkpointing, the composite wins at 1M.
    assert last.waste["ABFT&PeriodicCkpt"] < last.waste["BiPeriodicCkpt"]
    assert last.waste["ABFT&PeriodicCkpt"] < last.waste["PurePeriodicCkpt"]
    print("\n" + result.to_table().to_text())


def test_figure10_vs_figure9_checkpoint_scaling_ablation(benchmark):
    """Quantify how much the constant-cost hypothesis helps rollback protocols."""

    def run_both():
        return run_figure9(mtbf_scaling=ScalingMode.CONSTANT), run_figure10(
            mtbf_scaling=ScalingMode.CONSTANT
        )

    growing, constant = benchmark(run_both)
    last_growing = growing.rows[-1]
    last_constant = constant.rows[-1]
    assert (
        last_constant.waste["PurePeriodicCkpt"]
        < last_growing.waste["PurePeriodicCkpt"]
    )
    # The composite barely cares about the checkpoint cost (it rarely
    # checkpoints), so its improvement is much smaller.
    pure_gain = (
        last_growing.waste["PurePeriodicCkpt"] - last_constant.waste["PurePeriodicCkpt"]
    )
    composite_gain = (
        last_growing.waste["ABFT&PeriodicCkpt"]
        - last_constant.waste["ABFT&PeriodicCkpt"]
    )
    assert pure_gain > 5 * composite_gain
