"""Benchmark + regeneration of Figure 9 (weak scaling, growing alpha)."""

from __future__ import annotations

import pytest

from repro.application.scaling import ScalingMode
from repro.experiments import run_figure9


def test_figure9_series(benchmark):
    result = benchmark(run_figure9)
    rows = {row.node_count: row for row in result.rows}
    # Alpha values printed under the paper's x-axis.
    assert rows[1_000].alpha == pytest.approx(0.55, abs=0.01)
    assert rows[1_000_000].alpha == pytest.approx(0.975, abs=0.001)
    # The composite's advantage grows with the machine.
    gaps = [
        row.waste["PurePeriodicCkpt"] - row.waste["ABFT&PeriodicCkpt"]
        for row in result.rows
        if row.waste["PurePeriodicCkpt"] < 1.0
    ]
    assert gaps[-1] > gaps[0]
    print("\n" + result.to_table().to_text())


def test_figure9_constant_mtbf_calibration(benchmark):
    result = benchmark(run_figure9, mtbf_scaling=ScalingMode.CONSTANT)
    last = result.rows[-1]
    # Figure-level values: Pure/Bi around 0.36-0.40, composite below 0.1.
    assert 0.3 < last.waste["PurePeriodicCkpt"] < 0.45
    assert 0.3 < last.waste["BiPeriodicCkpt"] < 0.45
    assert last.waste["ABFT&PeriodicCkpt"] < 0.1
    print("\n" + result.to_table().to_text())
