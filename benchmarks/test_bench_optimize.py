"""Benchmark + timing guard for the strategy advisor (repro.optimize).

Regime maps call the analytical period optimizer once per (protocol, cell)
-- a 20 x 20 x 4 x 4 map over four protocols is 25,600 optimizations -- so
the optimizer's hot loop (bracket scan + Brent refinement, pure Python over
the closed-form models) must stay cheap.  This module tracks it two ways:

1. ``pytest-benchmark`` timings of one optimization and of a small regime
   map, keeping the advisor's cost visible in the bench trajectory;
2. a **timing guard**: one ``PurePeriodicCkpt`` optimization must finish
   within a generous wall-clock budget (milliseconds, measured against a
   baseline of ~1 ms on the dev machine; the guard only trips on an
   order-of-magnitude regression, e.g. an accidental per-evaluation model
   rebuild of the whole sweep grid or an unbounded coordinate loop) and a
   bounded number of model evaluations, which is machine-independent.

Run with::

    pytest benchmarks/test_bench_optimize.py -q
"""

from __future__ import annotations

import time

from repro import ApplicationWorkload, ResilienceParameters
from repro.optimize import compute_regime_map, optimize_period, RegimeMapSpec
from repro.utils import DAY, MINUTE, YEAR

#: Model-evaluation ceiling per optimization: one bracket scan (48 samples)
#: plus Brent refinement per tunable period, with slack for the coordinate
#: rounds.  Machine-independent -- trips if the search loop regresses.
MAX_EVALUATIONS_PER_PERIOD = 400

#: Wall-clock ceiling for ONE analytical optimization (seconds).  ~1 ms on a
#: dev machine; two orders of magnitude of slack absorb CI-runner noise
#: while still catching an accidentally quadratic hot loop.
SINGLE_OPTIMIZATION_BUDGET = 0.25


def _paper_point() -> tuple[ResilienceParameters, ApplicationWorkload]:
    parameters = ResilienceParameters.from_scalars(
        platform_mtbf=120 * MINUTE,
        checkpoint=10 * MINUTE,
        recovery=10 * MINUTE,
        downtime=1 * MINUTE,
        library_fraction=0.8,
    )
    workload = ApplicationWorkload.single_epoch(1 * DAY, 0.8, library_fraction=0.8)
    return parameters, workload


def test_optimize_period_hot_loop(benchmark):
    parameters, workload = _paper_point()
    optimum = benchmark(
        optimize_period, "PurePeriodicCkpt", parameters, workload
    )
    assert optimum.feasible
    assert optimum.relative_error("period") < 1e-3


def test_optimize_period_evaluation_budget():
    parameters, workload = _paper_point()
    for protocol, knobs in (
        ("PurePeriodicCkpt", 1),
        ("BiPeriodicCkpt", 2),
        ("ABFT&PeriodicCkpt", 1),
    ):
        optimum = optimize_period(protocol, parameters, workload)
        assert optimum.evaluations <= MAX_EVALUATIONS_PER_PERIOD * knobs, (
            f"{protocol} spent {optimum.evaluations} model evaluations "
            f"(budget {MAX_EVALUATIONS_PER_PERIOD * knobs}); the optimizer "
            "hot loop regressed"
        )


def test_optimize_period_timing_guard():
    parameters, workload = _paper_point()
    optimize_period("PurePeriodicCkpt", parameters, workload)  # warm imports
    start = time.perf_counter()
    optimize_period("PurePeriodicCkpt", parameters, workload)
    elapsed = time.perf_counter() - start
    assert elapsed < SINGLE_OPTIMIZATION_BUDGET, (
        f"one analytical optimization took {elapsed:.3f}s "
        f"(budget {SINGLE_OPTIMIZATION_BUDGET}s)"
    )


def test_regime_map_analytical(benchmark):
    spec = RegimeMapSpec(
        node_counts=(1_000, 10_000, 100_000),
        node_mtbf_values=(5 * YEAR, 25 * YEAR, 125 * YEAR),
        checkpoint_costs=(1 * MINUTE, 10 * MINUTE),
        abft_overheads=(1.03,),
        application_time=1 * DAY,
    )
    regime_map = benchmark(compute_regime_map, spec)
    assert len(regime_map.cells) == 18
    assert sum(regime_map.winner_counts().values()) == 18
