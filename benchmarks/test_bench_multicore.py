"""Benchmark + scaling gates for the multicore sharded engine (PR 8).

This module records the multicore trajectory of the vectorized engine and
enforces the sharding acceptance floors:

1. **Scaling floors**: on a 100k-trial ``PurePeriodicCkpt`` sweep point,
   ``ShardedVectorizedExecutor`` must beat the serial vectorized engine by
   at least 1.7x with 2 workers and 3x with 4 workers.  The gates skip on
   machines with fewer cores than workers (``os.cpu_count()``) -- a 1-core
   container cannot demonstrate scaling -- but the trajectory below is
   written regardless so under-provisioned runs are still visible as data.
2. **Bit-identity under sharding**: the gated runs double as correctness
   checks -- every sharded table is compared ``==`` to the serial table.
3. **Trace-replay vectorization**: the trace law must run through the
   vectorized engine with no ``backend='auto'`` obstacle and beat the
   per-trial event replay by at least 3x on the sweep point.

The trajectory -- per-worker-count seconds and speedups over the serial
vectorized run, plus the trace law's event/vectorized rates -- is written
to ``BENCH_PR8.json`` (path overridable via ``REPRO_BENCH_PR8_PATH``) and
uploaded by the CI bench job as a workflow artifact.

Quick mode (``REPRO_BENCH_QUICK=1``) shrinks the event-backend reference
timings; the sharded scaling cell stays at 100k trials because the floors
are defined on that cell and the vectorized engine clears it in seconds.

Run with::

    pytest benchmarks/test_bench_multicore.py -q
    REPRO_BENCH_QUICK=1 pytest benchmarks/test_bench_multicore.py -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro import ApplicationWorkload, ResilienceParameters
from repro.campaign import ShardedVectorizedExecutor
from repro.core.protocols import (
    PurePeriodicCkptSimulator,
    PurePeriodicCkptVectorized,
)
from repro.failures import TraceFailureModel
from repro.simulation.rng import RandomStreams
from repro.simulation.vectorized import vectorized_backend_obstacle
from repro.utils import DAY, MINUTE

QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") not in ("0", "", "false")
#: The scaling cell the acceptance floors are defined on.  Not shrunk in
#: quick mode: the floors are meaningless on a smaller cell (per-shard
#: fixed costs dominate) and the serial run clears it in a few seconds.
SHARD_TRIALS = 100_000
SEED = 2014
WORKER_COUNTS = (1, 2, 4, 8)
#: speedup floors over the serial vectorized engine, per worker count.
SCALING_FLOORS = {2: 1.7, 4: 3.0}
TRAJECTORY_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_PR8_PATH", Path(__file__).with_name("BENCH_PR8.json")
    )
)


def _parameters() -> ResilienceParameters:
    return ResilienceParameters.from_scalars(
        platform_mtbf=120 * MINUTE,
        checkpoint=10 * MINUTE,
        recovery=10 * MINUTE,
        downtime=60.0,
        library_fraction=0.8,
    )


def _workload() -> ApplicationWorkload:
    return ApplicationWorkload.single_epoch(1 * DAY, 0.8, library_fraction=0.8)


def _engine() -> PurePeriodicCkptVectorized:
    return PurePeriodicCkptVectorized(_parameters(), _workload())


def _trace_model() -> TraceFailureModel:
    # Interarrivals around the 2-hour MTBF with recorded-log burstiness.
    return TraceFailureModel([900.0, 5200.0, 1700.0, 12000.0, 400.0, 8100.0])


def _time_serial(engine, trials: int) -> float:
    start = time.perf_counter()
    engine.run_trials(trials, seed=SEED)
    return time.perf_counter() - start


def _time_sharded(engine, trials: int, workers: int) -> float:
    executor = ShardedVectorizedExecutor(workers=workers, backend="process")
    start = time.perf_counter()
    executor.run(engine, runs=trials, seed=SEED)
    return time.perf_counter() - start


# --------------------------------------------------------------------- #
# Gate 1: scaling floors on the 100k-trial cell (with bit-identity).
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("workers", sorted(SCALING_FLOORS))
def test_sharded_speedup_floor(workers):
    cores = os.cpu_count() or 1
    if cores < workers:
        pytest.skip(
            f"machine has {cores} cores; cannot demonstrate {workers}-worker "
            "scaling"
        )
    engine = _engine()
    # The gated run doubles as a correctness check on the real pool.
    serial_table = engine.run_trials(SHARD_TRIALS, seed=SEED)
    sharded_table = ShardedVectorizedExecutor(
        workers=workers, backend="process"
    ).run(engine, runs=SHARD_TRIALS, seed=SEED)
    assert sharded_table == serial_table
    serial_seconds = min(_time_serial(engine, SHARD_TRIALS) for _ in range(3))
    sharded_seconds = min(
        _time_sharded(engine, SHARD_TRIALS, workers) for _ in range(3)
    )
    speedup = serial_seconds / sharded_seconds
    floor = SCALING_FLOORS[workers]
    print(
        f"\nsharded sweep point ({SHARD_TRIALS} trials, {workers} workers): "
        f"serial {serial_seconds:.2f}s, sharded {sharded_seconds:.2f}s, "
        f"speedup {speedup:.2f}x"
    )
    assert speedup >= floor, (
        f"{workers}-worker sharded run is only {speedup:.2f}x faster than "
        f"the serial vectorized engine on a {SHARD_TRIALS}-trial sweep point "
        f"(acceptance floor: {floor:.1f}x)"
    )


# --------------------------------------------------------------------- #
# Gate 2: trace replay runs vectorized -- no obstacle, and a real win.
# --------------------------------------------------------------------- #
def test_trace_law_vectorizes_without_obstacle():
    obstacle = vectorized_backend_obstacle(
        PurePeriodicCkptVectorized,
        _trace_model(),
        protocol="PurePeriodicCkpt",
        law="trace",
    )
    assert obstacle is None, obstacle


def test_trace_vectorized_beats_event_replay():
    parameters = _parameters()
    workload = _workload()
    model = _trace_model()
    event_runs = 150 if QUICK else 400
    simulator = PurePeriodicCkptSimulator(
        parameters, workload, failure_model=model
    )
    streams = RandomStreams(SEED)
    start = time.perf_counter()
    for trial in range(event_runs):
        simulator.simulate(streams.generator_for_trial(trial))
    event_seconds = time.perf_counter() - start
    engine = PurePeriodicCkptVectorized(
        parameters, workload, failure_model=model
    )
    vectorized_trials = 2000 if QUICK else 10000
    start = time.perf_counter()
    engine.run_trials(vectorized_trials, seed=SEED)
    vectorized_seconds = time.perf_counter() - start
    event_rate = event_runs / event_seconds
    vectorized_rate = vectorized_trials / vectorized_seconds
    ratio = vectorized_rate / event_rate
    print(
        f"\ntrace replay: event {event_rate:.0f} trials/s, vectorized "
        f"{vectorized_rate:.0f} trials/s, ratio {ratio:.1f}x"
    )
    assert ratio >= 3.0, (
        f"vectorized trace replay is only {ratio:.1f}x the event replay "
        "(acceptance floor: 3x)"
    )


# --------------------------------------------------------------------- #
# Trajectory: per-worker scaling curve + trace ratio -> BENCH_PR8.json.
# --------------------------------------------------------------------- #
def test_write_multicore_trajectory():
    engine = _engine()
    serial_seconds = min(_time_serial(engine, SHARD_TRIALS) for _ in range(2))
    curve = {}
    for workers in WORKER_COUNTS:
        sharded_seconds = min(
            _time_sharded(engine, SHARD_TRIALS, workers) for _ in range(2)
        )
        curve[str(workers)] = {
            "seconds": round(sharded_seconds, 3),
            "speedup_vs_serial_vectorized": round(
                serial_seconds / sharded_seconds, 2
            ),
        }

    parameters = _parameters()
    workload = _workload()
    model = _trace_model()
    event_runs = 150 if QUICK else 400
    simulator = PurePeriodicCkptSimulator(
        parameters, workload, failure_model=model
    )
    streams = RandomStreams(SEED)
    start = time.perf_counter()
    for trial in range(event_runs):
        simulator.simulate(streams.generator_for_trial(trial))
    event_seconds = time.perf_counter() - start
    trace_engine = PurePeriodicCkptVectorized(
        parameters, workload, failure_model=model
    )
    vectorized_trials = 2000 if QUICK else 10000
    start = time.perf_counter()
    trace_engine.run_trials(vectorized_trials, seed=SEED)
    vectorized_seconds = time.perf_counter() - start
    event_rate = event_runs / event_seconds
    vectorized_rate = vectorized_trials / vectorized_seconds

    payload = {
        "description": (
            "Multicore trajectory of the sharded vectorized engine: seconds "
            "and speedup over the serial vectorized run per worker count on "
            "the 100k-trial PurePeriodicCkpt sweep point, plus the trace "
            "replay law's event vs vectorized rates. Written by "
            "benchmarks/test_bench_multicore.py and uploaded by the CI "
            "bench job as a workflow artifact. Interpret the curve against "
            "cpu_count: counts above the core count measure oversubscription."
        ),
        "quick_mode": QUICK,
        "cpu_count": os.cpu_count(),
        "shard_trials": SHARD_TRIALS,
        "seed": SEED,
        "serial_vectorized_seconds": round(serial_seconds, 3),
        "workers": curve,
        "trace_replay": {
            "event_trials_per_sec": round(event_rate, 1),
            "vectorized_trials_per_sec": round(vectorized_rate, 1),
            "speedup": round(vectorized_rate / event_rate, 2),
        },
    }
    TRAJECTORY_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"\nmulticore trajectory written to {TRAJECTORY_PATH}")


# --------------------------------------------------------------------- #
# BENCH trajectory: absolute sharded timing tracked by pytest-benchmark.
# --------------------------------------------------------------------- #
def test_bench_sharded_engine(benchmark):
    engine = _engine()
    executor = ShardedVectorizedExecutor(workers="auto", backend="process")
    table = benchmark.pedantic(
        executor.run,
        args=(engine,),
        kwargs={"runs": SHARD_TRIALS, "seed": SEED},
        iterations=1,
        rounds=2,
    )
    assert table.runs == SHARD_TRIALS
