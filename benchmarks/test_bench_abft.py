"""Benchmarks of the ABFT substrate: phi overhead and reconstruction cost.

These are the measurements that ground the two scalars the analytical model
consumes (``phi`` and ``Recons_ABFT``) in an actual implementation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.abft import AbftCholesky, AbftLU, ProcessGrid, abft_matmul
from repro.abft.cholesky import random_spd
from repro.abft.lu import lu_nopivot, random_diagonally_dominant

N = 96
BLOCK = 16
GRID = ProcessGrid(2, 2)


@pytest.fixture(scope="module")
def lu_matrix():
    return random_diagonally_dominant(N, np.random.default_rng(1))


@pytest.fixture(scope="module")
def spd_matrix():
    return random_spd(N, np.random.default_rng(2))


def test_unprotected_lu(benchmark, lu_matrix):
    lower, upper = benchmark(lu_nopivot, lu_matrix)
    assert np.allclose(lower @ upper, lu_matrix)


def test_abft_protected_lu(benchmark, lu_matrix):
    """The ratio of this benchmark to ``test_unprotected_lu`` is phi."""
    result = benchmark(AbftLU(lu_matrix, block_size=BLOCK, grid=GRID).run)
    assert result.residual < 1e-8


def test_abft_lu_with_process_failure(benchmark, lu_matrix):
    """Adds the mid-factorization reconstruction (Recons_ABFT) on top."""

    def run():
        return AbftLU(lu_matrix, block_size=BLOCK, grid=GRID).run(
            fail_at_step=N // BLOCK // 2, fail_process=(0, 1)
        )

    result = benchmark(run)
    assert result.residual < 1e-8
    assert result.lost_blocks
    print(f"\nreconstruction time: {result.reconstruction_time * 1e3:.3f} ms")


def test_abft_protected_cholesky(benchmark, spd_matrix):
    result = benchmark(AbftCholesky(spd_matrix, block_size=BLOCK, grid=GRID).run)
    assert result.residual < 1e-8


def test_abft_matmul_with_recovery(benchmark):
    rng = np.random.default_rng(3)
    a = rng.standard_normal((64, 64))
    b = rng.standard_normal((64, 64))

    def run():
        return abft_matmul(
            a,
            b,
            block_size=16,
            num_checksums=2,
            grid=ProcessGrid(2, 2),
            fail_process=(1, 1),
        )

    result = benchmark(run)
    assert result.recovered
    assert result.error < 1e-9
