"""Benchmark + regeneration of Figure 8 (weak scaling, fixed alpha = 0.8)."""

from __future__ import annotations

from repro.application.scaling import ScalingMode
from repro.experiments import run_figure8


def test_figure8_series(benchmark):
    result = benchmark(run_figure8)
    rows = {row.node_count: row for row in result.rows}
    # Shape claims of Section V-C (Figure 8): the composite is slightly
    # penalised by the ABFT overhead at small scale, and wins at large scale.
    assert rows[1_000].waste["ABFT&PeriodicCkpt"] > rows[1_000].waste["PurePeriodicCkpt"]
    assert (
        rows[100_000].waste["ABFT&PeriodicCkpt"]
        < rows[100_000].waste["BiPeriodicCkpt"]
        <= rows[100_000].waste["PurePeriodicCkpt"]
    )
    assert result.crossover_node_count() is not None
    print("\n" + result.to_table().to_text())


def test_figure8_constant_mtbf_calibration(benchmark):
    """Alternative reading with the platform MTBF held at one failure/day."""
    result = benchmark(run_figure8, mtbf_scaling=ScalingMode.CONSTANT)
    rows = {row.node_count: row for row in result.rows}
    # Under this calibration the figure's absolute levels are reproduced:
    # PurePeriodicCkpt grows to ~0.38 at 1M nodes, the composite stays ~0.15.
    assert 0.3 < rows[1_000_000].waste["PurePeriodicCkpt"] < 0.5
    assert rows[1_000_000].waste["ABFT&PeriodicCkpt"] < 0.2
    print("\n" + result.to_table().to_text())
