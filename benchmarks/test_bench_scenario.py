"""Benchmark: scenario-spec overhead and failure-law simulator throughput.

The scenario redesign routes every experiment through
:class:`repro.scenario.ScenarioSpec` -- construction, schema validation,
JSON round-trips and registry resolution now sit on the hot path of every
campaign.  These benchmarks pin that cost (it should stay microseconds,
i.e. invisible next to a single simulated execution) and compare simulator
throughput under the exponential and Weibull failure laws, so the price of
the scenario-diversity payoff is tracked over time.
"""

from __future__ import annotations

import pytest

from repro.core.protocols import AbftPeriodicCkptSimulator
from repro.failures import WeibullFailureModel
from repro.scenario import Scenario, ScenarioSpec, run_scenario
from repro.simulation import run_monte_carlo

RUNS = 60
SEED = 2014


@pytest.fixture(scope="module")
def weibull_spec() -> ScenarioSpec:
    return Scenario.paper_figure7().with_failures("weibull", shape=0.7).build()


# ---------------------------------------------------------------------- #
# Spec construction / serialization / resolution overhead
# ---------------------------------------------------------------------- #
def test_spec_build(benchmark):
    spec = benchmark(
        lambda: Scenario.paper_figure7().with_failures("weibull", shape=0.7).build()
    )
    assert spec.failures.model == "weibull"


def test_spec_dict_round_trip(benchmark, weibull_spec):
    def round_trip() -> ScenarioSpec:
        return ScenarioSpec.from_dict(weibull_spec.to_dict())

    assert benchmark(round_trip) == weibull_spec


def test_spec_json_round_trip(benchmark, weibull_spec):
    def round_trip() -> ScenarioSpec:
        return ScenarioSpec.from_json(weibull_spec.to_json())

    assert benchmark(round_trip) == weibull_spec


def test_spec_resolve(benchmark, weibull_spec):
    bound = benchmark(weibull_spec.resolve, "abft")
    assert isinstance(bound.simulator, AbftPeriodicCkptSimulator)
    assert isinstance(bound.failure_model, WeibullFailureModel)


# ---------------------------------------------------------------------- #
# Simulator throughput: exponential vs Weibull failure law
# ---------------------------------------------------------------------- #
def test_simulator_throughput_exponential(benchmark, paper_parameters, paper_workload):
    simulator = AbftPeriodicCkptSimulator(paper_parameters, paper_workload)
    result = benchmark(
        run_monte_carlo, simulator.simulate_once, runs=RUNS, seed=SEED
    )
    assert result.runs == RUNS


def test_simulator_throughput_weibull(benchmark, paper_parameters, paper_workload):
    simulator = AbftPeriodicCkptSimulator(
        paper_parameters,
        paper_workload,
        failure_model=WeibullFailureModel(
            paper_parameters.platform_mtbf, shape=0.7
        ),
    )
    result = benchmark(
        run_monte_carlo, simulator.simulate_once, runs=RUNS, seed=SEED
    )
    assert result.runs == RUNS


# ---------------------------------------------------------------------- #
# End-to-end: a reduced validated scenario through the campaign layer
# ---------------------------------------------------------------------- #
def test_scenario_end_to_end_reduced(benchmark):
    spec = (
        Scenario.quick()
        .with_failures("weibull", shape=0.7)
        .with_simulation(runs=10, seed=SEED)
        .build()
    )

    def run():
        with pytest.warns(Warning):
            return run_scenario(spec)

    result = benchmark(run)
    assert len(result.points) == 12
