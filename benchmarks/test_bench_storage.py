"""Benchmark gate for the storage axis (PR 10): lowering must be free.

The storage axis lowers every ``CheckpointStorage`` stack into effective
scalar ``(C, R)`` inside ``ResilienceParameters`` -- once, at construction
time -- so the engines never see the stack.  This module enforces that
contract on the clock:

1. **Overhead gate**: a 100k-trial vectorized sweep point whose parameters
   were lowered from a multi-level storage stack must run within 10% of the
   identical sweep point built from flat scalars equal to the stack's own
   lowered costs.  Anything slower means storage objects leaked into the
   hot path.
2. **Bit-identity**: the gated runs double as correctness checks -- the
   storage-lowered table is compared ``==`` to the flat-scalar table, and
   the sharded process-pool run is compared ``==`` to the serial run (the
   transport pickles storage-carrying parameters).

The measured cell -- seconds per side, the ratio, and the lowered costs --
is written to ``BENCH_STORAGE.json`` (path overridable via
``REPRO_BENCH_STORAGE_PATH``) and uploaded by the CI bench job as a
workflow artifact.

Quick mode (``REPRO_BENCH_QUICK=1``) shrinks the cell to 20k trials; the
10% gate still holds there because both sides shrink together.

Run with::

    pytest benchmarks/test_bench_storage.py -q
    REPRO_BENCH_QUICK=1 pytest benchmarks/test_bench_storage.py -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro import ApplicationWorkload, ResilienceParameters
from repro.campaign import ShardedVectorizedExecutor
from repro.checkpointing import (
    LocalStorage,
    MultiLevelStorage,
    RemoteFileSystemStorage,
    StorageStack,
)
from repro.core.protocols import PurePeriodicCkptVectorized
from repro.utils import DAY, GB, MINUTE, TB

QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") not in ("0", "", "false")
TRIALS = 20_000 if QUICK else 100_000
SEED = 2014
#: storage-lowered parameters may cost at most 10% over flat scalars.
OVERHEAD_CEILING = 1.10
TRAJECTORY_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_STORAGE_PATH", Path(__file__).with_name("BENCH_STORAGE.json")
    )
)


def _storage_stack() -> StorageStack:
    storage = MultiLevelStorage(
        LocalStorage(node_write_bandwidth=5 * GB),
        RemoteFileSystemStorage(write_bandwidth=100 * GB),
        remote_fraction=0.25,
        remote_read_fraction=0.25,
    )
    return StorageStack(storage, data_bytes=64 * TB, node_count=1000)


def _storage_parameters() -> ResilienceParameters:
    return ResilienceParameters.from_storage(
        platform_mtbf=120 * MINUTE,
        storage=_storage_stack(),
        downtime=60.0,
        library_fraction=0.8,
    )


def _flat_parameters(lowered: ResilienceParameters) -> ResilienceParameters:
    return ResilienceParameters.from_scalars(
        platform_mtbf=120 * MINUTE,
        checkpoint=lowered.full_checkpoint,
        recovery=lowered.full_recovery,
        downtime=60.0,
        library_fraction=0.8,
    )


def _workload() -> ApplicationWorkload:
    return ApplicationWorkload.single_epoch(1 * DAY, 0.8, library_fraction=0.8)


def _engine(parameters: ResilienceParameters) -> PurePeriodicCkptVectorized:
    return PurePeriodicCkptVectorized(parameters, _workload())


def _time_run(engine, trials: int) -> float:
    start = time.perf_counter()
    engine.run_trials(trials, seed=SEED)
    return time.perf_counter() - start


def _measure() -> dict:
    storage_params = _storage_parameters()
    flat_params = _flat_parameters(storage_params)
    storage_engine = _engine(storage_params)
    flat_engine = _engine(flat_params)
    # Bit-identity first (and warm-up): both sides produce the same table.
    storage_table = storage_engine.run_trials(TRIALS, seed=SEED)
    flat_table = flat_engine.run_trials(TRIALS, seed=SEED)
    assert storage_table == flat_table
    # Pair the timed runs round for round so machine drift cancels: the
    # gated ratio is the best storage/flat ratio of any round, which only
    # stays above the ceiling if storage is *consistently* slower.
    flat_times, storage_times = [], []
    for _ in range(5):
        flat_times.append(_time_run(flat_engine, TRIALS))
        storage_times.append(_time_run(storage_engine, TRIALS))
    ratio = min(s / f for f, s in zip(flat_times, storage_times))
    flat_seconds = min(flat_times)
    storage_seconds = min(storage_times)
    return {
        "trials": TRIALS,
        "flat_seconds": flat_seconds,
        "storage_seconds": storage_seconds,
        "ratio": ratio,
        "lowered_checkpoint_seconds": storage_params.full_checkpoint,
        "lowered_recovery_seconds": storage_params.full_recovery,
    }


# --------------------------------------------------------------------- #
# Gate: lowered storage runs within 10% of flat scalars, bit-identically.
# --------------------------------------------------------------------- #
def test_storage_cell_within_flat_overhead_ceiling():
    cell = _measure()
    print(
        f"\nstorage cell ({cell['trials']} trials): flat "
        f"{cell['flat_seconds']:.2f}s, storage-lowered "
        f"{cell['storage_seconds']:.2f}s, ratio {cell['ratio']:.3f}x"
    )
    assert cell["ratio"] <= OVERHEAD_CEILING, (
        f"storage-lowered parameters cost {cell['ratio']:.2f}x the flat "
        f"baseline on a {cell['trials']}-trial sweep point (ceiling: "
        f"{OVERHEAD_CEILING:.2f}x); storage objects are leaking into the "
        "hot path"
    )

    payload = {
        "description": (
            "Storage-axis overhead cell: seconds for a PurePeriodicCkpt "
            "vectorized sweep point with parameters lowered from a "
            "multi-level storage stack vs the identical point built from "
            "flat scalars, plus the lowered (C, R). The gate fails above a "
            "1.10x ratio. Written by benchmarks/test_bench_storage.py and "
            "uploaded by the CI bench job as a workflow artifact."
        ),
        "quick_mode": QUICK,
        "seed": SEED,
        "overhead_ceiling": OVERHEAD_CEILING,
        "trials": cell["trials"],
        "flat_seconds": round(cell["flat_seconds"], 3),
        "storage_seconds": round(cell["storage_seconds"], 3),
        "ratio": round(cell["ratio"], 3),
        "lowered_checkpoint_seconds": round(
            cell["lowered_checkpoint_seconds"], 3
        ),
        "lowered_recovery_seconds": round(cell["lowered_recovery_seconds"], 3),
    }
    TRAJECTORY_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"storage overhead cell written to {TRAJECTORY_PATH}")


def test_storage_cell_shards_bit_identically():
    engine = _engine(_storage_parameters())
    runs = 5_000 if QUICK else 20_000
    serial = engine.run_trials(runs, seed=SEED)
    sharded = ShardedVectorizedExecutor(workers=2, backend="process").run(
        engine, runs=runs, seed=SEED
    )
    assert sharded == serial


# --------------------------------------------------------------------- #
# BENCH trajectory: absolute storage-lowered timing via pytest-benchmark.
# --------------------------------------------------------------------- #
def test_bench_storage_lowered_engine(benchmark):
    engine = _engine(_storage_parameters())
    table = benchmark.pedantic(
        engine.run_trials,
        args=(TRIALS,),
        kwargs={"seed": SEED},
        iterations=1,
        rounds=2,
    )
    assert table.runs == TRIALS
