"""Benchmark + regeneration of Figure 7 (waste heatmaps and validation).

``test_figure7_model_heatmaps`` regenerates the three model heatmaps on the
paper's full (MTBF x alpha) grid; ``test_figure7_validation_point`` runs the
Monte-Carlo validation behind Figures 7b/7d/7f for one representative grid
point per protocol.
"""

from __future__ import annotations

import pytest

from repro.experiments import paper_figure7_config, run_figure7, validate_configuration
from repro.experiments.figure7 import PROTOCOLS
from repro import ApplicationWorkload
from repro.utils import MINUTE, WEEK


def test_figure7_model_heatmaps(benchmark):
    config = paper_figure7_config()
    result = benchmark(run_figure7, config)
    # Full paper grid: 10 MTBF values x 11 alpha values.
    assert len(result.rows) == len(config.mtbf_values) * len(config.alpha_values)
    # Qualitative shape of the heatmaps (Section V-B).
    pure = result.waste_grid("PurePeriodicCkpt")
    composite = result.waste_grid("ABFT&PeriodicCkpt")
    worst = (config.mtbf_values[0], 0.0)
    best = (config.mtbf_values[-1], 1.0)
    assert pure[worst] > 0.5
    assert composite[best] < 0.06
    print("\n" + result.to_table().to_text())


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_figure7_validation_point(benchmark, protocol, paper_parameters):
    """Model-vs-simulation difference at (mtbf = 120 min, alpha = 0.8)."""
    workload = ApplicationWorkload.single_epoch(1 * WEEK, 0.8, library_fraction=0.8)
    point = benchmark(
        validate_configuration,
        protocol,
        paper_parameters,
        workload,
        runs=100,
        seed=2014,
    )
    # Paper: difference below 12% at the smallest MTBF, below 5% elsewhere.
    assert abs(point.difference) < 0.06
    print(
        f"\n{protocol}: model={point.model_waste:.4f} "
        f"sim={point.simulated_waste:.4f} diff={point.difference:+.4f}"
    )


def test_figure7_low_mtbf_validation(benchmark, paper_parameters):
    """The hardest validation point: MTBF = 60 min, alpha = 0.8."""
    params = paper_parameters.with_mtbf(60 * MINUTE)
    workload = ApplicationWorkload.single_epoch(1 * WEEK, 0.8, library_fraction=0.8)
    point = benchmark(
        validate_configuration,
        "ABFT&PeriodicCkpt",
        params,
        workload,
        runs=100,
        seed=60,
    )
    assert abs(point.difference) < 0.12
