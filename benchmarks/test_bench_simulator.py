"""Benchmark of the discrete-event simulator itself (Monte-Carlo throughput).

The paper's validation campaign averages 1000 runs per grid point; this
benchmark measures the cost of a 100-run campaign for each protocol at the
Figure 7 operating point, so the full-grid campaign cost can be extrapolated.
"""

from __future__ import annotations

import pytest

from repro.core.protocols import (
    AbftPeriodicCkptSimulator,
    BiPeriodicCkptSimulator,
    PurePeriodicCkptSimulator,
)
from repro.simulation import run_monte_carlo

SIMULATORS = {
    "PurePeriodicCkpt": PurePeriodicCkptSimulator,
    "BiPeriodicCkpt": BiPeriodicCkptSimulator,
    "ABFT&PeriodicCkpt": AbftPeriodicCkptSimulator,
}


@pytest.mark.parametrize("protocol", sorted(SIMULATORS))
def test_monte_carlo_campaign(benchmark, protocol, paper_parameters, paper_workload):
    simulator = SIMULATORS[protocol](paper_parameters, paper_workload)
    result = benchmark(
        run_monte_carlo, simulator.simulate_once, runs=100, seed=1
    )
    assert result.runs == 100
    assert 0.0 < result.mean_waste < 1.0


def test_single_simulation_run(benchmark, paper_parameters, paper_workload):
    simulator = AbftPeriodicCkptSimulator(paper_parameters, paper_workload)
    trace = benchmark(simulator.simulate, seed=3)
    assert trace.makespan > paper_workload.total_time
