"""repro: a reproduction of "Assessing the Impact of ABFT and Checkpoint
Composite Strategies" (Bosilca, Bouteiller, Herault, Robert, Dongarra --
APDCM / IPDPSW 2014).

The package provides, from scratch and in pure Python + NumPy:

* the paper's analytical performance model for the PurePeriodicCkpt,
  BiPeriodicCkpt and ABFT&PeriodicCkpt protocols (:mod:`repro.core.analytical`);
* a discrete-event simulator of the same protocols used to validate the
  model (:mod:`repro.core.protocols`, :mod:`repro.simulation`);
* the substrates those depend on: failure models (:mod:`repro.failures`),
  application phase models (:mod:`repro.application`) and checkpoint storage
  cost models (:mod:`repro.checkpointing`);
* an actual ABFT-protected dense linear-algebra layer demonstrating the
  mechanism the model abstracts (:mod:`repro.abft`);
* the experiment harness regenerating every figure of the evaluation section
  (:mod:`repro.experiments`, also exposed through ``python -m repro.cli``);
* a campaign-execution subsystem for running the validation at scale
  (:mod:`repro.campaign`);
* the unified Scenario API (:mod:`repro.scenario`): declarative,
  JSON-serializable experiment specs -- protocol set x failure law x
  platform x workload x sweep axes -- consumed by the registry, the
  simulators, the campaign layer and the ``scenario`` CLI subcommands;
* the strategy advisor (:mod:`repro.optimize`): numeric period optimization
  (validated against the Equation 11 closed forms), simulation-backed
  refinement, and regime maps naming the winning protocol per platform
  cell (``python -m repro.cli optimize {period,compare,map}``).

Running campaigns at scale
--------------------------
The paper averages 1000 simulated executions per parameter point and sweeps
the whole (MTBF, alpha) plane.  :mod:`repro.campaign` makes that tractable:

* :class:`~repro.campaign.ParallelMonteCarloExecutor` fans the trials of one
  Monte-Carlo campaign out over a process pool.  Trial ``i`` derives its RNG
  from ``SeedSequence(entropy=seed, spawn_key=(i,))`` exactly like the serial
  runner, and per-trial samples are re-aggregated in trial order, so the same
  root seed yields **bit-identical** summary statistics for any worker count
  (``MonteCarloRunner(parallel=True, workers=N)`` exposes the same knob).
* :class:`~repro.campaign.SweepRunner` materialises (MTBF, alpha) grids as
  resumable jobs.  Completed points are stored one-JSON-file-per-point in a
  cache directory, keyed by the parameter scalars, the point's coordinates,
  the protocol list and the simulation settings; an interrupted or repeated
  sweep recomputes only missing points.  When no simulation is requested the
  analytical heatmaps are evaluated in a single vectorised NumPy pass
  (:mod:`repro.core.analytical.grid`), bit-identical to the scalar models.

See ``examples/parallel_campaign.py`` for a worked example, or run
``python -m repro.cli campaign --reduced --cache-dir ./cache --resume``.

Quickstart
----------
>>> from repro import quick_waste_comparison
>>> from repro.utils import MINUTE, WEEK
>>> table = quick_waste_comparison(
...     application_time=1 * WEEK, alpha=0.8, mtbf=120 * MINUTE,
...     checkpoint=10 * MINUTE, downtime=1 * MINUTE)
>>> sorted(table) == ['ABFT&PeriodicCkpt', 'BiPeriodicCkpt', 'PurePeriodicCkpt']
True
>>> table['ABFT&PeriodicCkpt'] < table['PurePeriodicCkpt']
True
"""

from __future__ import annotations

from repro.core import (
    AbftPeriodicCkptModel,
    AbftPeriodicCkptSimulator,
    AnalyticalModel,
    BiPeriodicCkptModel,
    BiPeriodicCkptSimulator,
    ModelPrediction,
    NoFaultToleranceModel,
    NoFaultToleranceSimulator,
    ProtocolSimulator,
    PurePeriodicCkptModel,
    PurePeriodicCkptSimulator,
    ResilienceParameters,
)
from repro.application import ApplicationWorkload, DatasetPartition, Epoch
from repro.checkpointing import (
    BuddyStorage,
    CheckpointCostModel,
    CheckpointCosts,
    CheckpointStorage,
    FlatStorage,
    IncrementalCheckpointing,
    LocalStorage,
    MultiLevelStorage,
    RemoteFileSystemStorage,
    StorageStack,
)
from repro.campaign import (
    ParallelMonteCarloExecutor,
    SweepJob,
    SweepResult,
    SweepRunner,
    run_monte_carlo_parallel,
)
from repro.failures import ExponentialFailureModel, FailureTimeline, Platform
from repro.optimize import (
    PeriodOptimum,
    RegimeMap,
    RegimeMapSpec,
    compute_regime_map,
    optimize_period,
    refine_period,
)
from repro.scenario import (
    Scenario,
    ScenarioResult,
    ScenarioSpec,
    optimize_scenario,
    run_scenario,
)
from repro.simulation import (
    MonteCarloResult,
    MonteCarloRunner,
    TrialTable,
    run_monte_carlo,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # Parameters and workloads
    "ResilienceParameters",
    "ApplicationWorkload",
    "DatasetPartition",
    "Epoch",
    "CheckpointCosts",
    "CheckpointCostModel",
    # Checkpoint storage zoo (lowered into scalar costs by the parameters)
    "CheckpointStorage",
    "StorageStack",
    "FlatStorage",
    "RemoteFileSystemStorage",
    "LocalStorage",
    "BuddyStorage",
    "MultiLevelStorage",
    "IncrementalCheckpointing",
    "Platform",
    "ExponentialFailureModel",
    "FailureTimeline",
    # Analytical models
    "AnalyticalModel",
    "ModelPrediction",
    "NoFaultToleranceModel",
    "PurePeriodicCkptModel",
    "BiPeriodicCkptModel",
    "AbftPeriodicCkptModel",
    # Simulators
    "ProtocolSimulator",
    "NoFaultToleranceSimulator",
    "PurePeriodicCkptSimulator",
    "BiPeriodicCkptSimulator",
    "AbftPeriodicCkptSimulator",
    "run_monte_carlo",
    "MonteCarloResult",
    "MonteCarloRunner",
    "TrialTable",
    # Campaign execution
    "ParallelMonteCarloExecutor",
    "run_monte_carlo_parallel",
    "SweepJob",
    "SweepResult",
    "SweepRunner",
    # Scenario API
    "Scenario",
    "ScenarioSpec",
    "ScenarioResult",
    "run_scenario",
    # Strategy advisor (numeric optimization and regime maps)
    "PeriodOptimum",
    "optimize_period",
    "refine_period",
    "optimize_scenario",
    "RegimeMap",
    "RegimeMapSpec",
    "compute_regime_map",
    # Convenience
    "quick_waste_comparison",
]


def quick_waste_comparison(
    *,
    application_time: float,
    alpha: float,
    mtbf: float,
    checkpoint: float,
    recovery: float | None = None,
    downtime: float = 60.0,
    library_fraction: float = 0.8,
    abft_overhead: float = 1.03,
    abft_reconstruction: float = 2.0,
) -> dict[str, float]:
    """Predicted waste of the three protocols for a single-epoch application.

    A convenience wrapper around the analytical models for the most common
    question: *given my application and platform, which protocol wastes the
    least platform time?*  All durations are in seconds.

    Returns a mapping ``{protocol name: waste}``.
    """
    params = ResilienceParameters.from_scalars(
        platform_mtbf=mtbf,
        checkpoint=checkpoint,
        recovery=recovery,
        downtime=downtime,
        library_fraction=library_fraction,
        abft_overhead=abft_overhead,
        abft_reconstruction=abft_reconstruction,
    )
    workload = ApplicationWorkload.single_epoch(
        application_time, alpha, library_fraction=library_fraction
    )
    models = (
        PurePeriodicCkptModel(params),
        BiPeriodicCkptModel(params),
        AbftPeriodicCkptModel(params),
    )
    return {model.name: model.evaluate(workload).waste for model in models}
