"""Argument validation helpers.

Every public constructor in the library validates its numeric parameters with
these helpers so that configuration errors (a negative MTBF, a checkpoint
cost of zero, a fraction above one, ...) fail immediately with a clear
message instead of surfacing as a ``nan`` waste three layers later.
"""

from __future__ import annotations

import math
from typing import SupportsFloat


def _as_float(value: SupportsFloat, name: str) -> float:
    try:
        result = float(value)
    except (TypeError, ValueError) as exc:  # pragma: no cover - defensive
        raise TypeError(f"{name} must be a real number, got {value!r}") from exc
    if math.isnan(result):
        raise ValueError(f"{name} must not be NaN")
    return result


def require_positive(value: SupportsFloat, name: str = "value") -> float:
    """Return ``value`` as ``float``, raising ``ValueError`` unless it is > 0."""
    result = _as_float(value, name)
    if result <= 0:
        raise ValueError(f"{name} must be strictly positive, got {result}")
    return result


def require_non_negative(value: SupportsFloat, name: str = "value") -> float:
    """Return ``value`` as ``float``, raising ``ValueError`` unless it is >= 0."""
    result = _as_float(value, name)
    if result < 0:
        raise ValueError(f"{name} must be non-negative, got {result}")
    return result


def require_in_range(
    value: SupportsFloat,
    low: float,
    high: float,
    name: str = "value",
    *,
    inclusive: bool = True,
) -> float:
    """Return ``value`` as ``float`` requiring ``low <= value <= high``.

    With ``inclusive=False`` the bounds themselves are rejected.
    """
    result = _as_float(value, name)
    if inclusive:
        if not (low <= result <= high):
            raise ValueError(f"{name} must be in [{low}, {high}], got {result}")
    else:
        if not (low < result < high):
            raise ValueError(f"{name} must be in ({low}, {high}), got {result}")
    return result


def require_probability(value: SupportsFloat, name: str = "probability") -> float:
    """Validate a probability: a float in the closed interval [0, 1]."""
    return require_in_range(value, 0.0, 1.0, name)


def require_fraction(value: SupportsFloat, name: str = "fraction") -> float:
    """Validate a fraction of a whole: a float in the closed interval [0, 1].

    Semantically identical to :func:`require_probability`; kept separate so
    call sites read naturally (``require_fraction(alpha, "alpha")``).
    """
    return require_in_range(value, 0.0, 1.0, name)
