"""Canonical units used across the library.

Internally every duration is a ``float`` number of **seconds** and every data
size a ``float`` number of **bytes**.  The constants below are multipliers so
that user-facing code can write ``10 * MINUTE`` or ``2 * GB`` instead of raw
magic numbers; the helpers convert back to human-readable strings for
reporting.

The paper quotes its parameters in minutes (checkpoint cost ``C = R = 10
minutes``), days (MTBF) and weeks (epoch duration); keeping a single internal
unit avoids an entire class of unit-mismatch bugs in the model formulas.
"""

from __future__ import annotations

import math

# --------------------------------------------------------------------------- #
# Time units (seconds)
# --------------------------------------------------------------------------- #
SECOND: float = 1.0
MINUTE: float = 60.0 * SECOND
HOUR: float = 60.0 * MINUTE
DAY: float = 24.0 * HOUR
WEEK: float = 7.0 * DAY
YEAR: float = 365.0 * DAY

# --------------------------------------------------------------------------- #
# Data-size units (bytes)
# --------------------------------------------------------------------------- #
KB: float = 1e3
MB: float = 1e6
GB: float = 1e9
TB: float = 1e12
PB: float = 1e15

_TIME_STEPS = (
    (YEAR, "y"),
    (WEEK, "w"),
    (DAY, "d"),
    (HOUR, "h"),
    (MINUTE, "min"),
    (SECOND, "s"),
)

_SIZE_STEPS = (
    (PB, "PB"),
    (TB, "TB"),
    (GB, "GB"),
    (MB, "MB"),
    (KB, "KB"),
    (1.0, "B"),
)


def to_seconds(value: float, unit: float = SECOND) -> float:
    """Convert ``value`` expressed in ``unit`` into seconds.

    Parameters
    ----------
    value:
        Magnitude in the given unit.
    unit:
        One of the module-level constants (:data:`MINUTE`, :data:`HOUR`, ...).

    Examples
    --------
    >>> to_seconds(10, MINUTE)
    600.0
    """
    return float(value) * float(unit)


def to_minutes(seconds: float) -> float:
    """Convert a duration in seconds to minutes."""
    return float(seconds) / MINUTE


def to_hours(seconds: float) -> float:
    """Convert a duration in seconds to hours."""
    return float(seconds) / HOUR


def format_duration(seconds: float, precision: int = 2) -> str:
    """Render a duration as a short human-readable string.

    The largest unit whose magnitude is at least one is used, e.g.
    ``format_duration(90)`` returns ``"1.50 min"`` and
    ``format_duration(604800)`` returns ``"1.00 w"``.

    Parameters
    ----------
    seconds:
        Duration in seconds.  Negative durations are rendered with a leading
        minus sign; ``nan``/``inf`` are rendered as-is.
    precision:
        Number of decimal digits.
    """
    if math.isnan(seconds) or math.isinf(seconds):
        return str(seconds)
    sign = "-" if seconds < 0 else ""
    magnitude = abs(float(seconds))
    for step, suffix in _TIME_STEPS:
        if magnitude >= step:
            return f"{sign}{magnitude / step:.{precision}f} {suffix}"
    return f"{sign}{magnitude:.{precision}f} s"


def format_bytes(num_bytes: float, precision: int = 2) -> str:
    """Render a data size as a short human-readable string (decimal units)."""
    if math.isnan(num_bytes) or math.isinf(num_bytes):
        return str(num_bytes)
    sign = "-" if num_bytes < 0 else ""
    magnitude = abs(float(num_bytes))
    for step, suffix in _SIZE_STEPS:
        if magnitude >= step:
            return f"{sign}{magnitude / step:.{precision}f} {suffix}"
    return f"{sign}{magnitude:.{precision}f} B"
