"""Streaming statistics and confidence intervals.

The discrete-event validation campaign of the paper averages each
configuration over one thousand independent simulated executions.  The
helpers here aggregate those samples without storing them all (Welford's
online algorithm) and compute normal-approximation confidence intervals for
the reported waste.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "RunningStatistics",
    "SummaryStatistics",
    "confidence_interval",
    "summarize",
    "summarize_array",
]

# Two-sided critical values of the standard normal distribution for the
# confidence levels we actually use.  Using a small lookup table avoids a
# SciPy dependency in the core package (SciPy is only required by the test
# extras).
_Z_TABLE = {
    0.80: 1.2815515655446004,
    0.90: 1.6448536269514722,
    0.95: 1.959963984540054,
    0.98: 2.3263478740408408,
    0.99: 2.5758293035489004,
}


def _z_value(confidence: float) -> float:
    if confidence in _Z_TABLE:
        return _Z_TABLE[confidence]
    # Acklam-style rational approximation of the normal quantile; accurate to
    # ~1e-9 which is far beyond what Monte-Carlo noise warrants.
    p = 0.5 + confidence / 2.0
    return _norm_ppf(p)


def _norm_ppf(p: float) -> float:
    """Inverse CDF of the standard normal distribution (rational approx.)."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    # Coefficients for the central and tail regions (Peter Acklam, 2003).
    a = [-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00]
    b = [-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00]
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )


class RunningStatistics:
    """Welford online accumulator of mean / variance / extrema.

    Numerically stable for long streams and mergeable, which lets the
    simulation runner aggregate per-worker partial results.

    Examples
    --------
    >>> acc = RunningStatistics()
    >>> for x in [1.0, 2.0, 3.0]:
    ...     acc.add(x)
    >>> acc.mean
    2.0
    >>> round(acc.variance, 10)
    1.0
    """

    __slots__ = ("_count", "_mean", "_m2", "_minimum", "_maximum")

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._minimum = math.inf
        self._maximum = -math.inf

    # -- mutation ---------------------------------------------------------- #
    def add(self, value: float) -> None:
        """Add a single observation."""
        value = float(value)
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._minimum = min(self._minimum, value)
        self._maximum = max(self._maximum, value)

    def extend(self, values: Iterable[float]) -> None:
        """Add every observation from an iterable."""
        for value in values:
            self.add(value)

    def merge(self, other: "RunningStatistics") -> "RunningStatistics":
        """Merge another accumulator into this one (Chan's parallel update)."""
        if other._count == 0:
            return self
        if self._count == 0:
            self._count = other._count
            self._mean = other._mean
            self._m2 = other._m2
            self._minimum = other._minimum
            self._maximum = other._maximum
            return self
        total = self._count + other._count
        delta = other._mean - self._mean
        self._m2 = self._m2 + other._m2 + delta * delta * self._count * other._count / total
        self._mean = (self._count * self._mean + other._count * other._mean) / total
        self._count = total
        self._minimum = min(self._minimum, other._minimum)
        self._maximum = max(self._maximum, other._maximum)
        return self

    # -- accessors --------------------------------------------------------- #
    @property
    def count(self) -> int:
        """Number of observations seen so far."""
        return self._count

    @property
    def mean(self) -> float:
        """Sample mean (``nan`` when empty)."""
        return self._mean if self._count else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance (``nan`` for fewer than two samples)."""
        if self._count < 2:
            return math.nan
        return self._m2 / (self._count - 1)

    @property
    def std(self) -> float:
        """Unbiased sample standard deviation."""
        var = self.variance
        return math.sqrt(var) if not math.isnan(var) else math.nan

    @property
    def minimum(self) -> float:
        """Smallest observation (``nan`` when empty)."""
        return self._minimum if self._count else math.nan

    @property
    def maximum(self) -> float:
        """Largest observation (``nan`` when empty)."""
        return self._maximum if self._count else math.nan

    def standard_error(self) -> float:
        """Standard error of the mean."""
        if self._count < 2:
            return math.nan
        return self.std / math.sqrt(self._count)

    def to_summary(self, confidence: float = 0.95) -> "SummaryStatistics":
        """Freeze into an immutable :class:`SummaryStatistics`."""
        half_width = math.nan
        if self._count >= 2:
            half_width = _z_value(confidence) * self.standard_error()
        return SummaryStatistics(
            count=self._count,
            mean=self.mean,
            std=self.std,
            minimum=self.minimum,
            maximum=self.maximum,
            confidence=confidence,
            ci_half_width=half_width,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"RunningStatistics(count={self._count}, mean={self.mean:.6g}, "
            f"std={self.std:.6g})"
        )


@dataclass(frozen=True)
class SummaryStatistics:
    """Immutable summary of a sample: mean, spread and a confidence interval."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    confidence: float
    ci_half_width: float

    @property
    def ci_low(self) -> float:
        """Lower bound of the confidence interval on the mean."""
        return self.mean - self.ci_half_width

    @property
    def ci_high(self) -> float:
        """Upper bound of the confidence interval on the mean."""
        return self.mean + self.ci_half_width

    def __str__(self) -> str:
        if self.count == 0:
            return "no samples"
        if math.isnan(self.ci_half_width):
            return f"{self.mean:.6g} (n={self.count})"
        return f"{self.mean:.6g} ± {self.ci_half_width:.2g} (n={self.count})"


def confidence_interval(
    samples: Sequence[float] | np.ndarray, confidence: float = 0.95
) -> tuple[float, float]:
    """Normal-approximation confidence interval on the mean of ``samples``.

    Returns ``(low, high)``.  For a single sample the interval degenerates to
    ``(x, x)``; for an empty sequence ``(nan, nan)`` is returned.
    """
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        return (math.nan, math.nan)
    mean = float(np.mean(data))
    if data.size == 1:
        return (mean, mean)
    sem = float(np.std(data, ddof=1)) / math.sqrt(data.size)
    half = _z_value(confidence) * sem
    return (mean - half, mean + half)


def summarize_array(
    values: np.ndarray, confidence: float = 0.95
) -> SummaryStatistics:
    """Summarize a NumPy column in one vectorized pass.

    This is the hot-path summary used by :class:`~repro.simulation.table.TrialTable`
    for the Monte-Carlo campaign columns: one ``mean``/``std``/``min``/``max``
    reduction over the whole column instead of a per-sample Python loop.
    """
    data = np.asarray(values, dtype=float).ravel()
    count = int(data.size)
    if count == 0:
        return SummaryStatistics(
            count=0,
            mean=math.nan,
            std=math.nan,
            minimum=math.nan,
            maximum=math.nan,
            confidence=confidence,
            ci_half_width=math.nan,
        )
    mean = float(np.mean(data))
    if count < 2:
        std = math.nan
        half_width = math.nan
    else:
        std = float(np.std(data, ddof=1))
        half_width = _z_value(confidence) * std / math.sqrt(count)
    return SummaryStatistics(
        count=count,
        mean=mean,
        std=std,
        minimum=float(np.min(data)),
        maximum=float(np.max(data)),
        confidence=confidence,
        ci_half_width=half_width,
    )


def summarize(
    samples: Sequence[float] | np.ndarray, confidence: float = 0.95
) -> SummaryStatistics:
    """Summarize a sequence of samples into :class:`SummaryStatistics`."""
    return summarize_array(np.asarray(list(samples), dtype=float), confidence)
