"""Small shared utilities used throughout :mod:`repro`.

The sub-modules are intentionally dependency-free (NumPy only) so that every
other package can import them without creating cycles:

* :mod:`repro.utils.units` -- canonical time and data-size units.  The whole
  library works in **seconds** and **bytes** internally; these constants make
  parameter files readable (``10 * MINUTE``, ``1 * WEEK``, ...).
* :mod:`repro.utils.validation` -- argument checking helpers that raise
  consistent, descriptive exceptions.
* :mod:`repro.utils.stats` -- streaming statistics (Welford), confidence
  intervals and summary containers used to aggregate Monte-Carlo simulation
  results.
* :mod:`repro.utils.tables` -- plain-text/CSV table rendering used by the
  experiment harness to print paper-style result rows.
"""

from repro.utils.units import (
    SECOND,
    MINUTE,
    HOUR,
    DAY,
    WEEK,
    YEAR,
    KB,
    MB,
    GB,
    TB,
    PB,
    format_duration,
    format_bytes,
    to_minutes,
    to_hours,
    to_seconds,
)
from repro.utils.validation import (
    require_positive,
    require_non_negative,
    require_in_range,
    require_probability,
    require_fraction,
)
from repro.utils.stats import (
    RunningStatistics,
    SummaryStatistics,
    confidence_interval,
    summarize,
)
from repro.utils.tables import Table, format_table, write_csv

__all__ = [
    "SECOND",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "YEAR",
    "KB",
    "MB",
    "GB",
    "TB",
    "PB",
    "format_duration",
    "format_bytes",
    "to_minutes",
    "to_hours",
    "to_seconds",
    "require_positive",
    "require_non_negative",
    "require_in_range",
    "require_probability",
    "require_fraction",
    "RunningStatistics",
    "SummaryStatistics",
    "confidence_interval",
    "summarize",
    "Table",
    "format_table",
    "write_csv",
]
