"""Plain-text and CSV table rendering.

The experiment harness prints the rows and series behind every figure of the
paper.  Rather than depending on a plotting stack (unavailable offline), the
results are rendered as aligned ASCII tables and machine-readable CSV files
that can be re-plotted by any downstream tool.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

__all__ = ["Table", "format_table", "write_csv"]


def _format_cell(value: Any, float_format: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    float_format: str = ".4g",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    rendered_rows = [
        [_format_cell(cell, float_format) for cell in row] for row in rows
    ]
    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[idx]) for idx, cell in enumerate(cells))

    parts: list[str] = []
    if title:
        parts.append(title)
    header_line = line([str(h) for h in headers])
    parts.append(header_line)
    parts.append("-" * len(header_line))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
) -> Path:
    """Write ``rows`` to ``path`` as CSV, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))
    return path


@dataclass
class Table:
    """A small mutable table of results.

    Collects rows during an experiment and renders them either as text
    (:meth:`to_text`) or CSV (:meth:`to_csv` / :meth:`write`).

    Examples
    --------
    >>> table = Table(["nodes", "waste"], title="demo")
    >>> table.add_row([1000, 0.0123])
    >>> print(table.to_text())  # doctest: +ELLIPSIS
    demo
    nodes   waste
    ...
    """

    headers: Sequence[str]
    title: str | None = None
    float_format: str = ".4g"
    rows: list[list[Any]] = field(default_factory=list)

    def add_row(self, row: Sequence[Any]) -> None:
        """Append one row; its length must match the header count."""
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(self.headers)} columns"
            )
        self.rows.append(list(row))

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        """Append many rows."""
        for row in rows:
            self.add_row(row)

    def to_text(self) -> str:
        """Render as an aligned plain-text table."""
        return format_table(
            self.headers, self.rows, float_format=self.float_format, title=self.title
        )

    def to_csv(self) -> str:
        """Render as a CSV string (header row first)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(list(self.headers))
        for row in self.rows:
            writer.writerow(row)
        return buffer.getvalue()

    def write(self, path: str | Path) -> Path:
        """Write the table as CSV to ``path`` and return the path."""
        return write_csv(path, self.headers, self.rows)

    def column(self, name: str) -> list[Any]:
        """Return the values of the column called ``name``."""
        try:
            index = list(self.headers).index(name)
        except ValueError as exc:
            raise KeyError(f"no column named {name!r}") from exc
        return [row[index] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)
