"""Two-level (local + remote) checkpoint hierarchy.

Hierarchical checkpointing keeps frequent, cheap checkpoints on a fast local
level and periodically drains them to a slower, more resilient remote level.
The paper mentions such protocols as the way to reach the very low
checkpoint costs (C = R = 6 s) needed for periodic checkpointing to stay
competitive at a million nodes (end of Section V-C); this class lets users
explore that regime.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.checkpointing.storage import CheckpointStorage
from repro.core.registry import register_storage
from repro.utils.validation import require_fraction

__all__ = ["MultiLevelStorage"]


@register_storage("multi-level", aliases=("multilevel",), nested=("local", "remote"))
class MultiLevelStorage(CheckpointStorage):
    """A fast local level backed by a slower resilient remote level.

    Parameters
    ----------
    local:
        The fast level (e.g. :class:`~repro.checkpointing.local.LocalStorage`
        or :class:`~repro.checkpointing.buddy.BuddyStorage`).
    remote:
        The slow level (e.g.
        :class:`~repro.checkpointing.remote_fs.RemoteFileSystemStorage`).
    remote_fraction:
        Fraction of checkpoints that are drained to the remote level (the
        effective write cost is the weighted mix).  ``0`` behaves as the
        local level alone, ``1`` as local followed by remote every time.
    remote_read_fraction:
        Fraction of recoveries that must come from the remote level (e.g.
        after a multi-node failure destroying the local copies).
    """

    name = "multi-level"

    def __init__(
        self,
        local: CheckpointStorage,
        remote: CheckpointStorage,
        remote_fraction: float = 0.1,
        remote_read_fraction: float = 0.1,
    ) -> None:
        self._local = local
        self._remote = remote
        self._remote_fraction = require_fraction(remote_fraction, "remote_fraction")
        self._remote_read_fraction = require_fraction(
            remote_read_fraction, "remote_read_fraction"
        )

    @property
    def local(self) -> CheckpointStorage:
        """The fast (frequent) level."""
        return self._local

    @property
    def remote(self) -> CheckpointStorage:
        """The slow (resilient) level."""
        return self._remote

    @property
    def remote_fraction(self) -> float:
        """Fraction of checkpoints also written to the remote level."""
        return self._remote_fraction

    @property
    def remote_read_fraction(self) -> float:
        """Fraction of recoveries served from the remote level."""
        return self._remote_read_fraction

    @property
    def mtbf_sensitive(self) -> bool:
        return self._local.mtbf_sensitive or self._remote.mtbf_sensitive

    def lowered_costs(
        self,
        data_bytes: float,
        node_count: int,
        *,
        platform_mtbf: Optional[float] = None,
    ) -> Tuple[float, float]:
        """Weighted-mix lowering over both levels' *lowered* costs.

        Exact for the scalar waste model: the effective write cost is
        ``C_local + f * C_remote`` and the effective read cost the
        ``remote_read_fraction`` mix, computed from the children's own
        lowerings (forwarding ``platform_mtbf``) so a risk-weighted level
        nested inside the hierarchy keeps its weighting.
        """
        local_write, local_read = self._local.lowered_costs(
            data_bytes, node_count, platform_mtbf=platform_mtbf
        )
        remote_write, remote_read = self._remote.lowered_costs(
            data_bytes, node_count, platform_mtbf=platform_mtbf
        )
        g = self._remote_read_fraction
        return (
            local_write + self._remote_fraction * remote_write,
            (1.0 - g) * local_read + g * remote_read,
        )

    def write_time(self, data_bytes: float, node_count: int) -> float:
        data_bytes, node_count = self._validate(data_bytes, node_count)
        local_time = self._local.write_time(data_bytes, node_count)
        remote_time = self._remote.write_time(data_bytes, node_count)
        return local_time + self._remote_fraction * remote_time

    def read_time(self, data_bytes: float, node_count: int) -> float:
        data_bytes, node_count = self._validate(data_bytes, node_count)
        local_time = self._local.read_time(data_bytes, node_count)
        remote_time = self._remote.read_time(data_bytes, node_count)
        return (
            (1.0 - self._remote_read_fraction) * local_time
            + self._remote_read_fraction * remote_time
        )
