"""Two-level (local + remote) checkpoint hierarchy.

Hierarchical checkpointing keeps frequent, cheap checkpoints on a fast local
level and periodically drains them to a slower, more resilient remote level.
The paper mentions such protocols as the way to reach the very low
checkpoint costs (C = R = 6 s) needed for periodic checkpointing to stay
competitive at a million nodes (end of Section V-C); this class lets users
explore that regime.
"""

from __future__ import annotations

from repro.checkpointing.storage import CheckpointStorage
from repro.utils.validation import require_fraction

__all__ = ["MultiLevelStorage"]


class MultiLevelStorage(CheckpointStorage):
    """A fast local level backed by a slower resilient remote level.

    Parameters
    ----------
    local:
        The fast level (e.g. :class:`~repro.checkpointing.local.LocalStorage`
        or :class:`~repro.checkpointing.buddy.BuddyStorage`).
    remote:
        The slow level (e.g.
        :class:`~repro.checkpointing.remote_fs.RemoteFileSystemStorage`).
    remote_fraction:
        Fraction of checkpoints that are drained to the remote level (the
        effective write cost is the weighted mix).  ``0`` behaves as the
        local level alone, ``1`` as local followed by remote every time.
    remote_read_fraction:
        Fraction of recoveries that must come from the remote level (e.g.
        after a multi-node failure destroying the local copies).
    """

    name = "multi-level"

    def __init__(
        self,
        local: CheckpointStorage,
        remote: CheckpointStorage,
        remote_fraction: float = 0.1,
        remote_read_fraction: float = 0.1,
    ) -> None:
        self._local = local
        self._remote = remote
        self._remote_fraction = require_fraction(remote_fraction, "remote_fraction")
        self._remote_read_fraction = require_fraction(
            remote_read_fraction, "remote_read_fraction"
        )

    @property
    def local(self) -> CheckpointStorage:
        """The fast (frequent) level."""
        return self._local

    @property
    def remote(self) -> CheckpointStorage:
        """The slow (resilient) level."""
        return self._remote

    @property
    def remote_fraction(self) -> float:
        """Fraction of checkpoints also written to the remote level."""
        return self._remote_fraction

    def write_time(self, data_bytes: float, node_count: int) -> float:
        data_bytes, node_count = self._validate(data_bytes, node_count)
        local_time = self._local.write_time(data_bytes, node_count)
        remote_time = self._remote.write_time(data_bytes, node_count)
        return local_time + self._remote_fraction * remote_time

    def read_time(self, data_bytes: float, node_count: int) -> float:
        data_bytes, node_count = self._validate(data_bytes, node_count)
        local_time = self._local.read_time(data_bytes, node_count)
        remote_time = self._remote.read_time(data_bytes, node_count)
        return (
            (1.0 - self._remote_read_fraction) * local_time
            + self._remote_read_fraction * remote_time
        )
