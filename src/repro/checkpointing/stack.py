"""A storage medium bound to a platform-sized checkpoint volume.

A :class:`~repro.checkpointing.storage.CheckpointStorage` answers "how long
does ``data_bytes`` over ``node_count`` nodes take?"; the protocols and the
analytical model consume scalar ``(C, R)``.  :class:`StorageStack` is the
binding between the two: a medium plus the data volume and node count it
checkpoints, lowered to scalars by
:class:`~repro.core.parameters.ResilienceParameters` at construction time so
every downstream consumer -- schedule compilers, both Monte-Carlo engines,
closed forms, the optimizer -- runs storage-stack protocols with zero new
backend code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.checkpointing.storage import CheckpointStorage
from repro.utils.validation import require_non_negative

__all__ = ["StorageStack"]


@dataclass(frozen=True)
class StorageStack:
    """A checkpoint medium bound to the volume and platform it serves.

    Parameters
    ----------
    storage:
        The medium (possibly a composite: multilevel, incremental, buddy
        with a fallback level, ...).
    data_bytes:
        Total checkpointed volume in bytes, aggregated over the platform.
        Irrelevant for :class:`~repro.checkpointing.flat.FlatStorage`
        (default 0).
    node_count:
        Number of nodes writing/reading concurrently (default 1).
    """

    storage: CheckpointStorage
    data_bytes: float = 0.0
    node_count: int = 1

    def __post_init__(self) -> None:
        require_non_negative(self.data_bytes, "data_bytes")
        if (
            isinstance(self.node_count, bool)
            or int(self.node_count) != self.node_count
            or self.node_count <= 0
        ):
            raise ValueError(
                f"node_count must be a positive integer, got {self.node_count!r}"
            )
        object.__setattr__(self, "data_bytes", float(self.data_bytes))
        object.__setattr__(self, "node_count", int(self.node_count))

    @property
    def mtbf_sensitive(self) -> bool:
        """Whether the lowered costs depend on the platform MTBF."""
        return self.storage.mtbf_sensitive

    def lowered_costs(
        self, platform_mtbf: Optional[float] = None
    ) -> Tuple[float, float]:
        """The scalar ``(C, R)`` of this stack, at one platform MTBF."""
        return self.storage.lowered_costs(
            self.data_bytes, self.node_count, platform_mtbf=platform_mtbf
        )

    def describe(self) -> str:
        """Short human label, e.g. ``multi-level(6.4e+13 B, 1000 nodes)``."""
        return (
            f"{self.storage.name}({self.data_bytes:.3g} B, "
            f"{self.node_count} nodes)"
        )
