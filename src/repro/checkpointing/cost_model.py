"""Bridge from storage substrates to the scalar costs of the paper's model.

The analytical model and the protocol simulators consume scalar costs:

* ``C``  -- full-memory coordinated checkpoint time;
* ``R``  -- full-memory recovery (reload) time;
* ``C_L`` / ``R_L`` -- checkpoint/recovery of the LIBRARY dataset only;
* ``C_R`` / ``R_R`` -- checkpoint/recovery of the REMAINDER dataset only;
* ``D``  -- downtime (reboot or spare swap-in).

:class:`CheckpointCosts` bundles them; :class:`CheckpointCostModel` derives
them either directly from scalars (the way the paper's experiments specify
them: "C = R = 10 minutes") or from a storage substrate, a platform and a
dataset partition.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.application.dataset import DatasetPartition
from repro.checkpointing.storage import CheckpointStorage
from repro.failures.platform import Platform
from repro.utils.validation import require_fraction, require_non_negative

__all__ = ["CheckpointCosts", "CheckpointCostModel"]


@dataclass(frozen=True)
class CheckpointCosts:
    """The scalar checkpoint/recovery/downtime costs of the model (seconds).

    Attributes
    ----------
    full_checkpoint:
        ``C``: time to write a coordinated checkpoint of the whole memory.
    full_recovery:
        ``R``: time to reload the whole memory from stable storage.
    library_fraction:
        ``rho``: fraction of the memory (hence of the cost) attributed to the
        LIBRARY dataset; partial costs are derived proportionally, exactly as
        in the paper (``C_L = rho * C``).
    downtime:
        ``D``: time to reboot the failed resource or swap in a spare.
    """

    full_checkpoint: float
    full_recovery: float
    library_fraction: float
    downtime: float

    def __post_init__(self) -> None:
        require_non_negative(self.full_checkpoint, "full_checkpoint")
        require_non_negative(self.full_recovery, "full_recovery")
        require_fraction(self.library_fraction, "library_fraction")
        require_non_negative(self.downtime, "downtime")

    # -- paper aliases ------------------------------------------------- #
    @property
    def C(self) -> float:  # noqa: N802 - paper notation
        """``C``: full checkpoint cost."""
        return self.full_checkpoint

    @property
    def R(self) -> float:  # noqa: N802 - paper notation
        """``R``: full recovery cost."""
        return self.full_recovery

    @property
    def D(self) -> float:  # noqa: N802 - paper notation
        """``D``: downtime."""
        return self.downtime

    @property
    def rho(self) -> float:
        """``rho``: LIBRARY fraction of memory."""
        return self.library_fraction

    # -- partial costs --------------------------------------------------- #
    @property
    def library_checkpoint(self) -> float:
        """``C_L = rho * C``: checkpoint of the LIBRARY dataset."""
        return self.library_fraction * self.full_checkpoint

    @property
    def remainder_checkpoint(self) -> float:
        """``C_Rem = (1 - rho) * C``: checkpoint of the REMAINDER dataset."""
        return (1.0 - self.library_fraction) * self.full_checkpoint

    @property
    def library_recovery(self) -> float:
        """``R_L = rho * R``: recovery of the LIBRARY dataset alone."""
        return self.library_fraction * self.full_recovery

    @property
    def remainder_recovery(self) -> float:
        """``R_Rem = (1 - rho) * R``: recovery of the REMAINDER dataset alone."""
        return (1.0 - self.library_fraction) * self.full_recovery

    # -- helpers --------------------------------------------------------- #
    def with_downtime(self, downtime: float) -> "CheckpointCosts":
        """Return a copy with a different downtime."""
        return replace(self, downtime=downtime)

    def scaled(self, factor: float) -> "CheckpointCosts":
        """Return a copy with checkpoint and recovery costs multiplied by ``factor``.

        The downtime is left untouched (it does not depend on data volume).
        """
        factor = require_non_negative(factor, "factor")
        return replace(
            self,
            full_checkpoint=self.full_checkpoint * factor,
            full_recovery=self.full_recovery * factor,
        )


class CheckpointCostModel:
    """Derives :class:`CheckpointCosts` from a storage substrate.

    Parameters
    ----------
    storage:
        The checkpoint storage medium.
    downtime:
        Downtime ``D`` in seconds.

    Examples
    --------
    >>> from repro.utils import GB, MINUTE
    >>> from repro.checkpointing import RemoteFileSystemStorage
    >>> from repro.failures import Platform
    >>> from repro.application import DatasetPartition
    >>> storage = RemoteFileSystemStorage(write_bandwidth=1000 * GB)
    >>> platform = Platform(node_count=10_000, node_mtbf=10 * 365 * 86400.0,
    ...                     memory_per_node=60 * GB)
    >>> dataset = DatasetPartition(total_memory=platform.total_memory,
    ...                            library_fraction=0.8)
    >>> model = CheckpointCostModel(storage, downtime=60.0)
    >>> costs = model.costs(platform, dataset)
    >>> costs.full_checkpoint
    600.0
    """

    def __init__(self, storage: CheckpointStorage, downtime: float = 60.0) -> None:
        self._storage = storage
        self._downtime = require_non_negative(downtime, "downtime")

    @property
    def storage(self) -> CheckpointStorage:
        """The storage medium used to derive the costs."""
        return self._storage

    @property
    def downtime(self) -> float:
        """Downtime ``D`` in seconds."""
        return self._downtime

    def costs(self, platform: Platform, dataset: DatasetPartition) -> CheckpointCosts:
        """Compute the scalar costs for ``dataset`` hosted on ``platform``."""
        total = dataset.total_memory
        node_count = platform.node_count
        return CheckpointCosts(
            full_checkpoint=self._storage.write_time(total, node_count),
            full_recovery=self._storage.read_time(total, node_count),
            library_fraction=dataset.library_fraction,
            downtime=self._downtime,
        )

    @staticmethod
    def from_scalars(
        checkpoint: float,
        recovery: float | None = None,
        *,
        library_fraction: float = 0.8,
        downtime: float = 60.0,
    ) -> CheckpointCosts:
        """Build :class:`CheckpointCosts` directly from scalar values.

        This mirrors how the paper's experiments specify costs
        ("C = R = 10 minutes, D = 1 minute, rho = 0.8").
        """
        checkpoint = require_non_negative(checkpoint, "checkpoint")
        recovery_value = checkpoint if recovery is None else float(recovery)
        return CheckpointCosts(
            full_checkpoint=checkpoint,
            full_recovery=recovery_value,
            library_fraction=library_fraction,
            downtime=downtime,
        )
