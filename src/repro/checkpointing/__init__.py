"""Checkpoint storage substrates and (C, R, D) cost models.

The protocols and models of the paper consume scalar costs: ``C`` (time to
write a full coordinated checkpoint), ``R`` (time to reload one), ``D``
(downtime) and their partial-dataset variants ``C_L``, ``C_R``.  Where those
numbers come from is a property of the *checkpoint storage* system.  The
paper discusses three regimes (Section V-C):

* a **remote parallel file system** whose aggregate bandwidth does not grow
  with the machine, so the checkpoint time grows linearly with the total
  memory (the Figure 8-9 hypothesis);
* **node-local storage** (NVRAM/SSD) whose bandwidth grows with the machine,
  so checkpoint time stays constant under weak scaling;
* **buddy / in-memory checkpointing** (references [25]-[28]) where each node
  stores its checkpoint in a partner's memory over the high-speed network --
  also constant-time under weak scaling (the Figure 10 hypothesis).

This package models each of these as a :class:`CheckpointStorage` that turns
(data size, node count) into write/read times, plus:

* :class:`~repro.checkpointing.incremental.IncrementalCheckpointing` -- a
  wrapper implementing the incremental-checkpoint optimisation used by
  BiPeriodicCkpt (only the modified dataset is written, the full state is
  read back at recovery);
* :class:`~repro.checkpointing.multilevel.MultiLevelStorage` -- a two-level
  (local + remote) hierarchy;
* :class:`~repro.checkpointing.cost_model.CheckpointCostModel` -- the bridge
  that produces the scalar parameters consumed by
  :class:`repro.core.parameters.CompositeParameters`.
"""

from repro.checkpointing.storage import CheckpointStorage
from repro.checkpointing.flat import FlatStorage
from repro.checkpointing.remote_fs import RemoteFileSystemStorage
from repro.checkpointing.local import LocalStorage
from repro.checkpointing.buddy import BuddyStorage
from repro.checkpointing.multilevel import MultiLevelStorage
from repro.checkpointing.incremental import IncrementalCheckpointing
from repro.checkpointing.stack import StorageStack
from repro.checkpointing.cost_model import CheckpointCostModel, CheckpointCosts

__all__ = [
    "CheckpointStorage",
    "FlatStorage",
    "RemoteFileSystemStorage",
    "LocalStorage",
    "BuddyStorage",
    "MultiLevelStorage",
    "IncrementalCheckpointing",
    "StorageStack",
    "CheckpointCostModel",
    "CheckpointCosts",
]
