"""Abstract checkpoint storage interface."""

from __future__ import annotations

import abc
from typing import Optional, Tuple

from repro.utils.validation import require_non_negative

__all__ = ["CheckpointStorage"]


class CheckpointStorage(abc.ABC):
    """A place where coordinated checkpoints are written and read back.

    Implementations convert a data volume (bytes, aggregated over the whole
    platform) and a node count into a *write time* and a *read time* in
    seconds.  The node count matters because some media have per-node
    bandwidth (scalable) while others have a fixed aggregate bandwidth
    (bottleneck).
    """

    #: Human-readable name used in reports.
    name: str = "storage"

    @abc.abstractmethod
    def write_time(self, data_bytes: float, node_count: int) -> float:
        """Seconds to write ``data_bytes`` from ``node_count`` nodes."""

    @abc.abstractmethod
    def read_time(self, data_bytes: float, node_count: int) -> float:
        """Seconds to read back ``data_bytes`` onto ``node_count`` nodes."""

    # ------------------------------------------------------------------ #
    # Scalar-cost lowering
    # ------------------------------------------------------------------ #
    @property
    def mtbf_sensitive(self) -> bool:
        """Whether the lowered ``(C, R)`` depend on the platform MTBF.

        Most media lower to fixed write/read times.  Risk-weighted media
        (buddy checkpointing with a fallback level) mix in the probability
        that the partner also fails, which depends on the failure rate --
        consumers that would otherwise reuse one lowering across an MTBF
        axis (the vectorised analytical grid, sweep cache keys) must
        re-lower per point when this is ``True``.  Composites propagate the
        flag from their children.
        """
        return False

    def lowered_costs(
        self,
        data_bytes: float,
        node_count: int,
        *,
        platform_mtbf: Optional[float] = None,
    ) -> Tuple[float, float]:
        """Lower this medium to the scalar ``(C, R)`` the model consumes.

        The default is the plain write/read time.  Overrides may use
        ``platform_mtbf`` to fold failure risk into the effective recovery
        cost (see :class:`~repro.checkpointing.buddy.BuddyStorage` with a
        fallback level); composites must forward ``platform_mtbf`` to their
        children so nested risk-weighting survives wrapping.
        """
        return (
            self.write_time(data_bytes, node_count),
            self.read_time(data_bytes, node_count),
        )

    # ------------------------------------------------------------------ #
    # Shared validation helper
    # ------------------------------------------------------------------ #
    @staticmethod
    def _validate(data_bytes: float, node_count: int) -> tuple[float, int]:
        data_bytes = require_non_negative(data_bytes, "data_bytes")
        if node_count <= 0 or int(node_count) != node_count:
            raise ValueError(f"node_count must be a positive integer, got {node_count}")
        return data_bytes, int(node_count)

    def checkpoint_and_restart_times(
        self, data_bytes: float, node_count: int
    ) -> tuple[float, float]:
        """Convenience: ``(C, R)`` for one full checkpoint of ``data_bytes``."""
        return (
            self.write_time(data_bytes, node_count),
            self.read_time(data_bytes, node_count),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}()"
