"""Buddy (in-memory, partner-node) checkpoint storage.

References [25]-[28] of the paper: each node stores a copy of its checkpoint
in the memory of a partner ("buddy") node over the high-speed interconnect.
The available bandwidth grows with the machine, so the checkpoint time is
governed by the per-node volume and the per-link bandwidth and stays constant
under weak scaling -- this is the scalable-checkpointing hypothesis of
Figure 10.

A buddy checkpoint survives a single node failure (the copy lives on the
partner) but is lost if a node *and* its buddy fail before the next
checkpoint completes; :meth:`BuddyStorage.survival_probability` exposes that
window so users can quantify the residual risk the scalar model ignores.
"""

from __future__ import annotations

import math

from repro.checkpointing.storage import CheckpointStorage
from repro.utils.validation import require_non_negative, require_positive

__all__ = ["BuddyStorage"]


class BuddyStorage(CheckpointStorage):
    """Partner-node in-memory checkpointing.

    Parameters
    ----------
    link_bandwidth:
        Point-to-point bandwidth between a node and its buddy, bytes/second.
    memory_overhead_factor:
        Fraction of node memory consumed by hosting the buddy's copy (not
        used in timing, exposed for capacity planning; default 1.0 means a
        full copy).
    latency:
        Fixed per-operation latency in seconds (synchronisation).
    """

    name = "buddy"

    def __init__(
        self,
        link_bandwidth: float,
        memory_overhead_factor: float = 1.0,
        latency: float = 0.0,
    ) -> None:
        self._link_bandwidth = require_positive(link_bandwidth, "link_bandwidth")
        self._memory_overhead_factor = require_non_negative(
            memory_overhead_factor, "memory_overhead_factor"
        )
        self._latency = require_non_negative(latency, "latency")

    @property
    def link_bandwidth(self) -> float:
        """Node-to-buddy bandwidth in bytes/second."""
        return self._link_bandwidth

    @property
    def memory_overhead_factor(self) -> float:
        """Extra memory fraction used on each node to host its buddy's copy."""
        return self._memory_overhead_factor

    def write_time(self, data_bytes: float, node_count: int) -> float:
        data_bytes, node_count = self._validate(data_bytes, node_count)
        if data_bytes == 0:
            return 0.0
        per_node = data_bytes / node_count
        return self._latency + per_node / self._link_bandwidth

    def read_time(self, data_bytes: float, node_count: int) -> float:
        # Restoring pulls the copy back from the buddy over the same link.
        return self.write_time(data_bytes, node_count)

    def survival_probability(
        self, platform_mtbf: float, exposure_time: float
    ) -> float:
        """Probability that a buddy checkpoint survives one failure event.

        After a node fails, its checkpoint only exists in the buddy's memory
        until a new checkpoint is written; if the buddy also fails within the
        ``exposure_time`` window the application state is lost.  For
        exponential failures the probability that the *specific* buddy node
        fails in that window is ``1 - exp(-t / mu_ind)`` -- here approximated
        from the platform MTBF assuming the window is short.

        Parameters
        ----------
        platform_mtbf:
            Platform MTBF in seconds.
        exposure_time:
            Duration of the vulnerability window in seconds (typically the
            re-checkpoint time after a recovery).
        """
        platform_mtbf = require_positive(platform_mtbf, "platform_mtbf")
        exposure_time = require_non_negative(exposure_time, "exposure_time")
        return math.exp(-exposure_time / platform_mtbf)
