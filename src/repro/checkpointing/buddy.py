"""Buddy (in-memory, partner-node) checkpoint storage.

References [25]-[28] of the paper: each node stores a copy of its checkpoint
in the memory of a partner ("buddy") node over the high-speed interconnect.
The available bandwidth grows with the machine, so the checkpoint time is
governed by the per-node volume and the per-link bandwidth and stays constant
under weak scaling -- this is the scalable-checkpointing hypothesis of
Figure 10.

A buddy checkpoint survives a single node failure (the copy lives on the
partner) but is lost if a node *and* its buddy fail before the next
checkpoint completes; :meth:`BuddyStorage.survival_probability` exposes that
window so users can quantify the residual risk the scalar model ignores.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from repro.checkpointing.storage import CheckpointStorage
from repro.core.registry import register_storage
from repro.utils.validation import require_non_negative, require_positive

__all__ = ["BuddyStorage"]


@register_storage("buddy", analytical=False, nested=("fallback_storage",))
class BuddyStorage(CheckpointStorage):
    """Partner-node in-memory checkpointing.

    Parameters
    ----------
    link_bandwidth:
        Point-to-point bandwidth between a node and its buddy, bytes/second.
    memory_overhead_factor:
        Fraction of node memory consumed by hosting the buddy's copy (not
        used in timing, exposed for capacity planning; default 1.0 means a
        full copy).
    latency:
        Fixed per-operation latency in seconds (synchronisation).
    fallback_storage:
        Optional slower level recoveries fall back to when the buddy copy
        was lost too (partner failed inside the vulnerability window).  With
        a fallback, :meth:`lowered_costs` risk-weights the effective
        recovery cost -- an MTBF-dependent approximation, hence the
        ``analytical=False`` registration.  Without one (the default), the
        lowering is the plain write/read time, exactly the seed behaviour.
    """

    name = "buddy"

    def __init__(
        self,
        link_bandwidth: float,
        memory_overhead_factor: float = 1.0,
        latency: float = 0.0,
        fallback_storage: Optional[CheckpointStorage] = None,
    ) -> None:
        self._link_bandwidth = require_positive(link_bandwidth, "link_bandwidth")
        self._memory_overhead_factor = require_non_negative(
            memory_overhead_factor, "memory_overhead_factor"
        )
        self._latency = require_non_negative(latency, "latency")
        if fallback_storage is not None and not isinstance(
            fallback_storage, CheckpointStorage
        ):
            raise ValueError(
                "fallback_storage must be a CheckpointStorage, "
                f"got {type(fallback_storage).__name__}"
            )
        self._fallback_storage = fallback_storage

    @property
    def link_bandwidth(self) -> float:
        """Node-to-buddy bandwidth in bytes/second."""
        return self._link_bandwidth

    @property
    def memory_overhead_factor(self) -> float:
        """Extra memory fraction used on each node to host its buddy's copy."""
        return self._memory_overhead_factor

    @property
    def fallback_storage(self) -> Optional[CheckpointStorage]:
        """The slower level used when the buddy copy is lost, if any."""
        return self._fallback_storage

    def write_time(self, data_bytes: float, node_count: int) -> float:
        data_bytes, node_count = self._validate(data_bytes, node_count)
        if data_bytes == 0:
            return 0.0
        per_node = data_bytes / node_count
        return self._latency + per_node / self._link_bandwidth

    def read_time(self, data_bytes: float, node_count: int) -> float:
        # Restoring pulls the copy back from the buddy over the same link.
        return self.write_time(data_bytes, node_count)

    # ------------------------------------------------------------------ #
    # Scalar lowering with partner-failure risk
    # ------------------------------------------------------------------ #
    @property
    def mtbf_sensitive(self) -> bool:
        # Only the risk-weighted recovery mix depends on the failure rate;
        # a plain buddy (no fallback) lowers to fixed write/read times.
        return self._fallback_storage is not None

    def lowered_costs(
        self,
        data_bytes: float,
        node_count: int,
        *,
        platform_mtbf: Optional[float] = None,
    ) -> Tuple[float, float]:
        """Lower to ``(C, R)``, risk-weighting ``R`` when a fallback exists.

        The vulnerability window is one buddy write: after a node failure
        the state only exists in the partner's memory until the restarted
        node has pulled it back and re-checkpointed.  With an individual
        node MTBF of ``platform_mtbf * node_count`` (exponential failures),
        the probability that the *specific* partner fails inside that
        window is ``p = 1 - survival_probability(node_mtbf, window)``, and
        the effective recovery cost is the mix
        ``(1 - p) * R_buddy + p * R_fallback``.  The write time is
        unchanged: the fallback level is assumed to drain asynchronously
        off the critical path.  Without a fallback (or without an MTBF to
        weight by) this is the plain write/read lowering.
        """
        write = self.write_time(data_bytes, node_count)
        read = self.read_time(data_bytes, node_count)
        if self._fallback_storage is None or platform_mtbf is None:
            return (write, read)
        node_mtbf = require_positive(platform_mtbf, "platform_mtbf") * node_count
        p_loss = 1.0 - self.survival_probability(node_mtbf, write)
        fallback_read = self._fallback_storage.lowered_costs(
            data_bytes, node_count, platform_mtbf=platform_mtbf
        )[1]
        return (write, (1.0 - p_loss) * read + p_loss * fallback_read)

    def survival_probability(
        self, platform_mtbf: float, exposure_time: float
    ) -> float:
        """Probability that a buddy checkpoint survives one failure event.

        After a node fails, its checkpoint only exists in the buddy's memory
        until a new checkpoint is written; if the buddy also fails within the
        ``exposure_time`` window the application state is lost.  For
        exponential failures the probability that the *specific* buddy node
        fails in that window is ``1 - exp(-t / mu_ind)`` -- here approximated
        from the platform MTBF assuming the window is short.

        Parameters
        ----------
        platform_mtbf:
            Platform MTBF in seconds.
        exposure_time:
            Duration of the vulnerability window in seconds (typically the
            re-checkpoint time after a recovery).
        """
        platform_mtbf = require_positive(platform_mtbf, "platform_mtbf")
        exposure_time = require_non_negative(exposure_time, "exposure_time")
        return math.exp(-exposure_time / platform_mtbf)
