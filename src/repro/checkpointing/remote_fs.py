"""Remote parallel-file-system storage with a fixed aggregate bandwidth.

This is the classical checkpoint target: every node writes its state to a
shared parallel file system.  The file system's aggregate bandwidth is fixed
by its I/O servers, so under weak scaling (total memory growing linearly with
the node count) the checkpoint time grows linearly too -- the pessimistic
hypothesis behind Figures 8 and 9 of the paper.
"""

from __future__ import annotations

from repro.checkpointing.storage import CheckpointStorage
from repro.core.registry import register_storage
from repro.utils.validation import require_non_negative, require_positive

__all__ = ["RemoteFileSystemStorage"]


@register_storage("remote-pfs", aliases=("remote", "pfs"))
class RemoteFileSystemStorage(CheckpointStorage):
    """Shared storage with fixed aggregate write/read bandwidth.

    Parameters
    ----------
    write_bandwidth:
        Aggregate write bandwidth in bytes per second.
    read_bandwidth:
        Aggregate read bandwidth in bytes per second (defaults to the write
        bandwidth, i.e. ``R = C`` as assumed in the paper's experiments).
    latency:
        Fixed per-operation latency in seconds (coordination, metadata).

    Examples
    --------
    >>> from repro.utils import GB
    >>> storage = RemoteFileSystemStorage(write_bandwidth=100 * GB)
    >>> storage.write_time(600 * GB, node_count=1000)
    6.0
    """

    name = "remote-pfs"

    def __init__(
        self,
        write_bandwidth: float,
        read_bandwidth: float | None = None,
        latency: float = 0.0,
    ) -> None:
        self._write_bandwidth = require_positive(write_bandwidth, "write_bandwidth")
        self._read_bandwidth = (
            require_positive(read_bandwidth, "read_bandwidth")
            if read_bandwidth is not None
            else self._write_bandwidth
        )
        self._latency = require_non_negative(latency, "latency")

    @property
    def write_bandwidth(self) -> float:
        """Aggregate write bandwidth in bytes/second."""
        return self._write_bandwidth

    @property
    def read_bandwidth(self) -> float:
        """Aggregate read bandwidth in bytes/second."""
        return self._read_bandwidth

    @property
    def latency(self) -> float:
        """Fixed per-operation latency in seconds."""
        return self._latency

    def write_time(self, data_bytes: float, node_count: int) -> float:
        data_bytes, _ = self._validate(data_bytes, node_count)
        if data_bytes == 0:
            return 0.0
        return self._latency + data_bytes / self._write_bandwidth

    def read_time(self, data_bytes: float, node_count: int) -> float:
        data_bytes, _ = self._validate(data_bytes, node_count)
        if data_bytes == 0:
            return 0.0
        return self._latency + data_bytes / self._read_bandwidth
