"""Incremental checkpointing wrapper.

Section III-B of the paper: *"since only a subset of the entire dataset is
modified during a library call (the LIBRARY dataset), incremental
checkpointing techniques can benefit PeriodicCkpt approaches.  This consists
of saving only the subset of the memory that has been modified since the last
checkpoint."*  The write cost then covers only the modified fraction while
the recovery cost still covers the full dataset, because "the different
incremental checkpoints must be combined to recover the entire dataset at
rollback time" (Section IV-C).

:class:`IncrementalCheckpointing` encodes exactly that asymmetry on top of
any underlying :class:`~repro.checkpointing.storage.CheckpointStorage`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.checkpointing.storage import CheckpointStorage
from repro.core.registry import register_storage
from repro.utils.validation import require_fraction

__all__ = ["IncrementalCheckpointing"]


@register_storage("incremental", nested=("storage",))
class IncrementalCheckpointing(CheckpointStorage):
    """Write only the modified fraction, read back everything.

    Parameters
    ----------
    storage:
        The underlying medium.
    modified_fraction:
        Fraction of the dataset modified since the previous checkpoint (the
        paper's ``rho`` during LIBRARY phases).
    """

    name = "incremental"

    def __init__(self, storage: CheckpointStorage, modified_fraction: float) -> None:
        self._storage = storage
        self._modified_fraction = require_fraction(
            modified_fraction, "modified_fraction"
        )

    @property
    def storage(self) -> CheckpointStorage:
        """The wrapped storage medium."""
        return self._storage

    @property
    def modified_fraction(self) -> float:
        """Fraction of the dataset written at each incremental checkpoint."""
        return self._modified_fraction

    def write_time(self, data_bytes: float, node_count: int) -> float:
        data_bytes, node_count = self._validate(data_bytes, node_count)
        return self._storage.write_time(
            data_bytes * self._modified_fraction, node_count
        )

    def read_time(self, data_bytes: float, node_count: int) -> float:
        # Recovery must reassemble the full dataset from the base checkpoint
        # plus increments: the volume read is the full dataset.
        data_bytes, node_count = self._validate(data_bytes, node_count)
        return self._storage.read_time(data_bytes, node_count)

    @property
    def mtbf_sensitive(self) -> bool:
        return self._storage.mtbf_sensitive

    def lowered_costs(
        self,
        data_bytes: float,
        node_count: int,
        *,
        platform_mtbf: Optional[float] = None,
    ) -> Tuple[float, float]:
        """Dirty-fraction lowering: write the delta, read everything.

        Exact for the scalar model -- ``C`` is the wrapped medium's write
        time of ``modified_fraction * data_bytes`` and ``R`` its read time
        of the full dataset, both taken from the wrapped *lowering* so a
        risk-weighted medium underneath keeps its weighting.
        """
        data_bytes, node_count = self._validate(data_bytes, node_count)
        write = self._storage.lowered_costs(
            data_bytes * self._modified_fraction,
            node_count,
            platform_mtbf=platform_mtbf,
        )[0]
        read = self._storage.lowered_costs(
            data_bytes, node_count, platform_mtbf=platform_mtbf
        )[1]
        return (write, read)
