"""Incremental checkpointing wrapper.

Section III-B of the paper: *"since only a subset of the entire dataset is
modified during a library call (the LIBRARY dataset), incremental
checkpointing techniques can benefit PeriodicCkpt approaches.  This consists
of saving only the subset of the memory that has been modified since the last
checkpoint."*  The write cost then covers only the modified fraction while
the recovery cost still covers the full dataset, because "the different
incremental checkpoints must be combined to recover the entire dataset at
rollback time" (Section IV-C).

:class:`IncrementalCheckpointing` encodes exactly that asymmetry on top of
any underlying :class:`~repro.checkpointing.storage.CheckpointStorage`.
"""

from __future__ import annotations

from repro.checkpointing.storage import CheckpointStorage
from repro.utils.validation import require_fraction

__all__ = ["IncrementalCheckpointing"]


class IncrementalCheckpointing(CheckpointStorage):
    """Write only the modified fraction, read back everything.

    Parameters
    ----------
    storage:
        The underlying medium.
    modified_fraction:
        Fraction of the dataset modified since the previous checkpoint (the
        paper's ``rho`` during LIBRARY phases).
    """

    name = "incremental"

    def __init__(self, storage: CheckpointStorage, modified_fraction: float) -> None:
        self._storage = storage
        self._modified_fraction = require_fraction(
            modified_fraction, "modified_fraction"
        )

    @property
    def storage(self) -> CheckpointStorage:
        """The wrapped storage medium."""
        return self._storage

    @property
    def modified_fraction(self) -> float:
        """Fraction of the dataset written at each incremental checkpoint."""
        return self._modified_fraction

    def write_time(self, data_bytes: float, node_count: int) -> float:
        data_bytes, node_count = self._validate(data_bytes, node_count)
        return self._storage.write_time(
            data_bytes * self._modified_fraction, node_count
        )

    def read_time(self, data_bytes: float, node_count: int) -> float:
        # Recovery must reassemble the full dataset from the base checkpoint
        # plus increments: the volume read is the full dataset.
        data_bytes, node_count = self._validate(data_bytes, node_count)
        return self._storage.read_time(data_bytes, node_count)
