"""Flat (scalar) checkpoint storage: fixed ``C`` and ``R``.

This is the paper's own cost model -- "C = R = 10 minutes" -- promoted to a
:class:`~repro.checkpointing.storage.CheckpointStorage` so that the scalar
API and the storage-stack API are one axis: a protocol constructed from bare
``checkpoint_cost`` / ``recovery_cost`` scalars behaves exactly as if it had
been given a :class:`FlatStorage` of those scalars.  The write/read times
ignore the data volume and node count entirely.
"""

from __future__ import annotations

from repro.checkpointing.storage import CheckpointStorage
from repro.core.registry import register_storage
from repro.utils.validation import require_non_negative

__all__ = ["FlatStorage"]


@register_storage("flat", aliases=("scalar",))
class FlatStorage(CheckpointStorage):
    """Fixed scalar checkpoint/recovery times, independent of scale.

    Parameters
    ----------
    checkpoint:
        ``C``: seconds to write a full coordinated checkpoint.
    recovery:
        ``R``: seconds to reload one (defaults to ``C``, the paper's
        ``R = C`` convention).
    """

    name = "flat"

    def __init__(self, checkpoint: float, recovery: float | None = None) -> None:
        self._checkpoint = require_non_negative(checkpoint, "checkpoint")
        self._recovery = (
            require_non_negative(recovery, "recovery")
            if recovery is not None
            else self._checkpoint
        )

    @property
    def checkpoint(self) -> float:
        """``C``: the fixed checkpoint cost in seconds."""
        return self._checkpoint

    @property
    def recovery(self) -> float:
        """``R``: the fixed recovery cost in seconds."""
        return self._recovery

    def write_time(self, data_bytes: float, node_count: int) -> float:
        self._validate(data_bytes, node_count)
        return self._checkpoint

    def read_time(self, data_bytes: float, node_count: int) -> float:
        self._validate(data_bytes, node_count)
        return self._recovery

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"FlatStorage(checkpoint={self._checkpoint}, recovery={self._recovery})"
