"""Node-local storage (NVRAM / SSD / burst buffer).

Each node writes its own share of the checkpoint to a local device whose
bandwidth it does not share with anyone.  Under weak scaling the per-node
volume is constant, so the checkpoint time is constant too -- the optimistic
hypothesis the paper says "can only be achieved through new hardware (like
NVRAM)" (Section V-C, discussion of Figure 10).
"""

from __future__ import annotations

from repro.checkpointing.storage import CheckpointStorage
from repro.core.registry import register_storage
from repro.utils.validation import require_non_negative, require_positive

__all__ = ["LocalStorage"]


@register_storage("node-local", aliases=("local", "nvram"))
class LocalStorage(CheckpointStorage):
    """Per-node storage with private bandwidth.

    Parameters
    ----------
    node_write_bandwidth:
        Write bandwidth of one node's device, bytes/second.
    node_read_bandwidth:
        Read bandwidth (defaults to the write bandwidth).
    latency:
        Fixed per-operation latency in seconds.

    Notes
    -----
    The time is driven by the most-loaded node; for an evenly distributed
    checkpoint (the coordinated-checkpoint case) that is simply
    ``data_bytes / node_count / node_bandwidth``.
    """

    name = "node-local"

    def __init__(
        self,
        node_write_bandwidth: float,
        node_read_bandwidth: float | None = None,
        latency: float = 0.0,
    ) -> None:
        self._node_write_bandwidth = require_positive(
            node_write_bandwidth, "node_write_bandwidth"
        )
        self._node_read_bandwidth = (
            require_positive(node_read_bandwidth, "node_read_bandwidth")
            if node_read_bandwidth is not None
            else self._node_write_bandwidth
        )
        self._latency = require_non_negative(latency, "latency")

    @property
    def node_write_bandwidth(self) -> float:
        """Per-node write bandwidth in bytes/second."""
        return self._node_write_bandwidth

    @property
    def node_read_bandwidth(self) -> float:
        """Per-node read bandwidth in bytes/second."""
        return self._node_read_bandwidth

    def write_time(self, data_bytes: float, node_count: int) -> float:
        data_bytes, node_count = self._validate(data_bytes, node_count)
        if data_bytes == 0:
            return 0.0
        per_node = data_bytes / node_count
        return self._latency + per_node / self._node_write_bandwidth

    def read_time(self, data_bytes: float, node_count: int) -> float:
        data_bytes, node_count = self._validate(data_bytes, node_count)
        if data_bytes == 0:
            return 0.0
        per_node = data_bytes / node_count
        return self._latency + per_node / self._node_read_bandwidth
