"""Figure 9: weak scaling with a LIBRARY ratio that grows with the machine.

The LIBRARY phase is an O(n^3) kernel (time growing as ``sqrt(x)``) while the
GENERAL phase is an O(n^2) update (constant time), so the fraction of time
spent under ABFT protection grows with the node count: alpha = 0.55, 0.8,
0.92 and 0.975 at 1k, 10k, 100k and 1M nodes -- exactly the values printed
under the x-axis of the paper's figure.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.application.scaling import ScalingMode, WeakScalingScenario
from repro.experiments.config import PAPER_NODE_COUNTS, paper_figure9_scenario
from repro.experiments.weak_scaling import WeakScalingResult, run_weak_scaling

__all__ = ["run_figure9"]


def run_figure9(
    scenario: Optional[WeakScalingScenario] = None,
    *,
    node_counts: Sequence[int] = PAPER_NODE_COUNTS,
    mtbf_scaling: ScalingMode = ScalingMode.INVERSE,
) -> WeakScalingResult:
    """Run the Figure 9 experiment (see :func:`repro.experiments.figure8.run_figure8`)."""
    scenario = scenario or paper_figure9_scenario(mtbf_scaling=mtbf_scaling)
    return run_weak_scaling(scenario, node_counts=node_counts, name="Figure 9")
