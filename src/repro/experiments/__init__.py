"""Experiment harness: regenerate every figure of the evaluation section.

Each figure of the paper has a dedicated generator that produces the same
rows/series the paper plots, as structured results, plain-text tables and CSV
files:

* :mod:`repro.experiments.figure7` -- waste heatmaps of the three protocols
  over the (MTBF, alpha) grid, plus the model-vs-simulation validation
  (Figures 7a-7f).
* :mod:`repro.experiments.figure8` -- weak scaling with fixed alpha = 0.8 and
  checkpoint cost growing with the machine (Figure 8).
* :mod:`repro.experiments.figure9` -- weak scaling with alpha growing with
  the machine (O(n^3) library phase vs O(n^2) general phase, Figure 9).
* :mod:`repro.experiments.figure10` -- same as Figure 9 with a constant
  (perfectly scalable) checkpoint cost (Figure 10).
* :mod:`repro.experiments.validation` -- model-vs-simulation comparison for
  arbitrary configurations (the machinery behind Figures 7b/7d/7f).
* :mod:`repro.experiments.sweep` -- generic parameter sweeps.
* :mod:`repro.experiments.config` -- the paper's parameter values, in one
  place.
"""

from repro.experiments.config import (
    Figure7Config,
    WeakScalingConfig,
    paper_figure7_config,
    paper_figure8_scenario,
    paper_figure9_scenario,
    paper_figure10_scenario,
)
from repro.experiments.validation import (
    NonExponentialValidationError,
    ValidationPoint,
    validate_configuration,
    validate_spec,
)
from repro.experiments.sweep import sweep_mtbf_alpha, SweepPoint
from repro.experiments.figure7 import Figure7Result, run_figure7
from repro.experiments.weak_scaling import (
    WeakScalingResult,
    run_weak_scaling,
    weak_scaling_spec,
)
from repro.experiments.figure8 import run_figure8
from repro.experiments.figure9 import run_figure9
from repro.experiments.figure10 import run_figure10
from repro.experiments.report import ReproductionReport, reproduction_report

__all__ = [
    "Figure7Config",
    "WeakScalingConfig",
    "paper_figure7_config",
    "paper_figure8_scenario",
    "paper_figure9_scenario",
    "paper_figure10_scenario",
    "ValidationPoint",
    "validate_configuration",
    "validate_spec",
    "NonExponentialValidationError",
    "weak_scaling_spec",
    "SweepPoint",
    "sweep_mtbf_alpha",
    "Figure7Result",
    "run_figure7",
    "WeakScalingResult",
    "run_weak_scaling",
    "run_figure8",
    "run_figure9",
    "run_figure10",
    "ReproductionReport",
    "reproduction_report",
]
