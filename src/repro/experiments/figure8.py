"""Figure 8: weak scaling with a fixed 80 % LIBRARY ratio.

Both application phases scale as O(n^3) operations on matrices whose total
memory grows linearly with the node count (so their parallel time grows as
``sqrt(x)``); the checkpoint cost grows linearly with the memory; the
platform MTBF shrinks with the node count.  The figure plots, for each
protocol, the waste and the expected number of failures per execution at
1k, 10k, 100k and 1M nodes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.application.scaling import ScalingMode, WeakScalingScenario
from repro.experiments.config import PAPER_NODE_COUNTS, paper_figure8_scenario
from repro.experiments.weak_scaling import WeakScalingResult, run_weak_scaling

__all__ = ["run_figure8"]


def run_figure8(
    scenario: Optional[WeakScalingScenario] = None,
    *,
    node_counts: Sequence[int] = PAPER_NODE_COUNTS,
    mtbf_scaling: ScalingMode = ScalingMode.INVERSE,
) -> WeakScalingResult:
    """Run the Figure 8 experiment.

    Parameters
    ----------
    scenario:
        Override the full scenario; by default the paper's Figure 8
        parameters are used.
    node_counts:
        Node counts to evaluate (1k, 10k, 100k, 1M in the paper).
    mtbf_scaling:
        How the platform MTBF scales with the node count.  The paper's text
        says it shrinks linearly (``INVERSE``, the default); pass
        ``ScalingMode.CONSTANT`` to reproduce the more optimistic reading
        discussed in EXPERIMENTS.md.
    """
    scenario = scenario or paper_figure8_scenario(mtbf_scaling=mtbf_scaling)
    return run_weak_scaling(scenario, node_counts=node_counts, name="Figure 8")
