"""Figure 10: weak scaling with a constant (perfectly scalable) checkpoint cost.

Identical to Figure 9 except that the checkpoint and recovery costs stay at
60 seconds regardless of the node count -- the buddy / node-local storage
hypothesis.  The paper's point: even under this optimistic assumption the
periodic-checkpointing protocols end up behind the composite approach at a
million nodes, because the ABFT overhead is constant while the rollback
protocols still lose work to increasingly frequent failures.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.application.scaling import ScalingMode, WeakScalingScenario
from repro.experiments.config import PAPER_NODE_COUNTS, paper_figure10_scenario
from repro.experiments.weak_scaling import WeakScalingResult, run_weak_scaling

__all__ = ["run_figure10"]


def run_figure10(
    scenario: Optional[WeakScalingScenario] = None,
    *,
    node_counts: Sequence[int] = PAPER_NODE_COUNTS,
    mtbf_scaling: ScalingMode = ScalingMode.INVERSE,
) -> WeakScalingResult:
    """Run the Figure 10 experiment (see :func:`repro.experiments.figure8.run_figure8`)."""
    scenario = scenario or paper_figure10_scenario(mtbf_scaling=mtbf_scaling)
    return run_weak_scaling(scenario, node_counts=node_counts, name="Figure 10")
