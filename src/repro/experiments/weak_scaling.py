"""Weak-scaling evaluation shared by Figures 8, 9 and 10.

For each node count the three protocols are evaluated with the analytical
models (the paper: *"Owing to the good correspondence between results from
the model and results from the simulation, we (confidently) use only the
model in this scalability study"*), producing the two series each figure
plots: the waste and the expected number of failures per execution.

Modelling note (documented in EXPERIMENTS.md): the 1000-epoch structure of
the weak-scaling application is narrative -- the individual epochs are much
shorter than any checkpointing period, so no protocol acts at epoch
granularity.  The models are therefore instantiated on the aggregate GENERAL
and LIBRARY durations (``per_epoch=False`` for the composite model), exactly
as the Section IV formulas are written.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from repro.application.scaling import WeakScalingScenario
from repro.core.registry import resolve_protocol
from repro.experiments.config import PAPER_NODE_COUNTS
from repro.scenario.spec import PlatformSpec, ScenarioSpec, WorkloadSpec
from repro.utils.tables import Table

__all__ = [
    "WeakScalingRow",
    "WeakScalingResult",
    "run_weak_scaling",
    "weak_scaling_spec",
    "PROTOCOLS",
]

PROTOCOLS: tuple[str, ...] = (
    "PurePeriodicCkpt",
    "BiPeriodicCkpt",
    "ABFT&PeriodicCkpt",
)

#: Model-construction overrides per canonical protocol name.  The composite
#: model is instantiated on the aggregate phase durations (``per_epoch=False``)
#: -- see the modelling note in the module docstring.  Carried inside the
#: per-node :class:`ScenarioSpec` (``model_params``) so a saved spec
#: reproduces the same numbers through ``scenario run``.
_MODEL_PARAMS: tuple = (("ABFT&PeriodicCkpt", (("per_epoch", False),)),)


def weak_scaling_spec(
    scenario: WeakScalingScenario,
    node_count: int,
    *,
    protocols: Sequence[str] = PROTOCOLS,
    name: str = "weak-scaling",
) -> ScenarioSpec:
    """The :class:`~repro.scenario.ScenarioSpec` of one node count.

    Weak-scaling figures are a *family* of scenarios -- one per node count,
    with every platform quantity rescaled by the scenario's laws -- so the
    conversion is parameterised by the node count.
    """
    return ScenarioSpec(
        name=f"{name}@{node_count}",
        protocols=tuple(protocols),
        platform=PlatformSpec(
            mtbf=scenario.mtbf_at(node_count),
            checkpoint=scenario.checkpoint_at(node_count),
            recovery=scenario.recovery_at(node_count),
            downtime=scenario.downtime,
            library_fraction=scenario.library_fraction,
            abft_overhead=scenario.abft_overhead,
            abft_reconstruction=scenario.abft_reconstruction,
        ),
        workload=WorkloadSpec(
            total_time=scenario.epoch_count * scenario.epoch_time_at(node_count),
            alpha=scenario.alpha_at(node_count),
            epochs=scenario.epoch_count,
        ),
        model_params=_MODEL_PARAMS,
    )


@dataclass(frozen=True)
class WeakScalingRow:
    """One node count of a weak-scaling experiment."""

    node_count: int
    alpha: float
    application_time: float
    platform_mtbf: float
    checkpoint_cost: float
    waste: dict[str, float]
    expected_failures: dict[str, float]


@dataclass(frozen=True)
class WeakScalingResult:
    """All node counts of a weak-scaling experiment (one of Figures 8-10)."""

    name: str
    scenario: WeakScalingScenario
    rows: tuple[WeakScalingRow, ...]

    def waste_series(self, protocol: str) -> list[tuple[int, float]]:
        """``(node_count, waste)`` series for one protocol."""
        return [(row.node_count, row.waste[protocol]) for row in self.rows]

    def failures_series(self, protocol: str) -> list[tuple[int, float]]:
        """``(node_count, expected failures)`` series for one protocol."""
        return [
            (row.node_count, row.expected_failures[protocol]) for row in self.rows
        ]

    def crossover_node_count(
        self,
        better: str = "ABFT&PeriodicCkpt",
        worse: str = "PurePeriodicCkpt",
    ) -> Optional[int]:
        """Smallest node count at which ``better`` wastes less than ``worse``."""
        for row in self.rows:
            if row.waste[better] < row.waste[worse]:
                return row.node_count
        return None

    def to_table(self) -> Table:
        """Render the two series of the figure as one table."""
        headers = ["nodes", "alpha", "T0_minutes", "mtbf_minutes", "C_minutes"]
        headers += [f"waste[{p}]" for p in PROTOCOLS]
        headers += [f"faults[{p}]" for p in PROTOCOLS]
        table = Table(headers, title=f"{self.name}: waste and expected failures")
        for row in self.rows:
            cells: list = [
                row.node_count,
                row.alpha,
                row.application_time / 60.0,
                row.platform_mtbf / 60.0,
                row.checkpoint_cost / 60.0,
            ]
            cells.extend(row.waste[p] for p in PROTOCOLS)
            cells.extend(row.expected_failures[p] for p in PROTOCOLS)
            table.add_row(cells)
        return table

    def write_csv(self, path: str | Path) -> Path:
        """Write the series table as CSV."""
        return self.to_table().write(path)


def run_weak_scaling(
    scenario: WeakScalingScenario,
    *,
    node_counts: Sequence[int] = PAPER_NODE_COUNTS,
    name: str = "weak-scaling",
) -> WeakScalingResult:
    """Evaluate the three protocols over ``node_counts`` for ``scenario``.

    Each node count is lowered onto its :class:`ScenarioSpec` (see
    :func:`weak_scaling_spec`) and the analytical models are resolved
    through the registry, so any registered protocol name or alias works.
    """
    rows: list[WeakScalingRow] = []
    for node_count in node_counts:
        spec = weak_scaling_spec(scenario, node_count, name=name)
        parameters = spec.parameters()
        workload = spec.application_workload()
        waste: dict[str, float] = {}
        failures: dict[str, float] = {}
        for protocol in spec.protocols:
            entry = resolve_protocol(protocol)
            model = entry.model_cls(parameters, **spec.model_kwargs_for(protocol))
            prediction = model.evaluate(workload)
            waste[protocol] = prediction.waste
            failures[protocol] = prediction.expected_failures
        rows.append(
            WeakScalingRow(
                node_count=node_count,
                alpha=scenario.alpha_at(node_count),
                application_time=workload.total_time,
                platform_mtbf=parameters.platform_mtbf,
                checkpoint_cost=parameters.full_checkpoint,
                waste=waste,
                expected_failures=failures,
            )
        )
    return WeakScalingResult(name=name, scenario=scenario, rows=tuple(rows))
