"""One-shot reproduction report.

:func:`reproduction_report` gathers the headline numbers of the paper's
evaluation into a single plain-text report: the Figure 7 corner values, the
model-vs-simulation agreement at a representative operating point, and the
weak-scaling crossovers of Figures 8-10.  It is what a user runs first to
check that the reproduction behaves as documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.application.workload import ApplicationWorkload
from repro.application.scaling import ScalingMode
from repro.experiments.config import paper_figure7_config
from repro.experiments.figure7 import run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.figure9 import run_figure9
from repro.experiments.figure10 import run_figure10
from repro.experiments.validation import validate_configuration
from repro.utils.tables import Table
from repro.utils.units import MINUTE

__all__ = ["ReproductionReport", "reproduction_report"]


@dataclass(frozen=True)
class ReproductionReport:
    """Headline numbers of the reproduction.

    Attributes
    ----------
    figure7_corners:
        Table of model wastes at the corners of the Figure 7 grid.
    validation_gap:
        ``WASTE_simul - WASTE_model`` for the composite protocol at
        (MTBF = 120 min, alpha = 0.8).
    crossovers:
        Node count at which the composite overtakes PurePeriodicCkpt, per
        weak-scaling figure (``None`` when it never does within the range).
    text:
        The full plain-text report.
    """

    figure7_corners: Table
    validation_gap: float
    crossovers: dict[str, int | None]
    text: str

    def __str__(self) -> str:
        return self.text


def reproduction_report(
    *,
    validation_runs: int = 100,
    seed: int = 2014,
    mtbf_scaling: ScalingMode = ScalingMode.INVERSE,
) -> ReproductionReport:
    """Build the headline reproduction report.

    Parameters
    ----------
    validation_runs:
        Monte-Carlo runs for the model-vs-simulation check.
    seed:
        Seed of the validation campaign.
    mtbf_scaling:
        Platform-MTBF scaling used for the weak-scaling figures (see
        EXPERIMENTS.md for the two readings).
    """
    config = paper_figure7_config()
    figure7 = run_figure7(config)

    corners = Table(
        ["mtbf_minutes", "alpha", "PurePeriodicCkpt", "BiPeriodicCkpt", "ABFT&PeriodicCkpt"],
        title="Figure 7 corner wastes (analytical model)",
    )
    for mtbf in (config.mtbf_values[0], config.mtbf_values[-1]):
        for alpha in (0.0, 0.5, 1.0):
            corners.add_row(
                [
                    mtbf / MINUTE,
                    alpha,
                    figure7.waste_grid("PurePeriodicCkpt")[(mtbf, alpha)],
                    figure7.waste_grid("BiPeriodicCkpt")[(mtbf, alpha)],
                    figure7.waste_grid("ABFT&PeriodicCkpt")[(mtbf, alpha)],
                ]
            )

    point = validate_configuration(
        "ABFT&PeriodicCkpt",
        config.parameters(120 * MINUTE),
        ApplicationWorkload.single_epoch(
            config.application_time, 0.8, library_fraction=config.library_fraction
        ),
        runs=validation_runs,
        seed=seed,
    )

    crossovers: dict[str, int | None] = {}
    weak_scaling_tables: list[str] = []
    for name, runner in (
        ("Figure 8", run_figure8),
        ("Figure 9", run_figure9),
        ("Figure 10", run_figure10),
    ):
        result = runner(mtbf_scaling=mtbf_scaling)
        crossovers[name] = result.crossover_node_count()
        weak_scaling_tables.append(result.to_table().to_text())

    lines = [
        "Reproduction report: ABFT & Checkpoint composite strategies (IPDPSW 2014)",
        "=" * 74,
        "",
        corners.to_text(),
        "",
        (
            "Model validation at (MTBF = 120 min, alpha = 0.8), composite protocol: "
            f"model waste = {point.model_waste:.4f}, simulated = "
            f"{point.simulated_waste:.4f}, difference = {point.difference:+.4f} "
            f"({validation_runs} runs)"
        ),
        "",
    ]
    for table_text, (name, crossover) in zip(weak_scaling_tables, crossovers.items()):
        lines.append(table_text)
        if crossover is None:
            lines.append(f"{name}: the composite never overtakes PurePeriodicCkpt")
        else:
            lines.append(
                f"{name}: the composite overtakes PurePeriodicCkpt at "
                f"{crossover:,} nodes"
            )
        lines.append("")

    return ReproductionReport(
        figure7_corners=corners,
        validation_gap=point.difference,
        crossovers=crossovers,
        text="\n".join(lines),
    )
