"""The paper's experiment parameters, gathered in one place.

Figure 7 (Section V-B): a one-week application, ``C = R = 10`` minutes,
``D = 1`` minute, ``rho = 0.8``, ``phi = 1.03``, ``Recons_ABFT = 2`` seconds,
platform MTBF swept over 60-240 minutes and the library-time ratio ``alpha``
over [0, 1].

Figures 8-10 (Section V-C): a 1000-epoch application; at the 10,000-node
reference scale one epoch lasts 1 minute (80 % library / 20 % general),
``C = R = 1`` minute and the platform MTBF is one failure per day.  Kernel
times scale with the node count following Gustafson's law (O(n^3) library
phase growing as ``sqrt(x)``; general phase O(n^3) in Figure 8 and O(n^2),
i.e. constant, in Figures 9-10); the checkpoint cost grows linearly with the
total memory (Figures 8-9) or stays constant at 60 s (Figure 10).

The paper's prose states that the platform MTBF "scales linearly with the
number of components" (i.e. as ``1/x``).  Taken together with the linear
checkpoint-cost growth this makes every rollback protocol infeasible at
10^6 nodes (the checkpoint takes several MTBFs to write), which is more
pessimistic than the waste values the figures display; the figures are
consistent with a platform MTBF held at its 10,000-node value.  The
generators therefore expose ``mtbf_scaling`` so both readings can be
produced, default to the literal text (``INVERSE``), and EXPERIMENTS.md
reports both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.application.scaling import KernelScalingLaw, ScalingMode, WeakScalingScenario
from repro.core.parameters import ResilienceParameters
from repro.scenario.spec import (
    PlatformSpec,
    ScenarioSpec,
    SimulationSpec,
    SweepSpec,
    WorkloadSpec,
)
from repro.utils.units import DAY, MINUTE, WEEK

__all__ = [
    "Figure7Config",
    "WeakScalingConfig",
    "paper_figure7_config",
    "paper_figure8_scenario",
    "paper_figure9_scenario",
    "paper_figure10_scenario",
    "PAPER_NODE_COUNTS",
]

#: Node counts displayed in the weak-scaling figures.
PAPER_NODE_COUNTS: tuple[int, ...] = (1_000, 10_000, 100_000, 1_000_000)


@dataclass(frozen=True)
class Figure7Config:
    """Parameters of the Figure 7 experiment.

    Attributes
    ----------
    application_time:
        Fault-free application duration ``T0`` (1 week in the paper).
    checkpoint / recovery / downtime:
        ``C``, ``R`` and ``D`` in seconds.
    library_fraction:
        ``rho`` (0.8 in the paper).
    abft_overhead / abft_reconstruction:
        ``phi`` and ``Recons_ABFT``.
    mtbf_values:
        Platform MTBFs (seconds) forming the x-axis of the heatmaps.
    alpha_values:
        Library-time ratios forming the y-axis.
    """

    application_time: float = 1 * WEEK
    checkpoint: float = 10 * MINUTE
    recovery: float = 10 * MINUTE
    downtime: float = 1 * MINUTE
    library_fraction: float = 0.8
    abft_overhead: float = 1.03
    abft_reconstruction: float = 2.0
    mtbf_values: tuple[float, ...] = field(
        default_factory=lambda: tuple(
            float(m) * MINUTE for m in range(60, 241, 20)
        )
    )
    alpha_values: tuple[float, ...] = field(
        default_factory=lambda: tuple(np.round(np.linspace(0.0, 1.0, 11), 3))
    )

    def parameters(self, mtbf: float) -> ResilienceParameters:
        """Parameter bundle for one platform MTBF."""
        return ResilienceParameters.from_scalars(
            platform_mtbf=mtbf,
            checkpoint=self.checkpoint,
            recovery=self.recovery,
            downtime=self.downtime,
            library_fraction=self.library_fraction,
            abft_overhead=self.abft_overhead,
            abft_reconstruction=self.abft_reconstruction,
        )

    def to_scenario(
        self,
        *,
        protocols: tuple[str, ...] = (
            "PurePeriodicCkpt",
            "BiPeriodicCkpt",
            "ABFT&PeriodicCkpt",
        ),
        validate: bool = False,
        simulation_runs: int = 200,
        seed: int = 2014,
    ) -> ScenarioSpec:
        """The equivalent :class:`~repro.scenario.ScenarioSpec`.

        This is the delegation point of the config shim: the Figure 7
        harness lowers its config onto a scenario spec and runs it through
        the unified scenario/campaign path.
        """
        return ScenarioSpec(
            name="figure7",
            protocols=tuple(protocols),
            platform=PlatformSpec(
                mtbf=float(self.mtbf_values[0]),
                checkpoint=self.checkpoint,
                recovery=self.recovery,
                downtime=self.downtime,
                library_fraction=self.library_fraction,
                abft_overhead=self.abft_overhead,
                abft_reconstruction=self.abft_reconstruction,
            ),
            workload=WorkloadSpec(total_time=self.application_time),
            sweep=SweepSpec(
                mtbf_values=tuple(float(m) for m in self.mtbf_values),
                alpha_values=tuple(float(a) for a in self.alpha_values),
            ),
            simulation=SimulationSpec(
                validate=validate, runs=simulation_runs, seed=seed
            ),
        )

    def reduced(
        self, mtbf_count: int = 4, alpha_count: int = 5
    ) -> "Figure7Config":
        """A coarser grid for quick runs (tests, CI, benchmarks)."""
        mtbfs = tuple(
            float(m)
            for m in np.linspace(
                self.mtbf_values[0], self.mtbf_values[-1], mtbf_count
            )
        )
        alphas = tuple(
            float(a) for a in np.round(np.linspace(0.0, 1.0, alpha_count), 3)
        )
        return Figure7Config(
            application_time=self.application_time,
            checkpoint=self.checkpoint,
            recovery=self.recovery,
            downtime=self.downtime,
            library_fraction=self.library_fraction,
            abft_overhead=self.abft_overhead,
            abft_reconstruction=self.abft_reconstruction,
            mtbf_values=mtbfs,
            alpha_values=alphas,
        )


def paper_figure7_config() -> Figure7Config:
    """The Figure 7 configuration exactly as in the paper's caption."""
    return Figure7Config()


@dataclass(frozen=True)
class WeakScalingConfig:
    """Parameters shared by the weak-scaling experiments (Figures 8-10)."""

    scenario: WeakScalingScenario
    node_counts: Sequence[int] = PAPER_NODE_COUNTS
    name: str = "weak-scaling"


def _base_scenario(
    *,
    general_exponent: float,
    checkpoint_scaling: ScalingMode,
    mtbf_scaling: ScalingMode,
    reference_checkpoint: float,
) -> WeakScalingScenario:
    return WeakScalingScenario(
        reference_nodes=10_000,
        epoch_count=1_000,
        general_law=KernelScalingLaw(
            reference_time=0.2 * MINUTE, complexity_exponent=general_exponent
        ),
        library_law=KernelScalingLaw(
            reference_time=0.8 * MINUTE, complexity_exponent=3.0
        ),
        reference_checkpoint=reference_checkpoint,
        reference_recovery=reference_checkpoint,
        checkpoint_scaling=checkpoint_scaling,
        reference_mtbf=1 * DAY,
        mtbf_scaling=mtbf_scaling,
        downtime=1 * MINUTE,
        library_fraction=0.8,
        abft_overhead=1.03,
        abft_reconstruction=2.0,
    )


def paper_figure8_scenario(
    mtbf_scaling: ScalingMode = ScalingMode.INVERSE,
) -> WeakScalingScenario:
    """Figure 8: both phases O(n^3), checkpoint cost growing with memory."""
    return _base_scenario(
        general_exponent=3.0,
        checkpoint_scaling=ScalingMode.LINEAR,
        mtbf_scaling=mtbf_scaling,
        reference_checkpoint=1 * MINUTE,
    )


def paper_figure9_scenario(
    mtbf_scaling: ScalingMode = ScalingMode.INVERSE,
) -> WeakScalingScenario:
    """Figure 9: O(n^2) general phase (constant time), growing alpha."""
    return _base_scenario(
        general_exponent=2.0,
        checkpoint_scaling=ScalingMode.LINEAR,
        mtbf_scaling=mtbf_scaling,
        reference_checkpoint=1 * MINUTE,
    )


def paper_figure10_scenario(
    mtbf_scaling: ScalingMode = ScalingMode.INVERSE,
) -> WeakScalingScenario:
    """Figure 10: like Figure 9 with a constant checkpoint cost of 60 s."""
    return _base_scenario(
        general_exponent=2.0,
        checkpoint_scaling=ScalingMode.CONSTANT,
        mtbf_scaling=mtbf_scaling,
        reference_checkpoint=1 * MINUTE,
    )
