"""Model-vs-simulation validation (the machinery behind Figures 7b/7d/7f).

For one configuration (parameters + workload + protocol) the validation runs
the analytical model and a Monte-Carlo simulation campaign and reports both
wastes and their difference -- the quantity plotted in the right-hand column
of Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.application.workload import ApplicationWorkload
from repro.core.parameters import ResilienceParameters
from repro.core.registry import PROTOCOL_PAIRS
from repro.simulation.runner import MonteCarloResult, run_monte_carlo

__all__ = ["ValidationPoint", "validate_configuration", "PROTOCOL_PAIRS"]


@dataclass(frozen=True)
class ValidationPoint:
    """Model and simulation waste for one configuration.

    Attributes
    ----------
    protocol:
        Protocol name.
    model_waste:
        Waste predicted by the closed-form model.
    simulated_waste:
        Mean waste over the Monte-Carlo campaign.
    difference:
        ``simulated_waste - model_waste`` (the quantity of Figures 7b/7d/7f).
    simulation:
        The full Monte-Carlo result (confidence intervals, failure counts).
    """

    protocol: str
    model_waste: float
    simulated_waste: float
    simulation: MonteCarloResult

    @property
    def difference(self) -> float:
        """``WASTE_simul - WASTE_model``."""
        return self.simulated_waste - self.model_waste

    @property
    def relative_difference(self) -> float:
        """Difference normalised by the simulated waste (when non-zero)."""
        if self.simulated_waste == 0:
            return 0.0
        return self.difference / self.simulated_waste


def validate_configuration(
    protocol: str,
    parameters: ResilienceParameters,
    workload: ApplicationWorkload,
    *,
    runs: int = 200,
    seed: Optional[int] = 12345,
) -> ValidationPoint:
    """Compare the analytical model and the simulator for one configuration.

    Parameters
    ----------
    protocol:
        One of ``"PurePeriodicCkpt"``, ``"BiPeriodicCkpt"``,
        ``"ABFT&PeriodicCkpt"``.
    parameters / workload:
        The configuration to evaluate.
    runs:
        Number of Monte-Carlo runs (the paper uses 1000; 200 keeps the
        default harness fast while staying well within the reported
        confidence bands).
    seed:
        Root seed of the campaign.
    """
    try:
        model_cls, simulator_cls = PROTOCOL_PAIRS[protocol]
    except KeyError as exc:
        raise ValueError(
            f"unknown protocol {protocol!r}; expected one of {sorted(PROTOCOL_PAIRS)}"
        ) from exc
    model = model_cls(parameters)
    simulator = simulator_cls(parameters, workload)
    prediction = model.evaluate(workload)
    campaign = run_monte_carlo(simulator.simulate_once, runs=runs, seed=seed)
    return ValidationPoint(
        protocol=protocol,
        model_waste=prediction.waste,
        simulated_waste=campaign.mean_waste,
        simulation=campaign,
    )
