"""Model-vs-simulation validation (the machinery behind Figures 7b/7d/7f).

For one configuration (parameters + workload + protocol) the validation runs
the analytical model and a Monte-Carlo simulation campaign and reports both
wastes and their difference -- the quantity plotted in the right-hand column
of Figure 7.

The closed-form waste formulas of Section IV hold for the *exponential*
(memoryless) failure law only.  When a non-exponential failure model is
passed, :func:`validate_configuration` therefore refuses by default
(:class:`NonExponentialValidationError`); pass
``on_non_exponential="warn"`` to run the simulation anyway and report the
analytical column as ``NaN`` (the comparison would be meaningless, not
merely imprecise).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Optional

from repro.application.workload import ApplicationWorkload
from repro.core.parameters import ResilienceParameters
from repro.core.registry import PROTOCOL_PAIRS, resolve_protocol
from repro.failures.base import FailureModel
from repro.failures.exponential import ExponentialFailureModel
from repro.simulation.runner import MonteCarloResult, run_monte_carlo

__all__ = [
    "ValidationPoint",
    "validate_configuration",
    "validate_spec",
    "NonExponentialValidationError",
    "PROTOCOL_PAIRS",
]


class NonExponentialValidationError(ValueError):
    """Analytical validation was requested under a non-exponential law.

    The Section IV closed forms are derived for memoryless failures; under
    Weibull / log-normal / trace-based laws the model column would not be a
    prediction of the simulated system, so comparing the two is a category
    error rather than an approximation.  Pass ``on_non_exponential="warn"``
    to run the simulation anyway with a ``NaN`` model column.
    """


@dataclass(frozen=True)
class ValidationPoint:
    """Model and simulation waste for one configuration.

    Attributes
    ----------
    protocol:
        Protocol name.
    model_waste:
        Waste predicted by the closed-form model (``NaN`` when the
        analytical column was skipped for a non-exponential failure law).
    simulated_waste:
        Mean waste over the Monte-Carlo campaign.
    difference:
        ``simulated_waste - model_waste`` (the quantity of Figures 7b/7d/7f).
    simulation:
        The full Monte-Carlo result (confidence intervals, failure counts).
    """

    protocol: str
    model_waste: float
    simulated_waste: float
    simulation: MonteCarloResult

    @property
    def difference(self) -> float:
        """``WASTE_simul - WASTE_model``."""
        return self.simulated_waste - self.model_waste

    @property
    def relative_difference(self) -> float:
        """Difference normalised by the simulated waste (when non-zero)."""
        if self.simulated_waste == 0:
            return 0.0
        return self.difference / self.simulated_waste

    @property
    def has_model_column(self) -> bool:
        """False when the analytical column was skipped (non-exponential)."""
        return not math.isnan(self.model_waste)


def validate_configuration(
    protocol: str,
    parameters: ResilienceParameters,
    workload: ApplicationWorkload,
    *,
    runs: int = 200,
    seed: Optional[int] = 12345,
    failure_model: Optional[FailureModel] = None,
    on_non_exponential: str = "raise",
) -> ValidationPoint:
    """Compare the analytical model and the simulator for one configuration.

    Parameters
    ----------
    protocol:
        A registered protocol name or alias (see
        :func:`repro.core.registry.protocol_names`).
    parameters / workload:
        The configuration to evaluate.
    runs:
        Number of Monte-Carlo runs (the paper uses 1000; 200 keeps the
        default harness fast while staying well within the reported
        confidence bands).
    seed:
        Root seed of the campaign.
    failure_model:
        Failure law driving the simulation; ``None`` (default) is the
        paper's exponential law at the parameters' platform MTBF.
    on_non_exponential:
        What to do when ``failure_model`` is not exponential: ``"raise"``
        (default) raises :class:`NonExponentialValidationError`; ``"warn"``
        emits a warning, skips the analytical column (``model_waste`` is
        ``NaN``) and still runs the simulation.
    """
    if on_non_exponential not in ("raise", "warn"):
        raise ValueError(
            "on_non_exponential must be 'raise' or 'warn', "
            f"got {on_non_exponential!r}"
        )
    entry = resolve_protocol(protocol)
    model_cls, simulator_cls = entry.pair

    non_exponential = failure_model is not None and not isinstance(
        failure_model, ExponentialFailureModel
    )
    if non_exponential:
        message = (
            f"validate_configuration({entry.name!r}) was given a "
            f"{type(failure_model).__name__}: the closed-form waste formulas "
            "assume exponential failures, so the analytical column does not "
            "apply"
        )
        if on_non_exponential == "raise":
            raise NonExponentialValidationError(
                message + "; pass on_non_exponential='warn' to run the "
                "simulation with a NaN model column"
            )
        warnings.warn(message + "; reporting model_waste=NaN", stacklevel=2)

    if non_exponential:
        model_waste = float("nan")
    else:
        model_waste = model_cls(parameters).evaluate(workload).waste
    simulator = simulator_cls(parameters, workload, failure_model=failure_model)
    campaign = run_monte_carlo(simulator.simulate_once, runs=runs, seed=seed)
    return ValidationPoint(
        protocol=entry.name,
        model_waste=model_waste,
        simulated_waste=campaign.mean_waste,
        simulation=campaign,
    )


def validate_spec(
    spec,
    protocol: Optional[str] = None,
    *,
    mtbf: Optional[float] = None,
    alpha: Optional[float] = None,
    runs: Optional[int] = None,
    seed: Optional[int] = None,
    on_non_exponential: str = "raise",
) -> ValidationPoint:
    """Validate one protocol of a :class:`~repro.scenario.ScenarioSpec`.

    Extracts the parameters, workload and failure model from the spec
    (optionally at swept ``mtbf`` / ``alpha`` coordinates) and delegates to
    :func:`validate_configuration`, inheriting its non-exponential guard --
    the spec-level entrance to the same trap door.
    """
    name = protocol if protocol is not None else spec.protocols[0]
    point_mtbf = spec.platform.mtbf if mtbf is None else float(mtbf)
    failure_model = (
        None if spec.failures.is_exponential else spec.failure_model(point_mtbf)
    )
    return validate_configuration(
        name,
        spec.parameters(point_mtbf),
        spec.application_workload(alpha),
        runs=spec.simulation.runs if runs is None else runs,
        seed=spec.simulation.seed if seed is None else seed,
        failure_model=failure_model,
        on_non_exponential=on_non_exponential,
    )
