"""Figure 7: waste heatmaps and model validation over the (MTBF, alpha) grid.

Reproduces the six panels of Figure 7:

* 7a / 7c / 7e -- waste predicted by the model for PurePeriodicCkpt,
  BiPeriodicCkpt and ABFT&PeriodicCkpt, as a function of the platform MTBF
  (x-axis, 60-240 minutes) and of the fraction of time spent in the LIBRARY
  phase (y-axis, 0-1);
* 7b / 7d / 7f -- the difference ``WASTE_simul - WASTE_model`` for the same
  protocols (model validation).

The result holds one row per grid point with the model waste of each
protocol and, when validation is enabled, the simulated waste and the
difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments.config import Figure7Config, paper_figure7_config
from repro.scenario.runner import run_scenario
from repro.utils.tables import Table
from repro.utils.units import MINUTE

__all__ = ["Figure7Row", "Figure7Result", "run_figure7", "PROTOCOLS"]

#: Protocol names in the order the paper presents them.
PROTOCOLS: tuple[str, ...] = (
    "PurePeriodicCkpt",
    "BiPeriodicCkpt",
    "ABFT&PeriodicCkpt",
)


@dataclass(frozen=True)
class Figure7Row:
    """One (MTBF, alpha) grid point of the Figure 7 experiment."""

    mtbf: float
    alpha: float
    model_waste: dict[str, float]
    simulated_waste: dict[str, float] = field(default_factory=dict)

    def difference(self, protocol: str) -> Optional[float]:
        """``WASTE_simul - WASTE_model`` for ``protocol`` (None if not simulated)."""
        if protocol not in self.simulated_waste:
            return None
        return self.simulated_waste[protocol] - self.model_waste[protocol]


@dataclass(frozen=True)
class Figure7Result:
    """All grid points of the Figure 7 experiment."""

    config: Figure7Config
    rows: tuple[Figure7Row, ...]
    validated: bool
    simulation_runs: int

    # ------------------------------------------------------------------ #
    def waste_grid(self, protocol: str, *, simulated: bool = False) -> dict:
        """Map ``(mtbf, alpha) -> waste`` for one protocol."""
        grid = {}
        for row in self.rows:
            source = row.simulated_waste if simulated else row.model_waste
            if protocol in source:
                grid[(row.mtbf, row.alpha)] = source[protocol]
        return grid

    def max_difference(self, protocol: str) -> float:
        """Largest absolute model/simulation difference for one protocol."""
        diffs = [
            abs(row.difference(protocol))
            for row in self.rows
            if row.difference(protocol) is not None
        ]
        return max(diffs) if diffs else 0.0

    # ------------------------------------------------------------------ #
    def to_table(self) -> Table:
        """Render the result as the paper-style series table."""
        headers = ["mtbf_minutes", "alpha"]
        for protocol in PROTOCOLS:
            headers.append(f"model_waste[{protocol}]")
        if self.validated:
            for protocol in PROTOCOLS:
                headers.append(f"sim_waste[{protocol}]")
            for protocol in PROTOCOLS:
                headers.append(f"diff[{protocol}]")
        table = Table(headers, title="Figure 7: waste vs (MTBF, alpha)")
        for row in self.rows:
            cells: list = [row.mtbf / MINUTE, row.alpha]
            cells.extend(row.model_waste[p] for p in PROTOCOLS)
            if self.validated:
                cells.extend(row.simulated_waste.get(p, float("nan")) for p in PROTOCOLS)
                diffs = [row.difference(p) for p in PROTOCOLS]
                cells.extend(d if d is not None else float("nan") for d in diffs)
            table.add_row(cells)
        return table

    def write_csv(self, path: str | Path) -> Path:
        """Write the series table as CSV."""
        return self.to_table().write(path)


def run_figure7(
    config: Optional[Figure7Config] = None,
    *,
    validate: bool = False,
    simulation_runs: int = 200,
    seed: int = 2014,
    protocols: Sequence[str] = PROTOCOLS,
    workers: Optional[int] = None,
    cache_dir: Optional[str | Path] = None,
    resume: bool = True,
    vectorized: bool = True,
) -> Figure7Result:
    """Run the Figure 7 experiment.

    Parameters
    ----------
    config:
        Grid and application parameters; defaults to the paper's values.
    validate:
        Also run the Monte-Carlo simulation at every grid point and report
        the waste difference (Figures 7b/7d/7f).  This multiplies the cost by
        the number of simulation runs.
    simulation_runs:
        Number of simulated executions per grid point when validating (the
        paper uses 1000).
    seed:
        Root seed of the simulation campaigns.
    protocols:
        Subset of protocols to evaluate (all three by default).
    workers:
        Fan the Monte-Carlo trials of each grid point out over this many
        worker processes (``None``/1 runs serially; results are identical
        either way).
    cache_dir:
        Cache completed grid points in this directory so an interrupted or
        repeated run recomputes only the missing points.
    resume:
        Consult existing cache entries (default).  ``False`` recomputes the
        full grid, refreshing the cache.
    vectorized:
        Evaluate the analytical heatmaps in one NumPy broadcast pass
        (default) instead of per-point model objects; both paths are
        bit-identical.
    """
    config = config or paper_figure7_config()
    spec = config.to_scenario(
        protocols=tuple(protocols),
        validate=validate,
        simulation_runs=simulation_runs,
        seed=seed,
    )
    scenario = run_scenario(
        spec,
        workers=workers,
        cache_dir=cache_dir,
        resume=resume,
        vectorized=vectorized,
    )
    rows = tuple(
        Figure7Row(
            mtbf=point.mtbf,
            alpha=point.alpha,
            model_waste=point.model_waste,
            simulated_waste=point.simulated_waste,
        )
        for point in scenario.points
    )
    return Figure7Result(
        config=config,
        rows=rows,
        validated=validate,
        simulation_runs=simulation_runs if validate else 0,
    )
