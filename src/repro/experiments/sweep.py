"""Generic parameter sweeps over the (MTBF, alpha) plane.

The heatmaps of Figure 7 are sweeps of the analytical models (and optionally
the simulator) over a grid of platform MTBFs and library-time ratios; this
module provides the grid iteration so the figure generator and the ablation
benchmarks share one implementation.

:func:`sweep_mtbf_alpha` is the one-shot, lazy form: it yields each grid
point once and keeps nothing.  For large grids, parallel Monte-Carlo
validation, or sweeps that must survive interruption, use
:class:`repro.campaign.SweepRunner`, which materialises the same grids (same
ordering, same waste values -- the unit tests pin the equivalence) as
resumable jobs backed by an on-disk cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.application.workload import ApplicationWorkload
from repro.core.analytical.base import AnalyticalModel
from repro.core.parameters import ResilienceParameters

__all__ = ["SweepPoint", "sweep_mtbf_alpha"]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point of a (MTBF, alpha) sweep.

    Attributes
    ----------
    mtbf:
        Platform MTBF in seconds.
    alpha:
        Fraction of time spent in LIBRARY phases.
    waste:
        Waste predicted (or measured) for that point, per protocol name.
    """

    mtbf: float
    alpha: float
    waste: dict[str, float]


ModelFactory = Callable[[ResilienceParameters], AnalyticalModel]


def sweep_mtbf_alpha(
    base_parameters: ResilienceParameters,
    application_time: float,
    mtbf_values: Sequence[float],
    alpha_values: Sequence[float],
    model_factories: Iterable[ModelFactory],
    *,
    library_fraction: float | None = None,
) -> Iterator[SweepPoint]:
    """Sweep analytical models over the (MTBF, alpha) grid.

    Parameters
    ----------
    base_parameters:
        Parameter bundle whose MTBF is replaced at every grid point.
    application_time:
        Fault-free duration ``T0`` of the single-epoch workload.
    mtbf_values / alpha_values:
        Grid axes.
    model_factories:
        Callables building an analytical model from parameters (one per
        protocol/variant).
    library_fraction:
        ``rho`` of the workload's dataset; defaults to the parameters' value.
    """
    rho = (
        base_parameters.rho if library_fraction is None else float(library_fraction)
    )
    factories = list(model_factories)
    for mtbf in mtbf_values:
        parameters = base_parameters.with_mtbf(mtbf)
        models = [factory(parameters) for factory in factories]
        for alpha in alpha_values:
            workload = ApplicationWorkload.single_epoch(
                application_time, alpha, library_fraction=rho
            )
            waste = {model.name: model.waste(workload) for model in models}
            yield SweepPoint(mtbf=mtbf, alpha=alpha, waste=waste)
