"""Core contribution of the paper: composite fault-tolerance strategies.

Two complementary views of the same three protocols are provided:

* :mod:`repro.core.analytical` -- the closed-form, first-order performance
  model of Section IV (expected execution time and waste of
  PurePeriodicCkpt, BiPeriodicCkpt and ABFT&PeriodicCkpt);
* :mod:`repro.core.protocols` -- discrete-event simulations of the same
  protocols, which drop the first-order approximations (multiple failures
  per period, failures during checkpoints, recoveries and reconstructions
  are all handled) and are used to validate the model as in Section V.

Both consume the same :class:`~repro.core.parameters.ResilienceParameters`
bundle and the same :class:`~repro.application.workload.ApplicationWorkload`.
"""

from repro.core.parameters import ResilienceParameters
from repro.core.waste import waste_from_times, waste_to_slowdown, slowdown_to_waste
from repro.core.analytical import (
    AnalyticalModel,
    ModelPrediction,
    PurePeriodicCkptModel,
    BiPeriodicCkptModel,
    AbftPeriodicCkptModel,
    NoFaultToleranceModel,
    young_period,
    daly_period,
    paper_optimal_period,
    first_order_waste,
)
from repro.core.protocols import (
    ProtocolSimulator,
    NoFaultToleranceSimulator,
    PurePeriodicCkptSimulator,
    BiPeriodicCkptSimulator,
    AbftPeriodicCkptSimulator,
)

__all__ = [
    "ResilienceParameters",
    "waste_from_times",
    "waste_to_slowdown",
    "slowdown_to_waste",
    "AnalyticalModel",
    "ModelPrediction",
    "PurePeriodicCkptModel",
    "BiPeriodicCkptModel",
    "AbftPeriodicCkptModel",
    "NoFaultToleranceModel",
    "young_period",
    "daly_period",
    "paper_optimal_period",
    "first_order_waste",
    "ProtocolSimulator",
    "NoFaultToleranceSimulator",
    "PurePeriodicCkptSimulator",
    "BiPeriodicCkptSimulator",
    "AbftPeriodicCkptSimulator",
]
