"""Extensible protocol / failure-model registry behind the Scenario API.

Several layers need the same mapping from a paper name to an implementation
-- the validation harness (Figures 7b/7d/7f), the campaign sweep runner, the
scenario runner, reports and the CLI.  This module keeps those mappings in
one place and makes them *extensible*: implementations register themselves
with the :func:`register_protocol` / :func:`register_failure_model` class
decorators, so adding a protocol or a failure law is a single edit next to
the class that implements it, and every layer immediately sees it.

Lookups accept canonical names and aliases, case-insensitively.  Unknown
names raise :class:`UnknownProtocolError` / :class:`UnknownFailureModelError`
(both are also ``KeyError`` *and* ``ValueError`` subclasses, for
compatibility with the pre-registry call sites) whose message lists the
registered names and the nearest match.

The historical ``PROTOCOL_PAIRS`` dict survives as a live, read-only mapping
view over the registry restricted to the paper's three protocols, so code
written against it keeps working unchanged; new code should prefer
:func:`resolve_protocol` / :func:`resolve`.
"""

from __future__ import annotations

import difflib
import inspect
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    Mapping,
    NamedTuple,
    Optional,
    Tuple,
    TypeVar,
)

__all__ = [
    "UnknownProtocolError",
    "UnknownFailureModelError",
    "UnknownStorageError",
    "ProtocolEntry",
    "FailureModelEntry",
    "StorageEntry",
    "register_protocol",
    "register_failure_model",
    "register_storage",
    "protocol_names",
    "vectorized_protocol_names",
    "failure_model_names",
    "vectorized_law_names",
    "vectorized_law_classes",
    "storage_names",
    "registry_catalog",
    "resolve_protocol",
    "resolve_failure_model",
    "resolve_storage",
    "create_failure_model",
    "build_storage",
    "resolve",
    "ResolvedProtocol",
    "PROTOCOL_PAIRS",
    "PROTOCOL_NAMES",
]

T = TypeVar("T", bound=type)


# ---------------------------------------------------------------------- #
# Errors
# ---------------------------------------------------------------------- #
def _unknown_message(kind: str, name: object, known: Tuple[str, ...]) -> str:
    message = f"unknown {kind} {name!r}; registered: {sorted(known)}"
    if isinstance(name, str) and known:
        close = difflib.get_close_matches(name, known, n=1, cutoff=0.4)
        if close:
            message += f" -- did you mean {close[0]!r}?"
    return message


class UnknownProtocolError(KeyError, ValueError):
    """An unregistered protocol name was looked up.

    Subclasses both ``KeyError`` (the ``PROTOCOL_PAIRS[name]`` contract) and
    ``ValueError`` (the pre-registry validation contract) so every historical
    ``except`` clause keeps catching it.  The message lists the registered
    names and suggests the nearest match.
    """

    def __init__(
        self,
        name: object,
        known: Tuple[str, ...] = (),
        *,
        message: Optional[str] = None,
    ) -> None:
        super().__init__(message or _unknown_message("protocol", name, known))
        self.name = name
        self.known = known

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


class UnknownFailureModelError(KeyError, ValueError):
    """An unregistered failure-model name was looked up."""

    def __init__(self, name: object, known: Tuple[str, ...] = ()) -> None:
        super().__init__(_unknown_message("failure model", name, known))
        self.name = name
        self.known = known

    def __str__(self) -> str:
        return self.args[0]


class UnknownStorageError(KeyError, ValueError):
    """An unregistered checkpoint-storage name was looked up."""

    def __init__(self, name: object, known: Tuple[str, ...] = ()) -> None:
        super().__init__(_unknown_message("storage", name, known))
        self.name = name
        self.known = known

    def __str__(self) -> str:
        return self.args[0]


# ---------------------------------------------------------------------- #
# Entries
# ---------------------------------------------------------------------- #
@dataclass
class ProtocolEntry:
    """One registered protocol: its analytical model and simulator classes.

    Either class may be missing while registration is in flight (the model
    and simulator live in different modules); :func:`resolve_protocol` only
    returns complete entries.
    """

    name: str
    aliases: Tuple[str, ...] = ()
    model_cls: Optional[type] = None
    simulator_cls: Optional[type] = None
    #: Optional across-trials engine adapter (``backend="vectorized"``): a
    #: class constructed as ``vectorized_cls(parameters, workload, ...)``
    #: exposing ``run_trials(runs, seed) -> TrialTable``, bit-identical to
    #: the event simulator.  ``None`` means only the event backend exists.
    vectorized_cls: Optional[type] = None
    #: Optional schedule compiler (``register_protocol(name,
    #: kind="schedule")``): a function ``schedule_fn(parameters, workload,
    #: **knobs) -> Schedule`` producing the segment IR both Monte-Carlo
    #: backends execute (see :mod:`repro.simulation.schedule`).
    schedule_fn: Optional[Callable[..., Any]] = None
    #: Whether the entry belongs to the paper's headline comparison, i.e.
    #: appears in the ``PROTOCOL_PAIRS`` compatibility view (the NoFT
    #: baseline registers with ``paper=False``).
    paper: bool = True
    #: Explicit tunable-period constructor keywords (``register_protocol``'s
    #: ``tunable=`` option).  ``None`` means "introspect the model
    #: constructor"; see :attr:`period_parameters`.
    tunable: Optional[Tuple[str, ...]] = None
    #: Whether the protocol checkpoints at all and therefore supports the
    #: storage axis (every registered storage stack).  The NoFT baseline
    #: registers with ``storage=False``; its catalog entry reports an empty
    #: ``storage_stacks`` list.
    storage: bool = True

    @property
    def has_vectorized(self) -> bool:
        """Whether a vectorized across-trials engine is registered."""
        return self.vectorized_cls is not None

    @property
    def has_schedule(self) -> bool:
        """Whether a segment-IR schedule compiler is registered."""
        return self.schedule_fn is not None

    @property
    def period_parameters(self) -> Tuple[str, ...]:
        """Tunable period keywords shared by the model and the simulator.

        These are the knobs :mod:`repro.optimize` searches over.  Unless the
        registration pinned them explicitly (``tunable=``), they are
        discovered from the analytical model's constructor: every
        keyword-only parameter named ``period`` or ``*_period`` counts
        (``period_formula`` does not match and is excluded by construction).
        An empty tuple means the protocol has nothing to optimize -- its
        model is simply evaluated as-is (the NoFT baseline).
        """
        if self.tunable is not None:
            return self.tunable
        if self.model_cls is None:
            return ()
        try:
            signature = inspect.signature(self.model_cls.__init__)
        except (TypeError, ValueError):  # pragma: no cover - C extensions
            return ()
        return tuple(
            parameter.name
            for parameter in signature.parameters.values()
            if parameter.kind is inspect.Parameter.KEYWORD_ONLY
            and (
                parameter.name == "period" or parameter.name.endswith("_period")
            )
        )

    @property
    def pair(self) -> Tuple[type, type]:
        """The historical ``(model class, simulator class)`` pair."""
        if self.model_cls is None or self.simulator_cls is None:
            raise UnknownProtocolError(self.name, protocol_names())
        return (self.model_cls, self.simulator_cls)


@dataclass
class FailureModelEntry:
    """One registered failure model class plus its spec-level factory."""

    name: str
    cls: type
    aliases: Tuple[str, ...] = ()
    #: Builds an instance from spec-level data: ``factory(cls, mtbf, **params)``.
    factory: Optional[Callable[..., Any]] = None
    #: Whether the across-trials engine can draw this law's inter-arrival
    #: blocks (``register_failure_model(vectorized=True)``): either the
    #: model is stateless and its ``sample_interarrivals`` is a pure
    #: function of the generator, or it provides a batched
    #: ``trial_block_sampler`` with per-trial state (trace replay keeps one
    #: rewindable cursor per trial) -- either way the vectorized backend
    #: reproduces the event stream bit for bit.  The flag applies to
    #: *exact* instances of :attr:`cls` only -- subclasses may override the
    #: sampling and always fall back to the event backend.
    vectorized: bool = False

    def create(self, mtbf: Optional[float] = None, **params: Any) -> Any:
        """Instantiate the model for a target MTBF and model parameters."""
        if self.factory is not None:
            return self.factory(self.cls, mtbf, **params)
        if mtbf is None:
            raise ValueError(
                f"failure model {self.name!r} requires an 'mtbf' value"
            )
        return self.cls(mtbf, **params)


@dataclass
class StorageEntry:
    """One registered checkpoint-storage medium.

    ``analytical`` records whether the medium's scalar lowering is *exact*
    for the paper's waste model -- flat media and deterministic composites
    lower to the very ``(C, R)`` a flat run would use, while risk-weighted
    media (buddy checkpointing with a fallback level) lower to an
    expectation that the closed forms only approximate, so Monte-Carlo
    refinement is advised.  ``nested`` names the constructor parameters
    that are themselves storage media; :func:`build_storage` recurses into
    them when building a stack from spec data.
    """

    name: str
    cls: type
    aliases: Tuple[str, ...] = ()
    analytical: bool = True
    nested: Tuple[str, ...] = ()


_PROTOCOLS: Dict[str, ProtocolEntry] = {}
_PROTOCOL_LOOKUP: Dict[str, str] = {}  # casefolded name/alias -> canonical
_FAILURE_MODELS: Dict[str, FailureModelEntry] = {}
_FAILURE_LOOKUP: Dict[str, str] = {}
_STORAGES: Dict[str, StorageEntry] = {}
_STORAGE_LOOKUP: Dict[str, str] = {}

_builtins_loaded = False


def _ensure_builtins() -> None:
    """Import the modules that register the built-in implementations.

    The concrete classes register themselves at import time; importing their
    packages here (lazily, on first lookup) keeps this module free of import
    cycles while guaranteeing the registry is populated before use.
    """
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    import repro.checkpointing  # noqa: F401  (registers the storage media)
    import repro.core.analytical  # noqa: F401  (registers the models)
    import repro.core.protocols  # noqa: F401  (registers the simulators)
    import repro.failures  # noqa: F401  (registers the failure models)


def _register_lookup(
    lookup: Dict[str, str], canonical: str, aliases: Tuple[str, ...], kind: str
) -> None:
    for key in (canonical, *aliases):
        folded = key.casefold()
        owner = lookup.get(folded)
        if owner is not None and owner != canonical:
            raise ValueError(
                f"{kind} name {key!r} is already registered for {owner!r}"
            )
        lookup[folded] = canonical


# ---------------------------------------------------------------------- #
# Registration decorators
# ---------------------------------------------------------------------- #
def register_protocol(
    name: str,
    *,
    kind: str,
    aliases: Tuple[str, ...] = (),
    paper: bool = True,
    tunable: Optional[Tuple[str, ...]] = None,
    storage: bool = True,
) -> Callable[[T], T]:
    """Class decorator registering an analytical model or a simulator.

    Parameters
    ----------
    name:
        Canonical protocol name (the paper's spelling).  The model and the
        simulator of one protocol register under the same name and are
        paired by it.
    kind:
        ``"model"`` for :class:`~repro.core.analytical.base.AnalyticalModel`
        subclasses, ``"simulator"`` for
        :class:`~repro.core.protocols.base.ProtocolSimulator` subclasses,
        ``"vectorized"`` for across-trials engine adapters exposing
        ``run_trials(runs, seed)``, ``"schedule"`` for segment-IR compiler
        functions ``(parameters, workload, **knobs) ->
        `` :class:`~repro.simulation.schedule.Schedule`.
    aliases:
        Alternative lookup names (case-insensitive, shared by both halves).
    paper:
        Whether the protocol belongs to the paper's headline comparison and
        therefore appears in the ``PROTOCOL_PAIRS`` compatibility view.
    tunable:
        Constructor keywords :mod:`repro.optimize` may search over.  Omitted
        (the common case), they are introspected from the model constructor
        -- any keyword-only ``period`` / ``*_period`` parameter -- so a newly
        registered protocol is optimizable without further wiring; pass an
        explicit tuple (possibly empty) to override the discovery.
    storage:
        Whether the protocol writes checkpoints and therefore supports the
        storage axis (default ``True``; the NoFT baseline passes ``False``).

    Examples
    --------
    >>> @register_protocol("MyCkpt", kind="model", aliases=("mine",))
    ... class MyCkptModel:  # doctest: +SKIP
    ...     ...
    """
    if kind not in ("model", "simulator", "vectorized", "schedule"):
        raise ValueError(
            "kind must be 'model', 'simulator', 'vectorized' or 'schedule', "
            f"got {kind!r}"
        )

    def decorator(cls: T) -> T:
        entry = _PROTOCOLS.get(name)
        if entry is None:
            entry = ProtocolEntry(name=name, aliases=tuple(aliases), paper=paper)
            _PROTOCOLS[name] = entry
        else:
            entry.aliases = tuple(dict.fromkeys((*entry.aliases, *aliases)))
            entry.paper = entry.paper and paper
        entry.storage = entry.storage and storage
        if tunable is not None:
            entry.tunable = tuple(tunable)
        if kind == "model":
            entry.model_cls = cls
        elif kind == "simulator":
            entry.simulator_cls = cls
        elif kind == "vectorized":
            entry.vectorized_cls = cls
        else:
            entry.schedule_fn = cls
        _register_lookup(_PROTOCOL_LOOKUP, name, entry.aliases, "protocol")
        return cls

    return decorator


def register_failure_model(
    name: str,
    *,
    aliases: Tuple[str, ...] = (),
    factory: Optional[Callable[..., Any]] = None,
    vectorized: bool = False,
) -> Callable[[T], T]:
    """Class decorator registering a failure model under a spec-level name.

    ``factory(cls, mtbf, **params)`` customises construction from scenario
    data; the default calls ``cls(mtbf, **params)``.  ``vectorized`` marks
    the law as batchable by the across-trials engine (see
    :attr:`FailureModelEntry.vectorized`); every backend-selection layer and
    diagnostic derives its supported-law list from this flag.
    """

    def decorator(cls: T) -> T:
        entry = FailureModelEntry(
            name=name,
            cls=cls,
            aliases=tuple(aliases),
            factory=factory,
            vectorized=bool(vectorized),
        )
        _FAILURE_MODELS[name] = entry
        _register_lookup(_FAILURE_LOOKUP, name, entry.aliases, "failure model")
        return cls

    return decorator


def register_storage(
    name: str,
    *,
    aliases: Tuple[str, ...] = (),
    analytical: bool = True,
    nested: Tuple[str, ...] = (),
) -> Callable[[T], T]:
    """Class decorator registering a checkpoint-storage medium.

    Parameters
    ----------
    name:
        Canonical storage name used in scenario specs and on the CLI.
    aliases:
        Alternative lookup names (case-insensitive).
    analytical:
        Whether the medium's scalar lowering is exact for the closed-form
        waste models (``False`` for risk-weighted approximations such as
        buddy checkpointing with a fallback level -- Monte-Carlo refinement
        is advised there).
    nested:
        Constructor parameter names whose values are themselves storage
        media; :func:`build_storage` recurses into them, so composites
        (multi-level, incremental, buddy-with-fallback) are expressible as
        nested ``{"kind": ..., "params": {...}}`` trees in scenario JSON.
    """

    def decorator(cls: T) -> T:
        entry = StorageEntry(
            name=name,
            cls=cls,
            aliases=tuple(aliases),
            analytical=bool(analytical),
            nested=tuple(nested),
        )
        _STORAGES[name] = entry
        _register_lookup(_STORAGE_LOOKUP, name, entry.aliases, "storage")
        return cls

    return decorator


# ---------------------------------------------------------------------- #
# Lookup
# ---------------------------------------------------------------------- #
def protocol_names(*, paper_only: bool = False) -> Tuple[str, ...]:
    """Canonical protocol names, in registration (paper) order."""
    _ensure_builtins()
    return tuple(
        entry.name
        for entry in _PROTOCOLS.values()
        if entry.model_cls is not None
        and entry.simulator_cls is not None
        and (entry.paper or not paper_only)
    )


def vectorized_protocol_names() -> Tuple[str, ...]:
    """Canonical names of protocols with a vectorized engine registered."""
    _ensure_builtins()
    return tuple(
        entry.name for entry in _PROTOCOLS.values() if entry.vectorized_cls is not None
    )


def failure_model_names() -> Tuple[str, ...]:
    """Canonical failure-model names, in registration order."""
    _ensure_builtins()
    return tuple(_FAILURE_MODELS)


def storage_names() -> Tuple[str, ...]:
    """Canonical storage-medium names, in registration order."""
    _ensure_builtins()
    return tuple(_STORAGES)


def resolve_storage(name: str) -> StorageEntry:
    """Look a storage medium up by canonical name or alias."""
    _ensure_builtins()
    canonical = _STORAGE_LOOKUP.get(str(name).casefold())
    if canonical is None:
        raise UnknownStorageError(name, storage_names())
    return _STORAGES[canonical]


def build_storage(data: Any, *, path: str = "storage") -> Any:
    """Build a (possibly nested) storage medium from plain spec data.

    ``data`` is a ``{"kind": <name>, "params": {...}}`` mapping; parameters
    a medium registered as ``nested`` are themselves such mappings and are
    built recursively, so a whole hierarchy (node-local NVRAM under a
    multi-level stack under incremental checkpointing) round-trips through
    scenario JSON.  Errors are ``ValueError`` with messages prefixed by the
    dotted ``path`` of the offending field, ready to be wrapped in a
    :class:`~repro.scenario.spec.ScenarioSpecError`.
    """
    if not isinstance(data, Mapping):
        raise ValueError(
            f"{path}: expected a mapping with a 'kind' key, "
            f"got {type(data).__name__}"
        )
    unknown = set(data) - {"kind", "params"}
    if unknown:
        raise ValueError(
            f"{path}: unknown keys {sorted(unknown)}; allowed: ['kind', 'params']"
        )
    kind = data.get("kind")
    if not isinstance(kind, str) or not kind:
        raise ValueError(f"{path}.kind: expected a storage kind string")
    try:
        entry = resolve_storage(kind)
    except UnknownStorageError as exc:
        raise ValueError(f"{path}.kind: {exc}") from exc
    params = data.get("params", {})
    if not isinstance(params, Mapping):
        raise ValueError(
            f"{path}.params: expected a mapping, got {type(params).__name__}"
        )
    kwargs: Dict[str, Any] = {}
    for key, value in params.items():
        if key in entry.nested and value is not None:
            kwargs[str(key)] = build_storage(value, path=f"{path}.params.{key}")
        else:
            kwargs[str(key)] = value
    try:
        return entry.cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{path}.params: {exc}") from exc


def vectorized_law_names() -> Tuple[str, ...]:
    """Canonical names of failure laws the vectorized engine can sample.

    Derived from the ``register_failure_model(vectorized=True)`` flag, so
    backend diagnostics and ``scenario list`` guidance stay truthful as the
    engine's law coverage widens.
    """
    _ensure_builtins()
    return tuple(
        entry.name for entry in _FAILURE_MODELS.values() if entry.vectorized
    )


def registry_catalog() -> Dict[str, Any]:
    """JSON-compatible snapshot of everything the registry can resolve.

    One serializer, two consumers: ``scenario list --json`` prints it and
    the advisor service's ``GET /protocols`` endpoint returns it, so
    machine-readable discovery is identical on the CLI and over HTTP.  The
    layout is deliberately plain data (sorted, no classes): protocol entries
    carry their aliases, engine backends and tunable period keywords;
    failure-model entries their aliases and vectorized flag.
    """
    _ensure_builtins()
    from repro.simulation.vectorized import ENGINE_BACKENDS

    all_storages = list(storage_names())
    protocols = []
    for name in protocol_names():
        entry = resolve_protocol(name)
        protocols.append(
            {
                "name": entry.name,
                "aliases": list(entry.aliases),
                "paper": bool(entry.paper),
                "backends": (
                    ["event", "vectorized"] if entry.has_vectorized else ["event"]
                ),
                "has_schedule": entry.has_schedule,
                "period_parameters": list(entry.period_parameters),
                # Storage stacks the protocol accepts: any registered medium
                # for checkpointing protocols, nothing for NoFT.
                "storage_stacks": list(all_storages) if entry.storage else [],
            }
        )
    failure_models = []
    for name in failure_model_names():
        entry = resolve_failure_model(name)
        failure_models.append(
            {
                "name": entry.name,
                "aliases": list(entry.aliases),
                "backends": (
                    ["event", "vectorized"] if entry.vectorized else ["event"]
                ),
            }
        )
    storages = []
    for name in storage_names():
        entry = resolve_storage(name)
        storages.append(
            {
                "name": entry.name,
                "aliases": list(entry.aliases),
                "analytical": bool(entry.analytical),
                "nested": list(entry.nested),
            }
        )
    return {
        "protocols": protocols,
        "failure_models": failure_models,
        "storages": storages,
        "engine_backends": list(ENGINE_BACKENDS),
        "vectorized_protocols": list(vectorized_protocol_names()),
        "vectorized_laws": list(vectorized_law_names()),
    }


def vectorized_law_classes() -> Tuple[type, ...]:
    """Model classes behind :func:`vectorized_law_names` (exact types).

    The across-trials engine only trusts *exact* instances of these classes:
    a subclass may override the sampling, which the engine could not honour,
    so it falls back to the event backend.
    """
    _ensure_builtins()
    return tuple(
        entry.cls for entry in _FAILURE_MODELS.values() if entry.vectorized
    )


def resolve_protocol(name: str) -> ProtocolEntry:
    """Look a protocol up by canonical name or alias (case-insensitive)."""
    _ensure_builtins()
    canonical = _PROTOCOL_LOOKUP.get(str(name).casefold())
    if canonical is None:
        raise UnknownProtocolError(name, protocol_names())
    return _PROTOCOLS[canonical]


def resolve_failure_model(name: str) -> FailureModelEntry:
    """Look a failure model up by canonical name or alias."""
    _ensure_builtins()
    canonical = _FAILURE_LOOKUP.get(str(name).casefold())
    if canonical is None:
        raise UnknownFailureModelError(name, failure_model_names())
    return _FAILURE_MODELS[canonical]


def create_failure_model(
    name: str, mtbf: Optional[float] = None, **params: Any
) -> Any:
    """Instantiate a registered failure model for a target MTBF."""
    return resolve_failure_model(name).create(mtbf, **params)


class ResolvedProtocol(NamedTuple):
    """A protocol bound to concrete parameters: the tentpole triple."""

    model: Any
    simulator: Any
    failure_model: Any


def resolve(
    protocol: str,
    parameters: Any,
    workload: Any,
    *,
    failure_model: str = "exponential",
    failure_params: Optional[Mapping[str, Any]] = None,
    model_kwargs: Optional[Mapping[str, Any]] = None,
    simulator_kwargs: Optional[Mapping[str, Any]] = None,
) -> ResolvedProtocol:
    """Bind a protocol name to concrete instances.

    Returns the ``(analytical model, simulator, failure model)`` triple:
    the model constructed on ``parameters``, the failure model constructed
    for ``parameters.platform_mtbf`` and the simulator constructed on
    ``parameters``/``workload`` *with that failure model*, so simulated
    campaigns follow whatever failure law the caller selected.
    """
    entry = resolve_protocol(protocol)
    model_cls, simulator_cls = entry.pair
    fm = create_failure_model(
        failure_model, parameters.platform_mtbf, **dict(failure_params or {})
    )
    model = model_cls(parameters, **dict(model_kwargs or {}))
    simulator = simulator_cls(
        parameters, workload, failure_model=fm, **dict(simulator_kwargs or {})
    )
    return ResolvedProtocol(model=model, simulator=simulator, failure_model=fm)


# ---------------------------------------------------------------------- #
# Backwards-compatible PROTOCOL_PAIRS view
# ---------------------------------------------------------------------- #
class _ProtocolPairsView(Mapping):
    """Live, read-only ``name -> (model class, simulator class)`` mapping.

    Deprecated in favour of :func:`resolve_protocol`; kept so that code and
    tests written against the original ``PROTOCOL_PAIRS`` dict keep working.
    Restricted to the paper's headline protocols, in paper order.
    """

    def __getitem__(self, name: str) -> Tuple[type, type]:
        # Exact canonical keys only, like the original dict: alias and
        # case-insensitive lookups belong to resolve_protocol(), and
        # __getitem__ must agree with __iter__/__contains__ (the Mapping
        # invariant).
        if name not in protocol_names(paper_only=True):
            raise UnknownProtocolError(name, protocol_names(paper_only=True))
        return resolve_protocol(name).pair

    def __iter__(self) -> Iterator[str]:
        return iter(protocol_names(paper_only=True))

    def __len__(self) -> int:
        return len(protocol_names(paper_only=True))

    def __contains__(self, name: object) -> bool:
        # Membership mirrors iteration (the paper's protocol set), not the
        # full registry: ``"NoFT" in PROTOCOL_PAIRS`` stays False as it was
        # for the original dict.
        return name in protocol_names(paper_only=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PROTOCOL_PAIRS({', '.join(protocol_names(paper_only=True))})"


#: Deprecated: analytical model and simulator classes per paper protocol
#: name.  A live view over the registry; prefer :func:`resolve_protocol`.
PROTOCOL_PAIRS: Mapping[str, Tuple[type, type]] = _ProtocolPairsView()


def __getattr__(attr: str) -> Any:
    if attr == "PROTOCOL_NAMES":
        # Computed lazily so importing this module never forces the builtin
        # implementation imports.
        return protocol_names(paper_only=True)
    raise AttributeError(f"module {__name__!r} has no attribute {attr!r}")
