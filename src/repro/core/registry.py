"""The canonical protocol registry: analytical model + simulator per name.

Several layers need the same mapping from a protocol's paper name to its
implementation pair -- the validation harness (Figures 7b/7d/7f), the
campaign sweep runner, reports.  Keeping the pairing in one place, next to
the classes it names, means adding or renaming a protocol is a single edit
and the layers can never silently disagree on the protocol set.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from repro.core.analytical import (
    AbftPeriodicCkptModel,
    AnalyticalModel,
    BiPeriodicCkptModel,
    PurePeriodicCkptModel,
)
from repro.core.protocols import (
    AbftPeriodicCkptSimulator,
    BiPeriodicCkptSimulator,
    ProtocolSimulator,
    PurePeriodicCkptSimulator,
)

__all__ = ["PROTOCOL_PAIRS", "PROTOCOL_NAMES"]

#: Analytical model and simulator classes, per protocol name (paper order).
PROTOCOL_PAIRS: Dict[
    str, Tuple[Type[AnalyticalModel], Type[ProtocolSimulator]]
] = {
    "PurePeriodicCkpt": (PurePeriodicCkptModel, PurePeriodicCkptSimulator),
    "BiPeriodicCkpt": (BiPeriodicCkptModel, BiPeriodicCkptSimulator),
    "ABFT&PeriodicCkpt": (AbftPeriodicCkptModel, AbftPeriodicCkptSimulator),
}

#: Protocol names in the order the paper presents them.
PROTOCOL_NAMES: Tuple[str, ...] = tuple(PROTOCOL_PAIRS)
