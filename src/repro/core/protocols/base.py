"""Shared machinery of the protocol simulators.

Every protocol simulator is a *time-walking state machine*: starting from a
protected state, it attempts segments of execution (a chunk of work followed
by a checkpoint, an un-checkpointed phase, an ABFT-protected stretch, a
recovery, ...) against a :class:`~repro.failures.timeline.FailureTimeline`.
If the next failure falls after the segment, the segment completes and its
cost is accounted; otherwise the failure is recorded, the time already spent
is charged to the appropriate waste category, the configured recovery
sequence is performed (itself restartable if further failures strike), and
the protocol decides where execution resumes (last checkpoint, phase start,
or -- for ABFT -- the exact point of interruption).

Since the segment-schedule IR (:mod:`repro.simulation.schedule`), a concrete
protocol no longer hand-writes that walk: it implements
:meth:`ProtocolSimulator.compile_schedule` (usually by delegating to its
module's registered ``compile_schedule()`` function) and the default
:meth:`ProtocolSimulator._run` executes the compiled
:class:`~repro.simulation.schedule.Schedule` through
:class:`~repro.simulation.schedule.ScheduleInterpreter`.  The historical
building-block helpers below (``_periodic_section``, ``_abft_section``, ...)
are kept as thin wrappers over the canonical walk functions in
:mod:`repro.simulation.schedule`, so subclasses that still override ``_run``
imperatively (reference implementations in the test suite, downstream
protocol prototypes) keep working bit for bit.
"""

from __future__ import annotations

import copy
from typing import Optional, Sequence

import numpy as np

from repro.application.workload import ApplicationWorkload
from repro.checkpointing.stack import StorageStack
from repro.core.parameters import ResilienceParameters
from repro.obs import log
from repro.failures.base import FailureModel
from repro.failures.exponential import ExponentialFailureModel
from repro.failures.timeline import FailureTimeline
from repro.simulation.schedule import (
    Schedule,
    ScheduleInterpreter,
    SimulationHorizonExceeded,
    run_abft_section,
    run_atomic_segment,
    run_checkpoint,
    run_periodic_section,
    run_restart,
)
from repro.simulation.schedule import (
    _account_abft_progress as _schedule_account_abft_progress,
)
from repro.simulation.schedule import periodic_chunk_size
from repro.simulation.trace import ExecutionTrace, TraceRecorder

__all__ = ["ProtocolSimulator", "SimulationHorizonExceeded"]

#: Categories used when a restart sequence is interrupted mid-way.
RestartStages = Sequence[tuple[str, float]]


def _note_scalar_cost_api(simulator: str) -> None:
    """Emit the one structured note about the legacy scalar-cost API.

    Constructing a simulator from bare ``checkpoint``/``recovery`` scalars
    keeps working (it is exactly a flat storage stack), but the storage
    axis is the first-class spelling now.  One deduplicated ``obs.log``
    note -- counted in ``repro_log_events_total`` on every construction,
    printed once per process -- instead of a ``DeprecationWarning`` spray.
    """
    log(
        "note",
        "scalar-cost-api",
        dedupe="scalar-cost-api",
        simulator=simulator,
        hint="pass storage=StorageStack(...) or parameters.with_storage(...)",
    )


class ProtocolSimulator:
    """Base class for the discrete-event protocol simulators.

    Parameters
    ----------
    parameters:
        The resilience parameter bundle (MTBF, costs, ABFT parameters).
    workload:
        The application to protect.
    failure_model:
        The failure law driving the simulation.  ``None`` (default) uses the
        paper's memoryless law,
        :class:`~repro.failures.exponential.ExponentialFailureModel` at the
        parameters' platform MTBF; any other
        :class:`~repro.failures.base.FailureModel` (Weibull, log-normal,
        trace replay, ...) is accepted, which is how the scenario layer
        studies non-exponential failure laws.
    record_events:
        Store individual events in the resulting trace (off by default; the
        aggregate time breakdown is always recorded).
    max_slowdown:
        Safety cap: the simulation is truncated once the makespan exceeds
        ``max_slowdown * T0`` (the trace is flagged ``truncated=True`` in its
        metadata and its waste is effectively 1).
    storage:
        Optional :class:`~repro.checkpointing.stack.StorageStack`.  When
        given, the parameters are re-lowered from it
        (``parameters.with_storage(storage)``), so the protocol checkpoints
        at the stack's effective write/read costs.  When neither this nor
        ``parameters.storage`` is set, the simulator runs on the legacy
        scalar costs -- exactly an implicit flat storage -- and a single
        deduplicated ``obs.log`` note records the legacy-API use.
    """

    #: Human-readable protocol name (set by subclasses).
    name: str = "protocol"

    #: Whether the protocol writes checkpoints at all.  NoFT sets this to
    #: ``False``: it neither accepts a storage stack nor triggers the
    #: legacy scalar-cost note.
    supports_storage: bool = True

    def __init__(
        self,
        parameters: ResilienceParameters,
        workload: ApplicationWorkload,
        *,
        failure_model: Optional["FailureModel"] = None,
        record_events: bool = False,
        max_slowdown: float = 1e4,
        storage: Optional[StorageStack] = None,
    ) -> None:
        if max_slowdown <= 1.0:
            raise ValueError(f"max_slowdown must be > 1, got {max_slowdown}")
        if storage is not None:
            if not self.supports_storage:
                raise ValueError(
                    f"{type(self).__name__} does not checkpoint and "
                    "accepts no storage stack"
                )
            parameters = parameters.with_storage(storage)
        elif parameters.storage is None and self.supports_storage:
            _note_scalar_cost_api(type(self).__name__)
        self._params = parameters
        self._workload = workload
        self._failure_model = failure_model
        self._record_events = bool(record_events)
        self._max_makespan = float(max_slowdown) * workload.total_time
        self._schedule_cache: Optional[Schedule] = None

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    @property
    def parameters(self) -> ResilienceParameters:
        """The resilience parameter bundle."""
        return self._params

    @property
    def workload(self) -> ApplicationWorkload:
        """The protected application."""
        return self._workload

    @property
    def failure_model(self) -> Optional[FailureModel]:
        """The configured failure law (``None`` means exponential)."""
        return self._failure_model

    def simulate(
        self,
        rng: Optional[np.random.Generator] = None,
        *,
        timeline: Optional[FailureTimeline] = None,
        seed: Optional[int] = None,
    ) -> ExecutionTrace:
        """Simulate one execution and return its trace.

        Exactly one source of randomness is used: an explicit ``timeline``
        (for scripted scenarios), an explicit ``rng``, or a fresh generator
        built from ``seed``.
        """
        if timeline is None:
            if rng is None:
                rng = np.random.default_rng(seed)
            model = self._failure_model
            if model is None:
                model = ExponentialFailureModel(self._params.platform_mtbf)
            elif hasattr(model, "spawn"):
                # Stateful models (trace replay) return a private, rewound
                # clone sharing the immutable bulk data: every run replays
                # the trace from the start, and concurrent runs sharing one
                # simulator (thread pools) never advance each other's
                # cursor.  Stateless models return themselves, so this is
                # free on the common path.
                model = model.spawn()
            elif hasattr(model, "reset"):
                # Third-party stateful models predating the spawn() protocol
                # still get the (slow) deep-copy isolation.
                model = copy.deepcopy(model)
                model.reset()
            timeline = FailureTimeline(model, rng)
        recorder = TraceRecorder(
            self.name,
            self._workload.total_time,
            record_events=self._record_events,
        )
        truncated = False
        try:
            makespan = self._run(timeline, recorder)
        except SimulationHorizonExceeded as exc:
            makespan = exc.time
            truncated = True
        metadata = dict(self._metadata())
        metadata["truncated"] = truncated
        return recorder.finish(makespan, metadata=metadata)

    def simulate_once(self, rng: np.random.Generator) -> ExecutionTrace:
        """Adapter matching :func:`repro.simulation.runner.run_monte_carlo`."""
        return self.simulate(rng=rng)

    # ------------------------------------------------------------------ #
    # To be provided by concrete protocols
    # ------------------------------------------------------------------ #
    def compile_schedule(self) -> Schedule:
        """Compile this configuration into its segment schedule.

        Concrete protocols implement this (usually by delegating to their
        module's ``register_protocol(name, kind="schedule")`` compiler); the
        default :meth:`_run` executes the compiled object.  The schedule may
        only depend on the configuration, never on the failure draws, so one
        compilation serves every trial.
        """
        raise NotImplementedError(
            f"{type(self).__name__} defines neither compile_schedule() nor _run()"
        )

    def _compiled_schedule(self) -> Schedule:
        """The compiled schedule, cached across trials."""
        if self._schedule_cache is None:
            self._schedule_cache = self.compile_schedule()
        return self._schedule_cache

    def _run(self, timeline: FailureTimeline, recorder: TraceRecorder) -> float:
        """Execute the protected application; return the makespan.

        The default implementation interprets the compiled segment schedule;
        subclasses may still override it with a hand-written walk (the
        building-block helpers below preserve the historical semantics).
        """
        interpreter = ScheduleInterpreter(max_makespan=self._max_makespan)
        return interpreter.run(self._compiled_schedule(), timeline, recorder)

    def _metadata(self) -> dict:
        """Protocol-specific metadata stored in every trace."""
        return {}

    # ------------------------------------------------------------------ #
    # Building blocks
    # ------------------------------------------------------------------ #
    # Thin wrappers over the canonical walk functions in
    # repro.simulation.schedule, kept so hand-written _run overrides (test
    # reference implementations, protocol prototypes) compose the same
    # bit-exact building blocks the interpreter executes.
    def _check_cap(self, time: float) -> None:
        if time > self._max_makespan:
            raise SimulationHorizonExceeded(time)

    def _restart(
        self,
        time: float,
        timeline: FailureTimeline,
        recorder: TraceRecorder,
        stages: RestartStages,
    ) -> float:
        """Perform a restart sequence (downtime, recovery, ...), restartable.

        See :func:`repro.simulation.schedule.run_restart`.
        """
        return run_restart(
            time, timeline, recorder, stages, check_cap=self._check_cap
        )

    def _rollback_stages(self, recovery_cost: float) -> RestartStages:
        """Downtime + full rollback recovery (the checkpointing protocols)."""
        return (
            ("downtime", self._params.downtime),
            ("recovery", recovery_cost),
        )

    def _abft_restart_stages(self) -> RestartStages:
        """Downtime + REMAINDER reload + ABFT reconstruction (LIBRARY phase)."""
        return (
            ("downtime", self._params.downtime),
            ("recovery", self._params.remainder_recovery_cost),
            ("abft_recovery", self._params.abft_reconstruction),
        )

    # .................................................................. #
    def _periodic_section(
        self,
        time: float,
        work: float,
        timeline: FailureTimeline,
        recorder: TraceRecorder,
        *,
        checkpoint_cost: float,
        recovery_cost: float,
        period: float,
        trailing_checkpoint: bool,
    ) -> float:
        """Execute ``work`` seconds of work under periodic checkpointing.

        See :func:`repro.simulation.schedule.run_periodic_section`; the
        period-to-chunk mapping (an invalid period means a single chunk) is
        :func:`repro.simulation.schedule.periodic_chunk_size`.
        """
        return run_periodic_section(
            time,
            work,
            timeline,
            recorder,
            chunk_size=periodic_chunk_size(period, checkpoint_cost, work),
            checkpoint_cost=checkpoint_cost,
            trailing_checkpoint=trailing_checkpoint,
            restart_stages=self._rollback_stages(recovery_cost),
            check_cap=self._check_cap,
        )

    # .................................................................. #
    def _unprotected_section(
        self,
        time: float,
        work: float,
        timeline: FailureTimeline,
        recorder: TraceRecorder,
        *,
        recovery_cost: float,
        checkpoint_cost: float = 0.0,
    ) -> float:
        """Execute ``work`` + an optional trailing checkpoint atomically.

        See :func:`repro.simulation.schedule.run_atomic_segment`.
        """
        return run_atomic_segment(
            time,
            work,
            timeline,
            recorder,
            checkpoint_cost=checkpoint_cost,
            restart_stages=self._rollback_stages(recovery_cost),
            check_cap=self._check_cap,
        )

    # .................................................................. #
    def _checkpoint(
        self,
        time: float,
        timeline: FailureTimeline,
        recorder: TraceRecorder,
        *,
        checkpoint_cost: float,
        restart_stages: RestartStages,
        redo_on_failure: bool = True,
    ) -> float:
        """Write one checkpoint, handling failures during the write.

        See :func:`repro.simulation.schedule.run_checkpoint`.
        """
        return run_checkpoint(
            time,
            timeline,
            recorder,
            checkpoint_cost=checkpoint_cost,
            restart_stages=restart_stages,
            redo_on_failure=redo_on_failure,
            check_cap=self._check_cap,
        )

    # .................................................................. #
    def _abft_section(
        self,
        time: float,
        work: float,
        timeline: FailureTimeline,
        recorder: TraceRecorder,
        *,
        exit_checkpoint_cost: float,
    ) -> float:
        """Execute ``work`` seconds of computation under ABFT protection.

        See :func:`repro.simulation.schedule.run_abft_section`.
        """
        return run_abft_section(
            time,
            work,
            timeline,
            recorder,
            phi=self._params.phi,
            restart_stages=self._abft_restart_stages(),
            exit_checkpoint_cost=exit_checkpoint_cost,
            check_cap=self._check_cap,
        )

    @staticmethod
    def _account_abft_progress(
        recorder: TraceRecorder, elapsed: float, phi: float
    ) -> None:
        """Split ABFT-protected wall-clock time into progress and overhead."""
        _schedule_account_abft_progress(recorder, elapsed, phi)
