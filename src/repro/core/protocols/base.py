"""Shared machinery of the protocol simulators.

Every protocol simulator is a *time-walking state machine*: starting from a
protected state, it attempts segments of execution (a chunk of work followed
by a checkpoint, an un-checkpointed phase, an ABFT-protected stretch, a
recovery, ...) against a :class:`~repro.failures.timeline.FailureTimeline`.
If the next failure falls after the segment, the segment completes and its
cost is accounted; otherwise the failure is recorded, the time already spent
is charged to the appropriate waste category, the configured recovery
sequence is performed (itself restartable if further failures strike), and
the protocol decides where execution resumes (last checkpoint, phase start,
or -- for ABFT -- the exact point of interruption).

The helpers in :class:`ProtocolSimulator` implement those building blocks so
that each concrete protocol is a short, readable composition of them.
"""

from __future__ import annotations

import abc
import copy
import math
from typing import Optional, Sequence

import numpy as np

from repro.application.workload import ApplicationWorkload
from repro.core.parameters import ResilienceParameters
from repro.failures.base import FailureModel
from repro.failures.exponential import ExponentialFailureModel
from repro.failures.timeline import FailureTimeline
from repro.simulation.events import EventKind
from repro.simulation.trace import ExecutionTrace, TraceRecorder

__all__ = ["ProtocolSimulator", "SimulationHorizonExceeded"]

#: Categories used when a restart sequence is interrupted mid-way.
RestartStages = Sequence[tuple[str, float]]


class SimulationHorizonExceeded(RuntimeError):
    """Raised internally when a run exceeds the configured makespan cap.

    In infeasible regimes (e.g. the checkpoint cost exceeds the MTBF) a
    simulated execution may essentially never finish; the cap turns that into
    a truncated trace whose waste is ~1 instead of an endless loop.
    """

    def __init__(self, time: float) -> None:
        super().__init__(f"simulation exceeded its makespan cap at t={time:.6g}s")
        self.time = time


class ProtocolSimulator(abc.ABC):
    """Base class for the discrete-event protocol simulators.

    Parameters
    ----------
    parameters:
        The resilience parameter bundle (MTBF, costs, ABFT parameters).
    workload:
        The application to protect.
    failure_model:
        The failure law driving the simulation.  ``None`` (default) uses the
        paper's memoryless law,
        :class:`~repro.failures.exponential.ExponentialFailureModel` at the
        parameters' platform MTBF; any other
        :class:`~repro.failures.base.FailureModel` (Weibull, log-normal,
        trace replay, ...) is accepted, which is how the scenario layer
        studies non-exponential failure laws.
    record_events:
        Store individual events in the resulting trace (off by default; the
        aggregate time breakdown is always recorded).
    max_slowdown:
        Safety cap: the simulation is truncated once the makespan exceeds
        ``max_slowdown * T0`` (the trace is flagged ``truncated=True`` in its
        metadata and its waste is effectively 1).
    """

    #: Human-readable protocol name (set by subclasses).
    name: str = "protocol"

    def __init__(
        self,
        parameters: ResilienceParameters,
        workload: ApplicationWorkload,
        *,
        failure_model: Optional["FailureModel"] = None,
        record_events: bool = False,
        max_slowdown: float = 1e4,
    ) -> None:
        if max_slowdown <= 1.0:
            raise ValueError(f"max_slowdown must be > 1, got {max_slowdown}")
        self._params = parameters
        self._workload = workload
        self._failure_model = failure_model
        self._record_events = bool(record_events)
        self._max_makespan = float(max_slowdown) * workload.total_time

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    @property
    def parameters(self) -> ResilienceParameters:
        """The resilience parameter bundle."""
        return self._params

    @property
    def workload(self) -> ApplicationWorkload:
        """The protected application."""
        return self._workload

    @property
    def failure_model(self) -> Optional[FailureModel]:
        """The configured failure law (``None`` means exponential)."""
        return self._failure_model

    def simulate(
        self,
        rng: Optional[np.random.Generator] = None,
        *,
        timeline: Optional[FailureTimeline] = None,
        seed: Optional[int] = None,
    ) -> ExecutionTrace:
        """Simulate one execution and return its trace.

        Exactly one source of randomness is used: an explicit ``timeline``
        (for scripted scenarios), an explicit ``rng``, or a fresh generator
        built from ``seed``.
        """
        if timeline is None:
            if rng is None:
                rng = np.random.default_rng(seed)
            model = self._failure_model
            if model is None:
                model = ExponentialFailureModel(self._params.platform_mtbf)
            elif hasattr(model, "spawn"):
                # Stateful models (trace replay) return a private, rewound
                # clone sharing the immutable bulk data: every run replays
                # the trace from the start, and concurrent runs sharing one
                # simulator (thread pools) never advance each other's
                # cursor.  Stateless models return themselves, so this is
                # free on the common path.
                model = model.spawn()
            elif hasattr(model, "reset"):
                # Third-party stateful models predating the spawn() protocol
                # still get the (slow) deep-copy isolation.
                model = copy.deepcopy(model)
                model.reset()
            timeline = FailureTimeline(model, rng)
        recorder = TraceRecorder(
            self.name,
            self._workload.total_time,
            record_events=self._record_events,
        )
        truncated = False
        try:
            makespan = self._run(timeline, recorder)
        except SimulationHorizonExceeded as exc:
            makespan = exc.time
            truncated = True
        metadata = dict(self._metadata())
        metadata["truncated"] = truncated
        return recorder.finish(makespan, metadata=metadata)

    def simulate_once(self, rng: np.random.Generator) -> ExecutionTrace:
        """Adapter matching :func:`repro.simulation.runner.run_monte_carlo`."""
        return self.simulate(rng=rng)

    # ------------------------------------------------------------------ #
    # To be provided by concrete protocols
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _run(self, timeline: FailureTimeline, recorder: TraceRecorder) -> float:
        """Execute the protected application; return the makespan."""

    def _metadata(self) -> dict:
        """Protocol-specific metadata stored in every trace."""
        return {}

    # ------------------------------------------------------------------ #
    # Building blocks
    # ------------------------------------------------------------------ #
    def _check_cap(self, time: float) -> None:
        if time > self._max_makespan:
            raise SimulationHorizonExceeded(time)

    def _restart(
        self,
        time: float,
        timeline: FailureTimeline,
        recorder: TraceRecorder,
        stages: RestartStages,
    ) -> float:
        """Perform a restart sequence (downtime, recovery, ...), restartable.

        ``stages`` is an ordered list of ``(category, duration)`` pairs, e.g.
        ``[("downtime", D), ("recovery", R)]``.  If a failure strikes before
        the whole sequence completes, the time already spent is charged to
        the categories reached so far and the sequence starts over.
        Returns the time at which the sequence finally completes.
        """
        total = sum(duration for _, duration in stages)
        if total <= 0.0:
            return time
        recorder.record(time, EventKind.RECOVERY_START)
        while True:
            self._check_cap(time)
            next_failure = timeline.next_failure_after(time)
            if next_failure >= time + total:
                for category, duration in stages:
                    recorder.account(category, duration)
                recorder.record(time + total, EventKind.RECOVERY_END)
                return time + total
            # The restart itself is interrupted: charge what was spent, count
            # the failure, and start the sequence over.
            elapsed = next_failure - time
            remaining = elapsed
            for category, duration in stages:
                spent = min(remaining, duration)
                if spent > 0.0:
                    recorder.account(category, spent)
                remaining -= spent
                if remaining <= 0.0:
                    break
            recorder.record(next_failure, EventKind.FAILURE, during="restart")
            time = next_failure

    def _rollback_stages(self, recovery_cost: float) -> RestartStages:
        """Downtime + full rollback recovery (the checkpointing protocols)."""
        return (
            ("downtime", self._params.downtime),
            ("recovery", recovery_cost),
        )

    def _abft_restart_stages(self) -> RestartStages:
        """Downtime + REMAINDER reload + ABFT reconstruction (LIBRARY phase)."""
        return (
            ("downtime", self._params.downtime),
            ("recovery", self._params.remainder_recovery_cost),
            ("abft_recovery", self._params.abft_reconstruction),
        )

    # .................................................................. #
    def _periodic_section(
        self,
        time: float,
        work: float,
        timeline: FailureTimeline,
        recorder: TraceRecorder,
        *,
        checkpoint_cost: float,
        recovery_cost: float,
        period: float,
        trailing_checkpoint: bool,
    ) -> float:
        """Execute ``work`` seconds of work under periodic checkpointing.

        The section starts from a protected state (job start, split
        checkpoint or previous periodic checkpoint).  Work is cut into chunks
        of ``period - checkpoint_cost`` seconds, each followed by a
        checkpoint; a failure rolls back to the last completed checkpoint.
        The last (possibly partial) chunk is followed by a checkpoint only
        when ``trailing_checkpoint`` is true.

        An invalid period (NaN, or not larger than the checkpoint cost) is
        treated as "no intermediate checkpoint": the whole section forms a
        single chunk, which is the degenerate behaviour a real runtime would
        adopt when the optimal-period formula has no solution.
        """
        if work <= 0.0:
            if trailing_checkpoint and checkpoint_cost > 0.0:
                return self._checkpoint(
                    time,
                    timeline,
                    recorder,
                    checkpoint_cost=checkpoint_cost,
                    restart_stages=self._rollback_stages(recovery_cost),
                )
            return time
        if math.isnan(period) or period <= checkpoint_cost:
            chunk_size = work
        else:
            chunk_size = period - checkpoint_cost

        work_done = 0.0
        while work_done < work:
            chunk = min(chunk_size, work - work_done)
            is_last = work_done + chunk >= work - 1e-12
            do_checkpoint = (not is_last) or trailing_checkpoint
            segment = chunk + (checkpoint_cost if do_checkpoint else 0.0)
            self._check_cap(time)
            next_failure = timeline.next_failure_after(time)
            if next_failure >= time + segment:
                recorder.account("useful_work", chunk)
                if do_checkpoint and checkpoint_cost > 0.0:
                    recorder.account("checkpointing", checkpoint_cost)
                    recorder.record(time + segment, EventKind.CHECKPOINT_END)
                time += segment
                work_done += chunk
            else:
                elapsed = next_failure - time
                recorder.account("lost_work", elapsed)
                recorder.record(next_failure, EventKind.FAILURE, during="periodic")
                time = self._restart(
                    next_failure,
                    timeline,
                    recorder,
                    self._rollback_stages(recovery_cost),
                )
                # Rollback: work_done stays at the last completed checkpoint.
        return time

    # .................................................................. #
    def _unprotected_section(
        self,
        time: float,
        work: float,
        timeline: FailureTimeline,
        recorder: TraceRecorder,
        *,
        recovery_cost: float,
        checkpoint_cost: float = 0.0,
    ) -> float:
        """Execute ``work`` + an optional trailing checkpoint atomically.

        Used for the composite's short GENERAL phase: no intermediate
        checkpoint is taken, so a failure anywhere in the phase (or in its
        trailing partial checkpoint) re-executes it entirely from the
        previous protected state (reached through a full rollback of cost
        ``recovery_cost``).
        """
        segment = work + checkpoint_cost
        if segment <= 0.0:
            return time
        while True:
            self._check_cap(time)
            next_failure = timeline.next_failure_after(time)
            if next_failure >= time + segment:
                if work > 0.0:
                    recorder.account("useful_work", work)
                if checkpoint_cost > 0.0:
                    recorder.account("checkpointing", checkpoint_cost)
                    recorder.record(time + segment, EventKind.CHECKPOINT_END)
                return time + segment
            elapsed = next_failure - time
            recorder.account("lost_work", elapsed)
            recorder.record(next_failure, EventKind.FAILURE, during="unprotected")
            time = self._restart(
                next_failure,
                timeline,
                recorder,
                self._rollback_stages(recovery_cost),
            )

    # .................................................................. #
    def _checkpoint(
        self,
        time: float,
        timeline: FailureTimeline,
        recorder: TraceRecorder,
        *,
        checkpoint_cost: float,
        restart_stages: RestartStages,
        redo_on_failure: bool = True,
    ) -> float:
        """Write one checkpoint, handling failures during the write.

        With ``redo_on_failure`` (default) a failure during the write pays the
        given restart sequence and the checkpoint is attempted again; this is
        the behaviour used for the composite's exit partial checkpoint, where
        the LIBRARY dataset remains reconstructible by ABFT while the write
        is redone.
        """
        if checkpoint_cost <= 0.0:
            return time
        while True:
            self._check_cap(time)
            next_failure = timeline.next_failure_after(time)
            if next_failure >= time + checkpoint_cost:
                recorder.account("checkpointing", checkpoint_cost)
                recorder.record(time + checkpoint_cost, EventKind.CHECKPOINT_END)
                return time + checkpoint_cost
            elapsed = next_failure - time
            recorder.account("lost_work", elapsed)
            recorder.record(next_failure, EventKind.FAILURE, during="checkpoint")
            time = self._restart(next_failure, timeline, recorder, restart_stages)
            if not redo_on_failure:
                return time

    # .................................................................. #
    def _abft_section(
        self,
        time: float,
        work: float,
        timeline: FailureTimeline,
        recorder: TraceRecorder,
        *,
        exit_checkpoint_cost: float,
    ) -> float:
        """Execute ``work`` seconds of computation under ABFT protection.

        The computation is slowed by ``phi``; a failure costs a downtime, the
        reload of the REMAINDER partial checkpoint and the ABFT
        reconstruction, but loses no work (the surviving processes keep their
        data and the failed process's data is rebuilt).  A partial checkpoint
        of the LIBRARY dataset (``exit_checkpoint_cost``) is written when the
        call returns.
        """
        params = self._params
        phi = params.phi
        scaled_remaining = work * phi
        recorder.record(time, EventKind.LIBRARY_PHASE_START)
        while scaled_remaining > 1e-12:
            self._check_cap(time)
            next_failure = timeline.next_failure_after(time)
            if next_failure >= time + scaled_remaining:
                self._account_abft_progress(recorder, scaled_remaining, phi)
                time += scaled_remaining
                scaled_remaining = 0.0
            else:
                elapsed = next_failure - time
                self._account_abft_progress(recorder, elapsed, phi)
                scaled_remaining -= elapsed
                recorder.record(next_failure, EventKind.FAILURE, during="abft")
                recorder.record(next_failure, EventKind.ABFT_RECOVERY_START)
                time = self._restart(
                    next_failure, timeline, recorder, self._abft_restart_stages()
                )
                recorder.record(time, EventKind.ABFT_RECOVERY_END)
        if exit_checkpoint_cost > 0.0:
            time = self._checkpoint(
                time,
                timeline,
                recorder,
                checkpoint_cost=exit_checkpoint_cost,
                restart_stages=self._abft_restart_stages(),
            )
        recorder.record(time, EventKind.LIBRARY_PHASE_END)
        return time

    @staticmethod
    def _account_abft_progress(
        recorder: TraceRecorder, elapsed: float, phi: float
    ) -> None:
        """Split ABFT-protected wall-clock time into progress and overhead."""
        if elapsed <= 0.0:
            return
        useful = elapsed / phi
        recorder.account("useful_work", useful)
        recorder.account("abft_overhead", elapsed - useful)
