"""Restart-from-scratch protocol (no fault tolerance).

Companion of :class:`repro.core.analytical.no_ft.NoFaultToleranceModel`: the
whole application is one unprotected section; any failure loses all progress
and the run restarts from the beginning after the downtime (there is no
checkpoint to reload, so the recovery cost is zero).

The protocol compiles to a single chunk-sized :class:`PeriodicSegment` with
no checkpoint and a downtime-only restart -- the degenerate case where
"rolling back to the last checkpoint" is restarting from scratch.  Both
Monte-Carlo backends execute that one compiled description.
"""

from __future__ import annotations

from typing import Optional

from repro.application.workload import ApplicationWorkload
from repro.core.parameters import ResilienceParameters
from repro.core.protocols.base import ProtocolSimulator
from repro.core.registry import register_protocol
from repro.failures.base import FailureModel
from repro.simulation.schedule import PeriodicSegment, Schedule
from repro.simulation.vectorized import (
    VectorizedPhasedSimulator,
    vectorized_failure_model_or_raise,
)

__all__ = [
    "NoFaultToleranceSimulator",
    "NoFaultToleranceVectorized",
    "compile_no_ft_schedule",
]


@register_protocol("NoFT", kind="schedule", paper=False, storage=False)
def compile_no_ft_schedule(
    parameters: ResilienceParameters, workload: ApplicationWorkload
) -> Schedule:
    """Compile the NoFT protocol: one unprotected run-to-completion chunk.

    A single periodic segment whose chunk covers the whole application, with
    no checkpoint and a downtime-only restart: a failure anywhere loses all
    progress (the rollback point is the job start) and only the downtime is
    paid before starting over.
    """
    total = workload.total_time
    return Schedule.from_segments(
        (
            PeriodicSegment(
                work=total,
                chunk_size=total,
                checkpoint_cost=0.0,
                trailing=False,
                stages=(("downtime", parameters.downtime),),
                during="no-ft",
            ),
        )
    )


@register_protocol(
    "NoFT", kind="simulator", aliases=("none", "no-ft", "restart"), paper=False,
    storage=False
)
class NoFaultToleranceSimulator(ProtocolSimulator):
    """Simulate an execution with no protection at all."""

    name = "NoFT"
    supports_storage = False

    def compile_schedule(self) -> Schedule:
        return compile_no_ft_schedule(self._params, self._workload)


@register_protocol("NoFT", kind="vectorized", paper=False, storage=False)
class NoFaultToleranceVectorized:
    """Across-trials engine for NoFT under any vectorized failure law.

    Executes the same compiled schedule as :class:`NoFaultToleranceSimulator`
    through the phased engine; bit-identical trial for trial for every
    registry-flagged vectorized law (exponential, Weibull, log-normal,
    trace replay).
    """

    name = "NoFT"

    def __init__(
        self,
        parameters: ResilienceParameters,
        workload: ApplicationWorkload,
        *,
        failure_model: Optional[FailureModel] = None,
        max_slowdown: float = 1e4,
    ) -> None:
        total = workload.total_time
        self._engine = VectorizedPhasedSimulator(
            protocol=self.name,
            application_time=total,
            segments=compile_no_ft_schedule(parameters, workload),
            failure_model=vectorized_failure_model_or_raise(
                failure_model, parameters.platform_mtbf, protocol=self.name
            ),
            max_makespan=float(max_slowdown) * total,
        )

    def run_trials(self, runs: int, seed: Optional[int] = None):
        """Simulate ``runs`` trials; see :class:`VectorizedPhasedSimulator`."""
        return self._engine.run_trials(runs, seed)

    def run_trial_range(self, start: int, stop: int, seed: Optional[int] = None):
        """Simulate trials ``[start, stop)`` of a campaign (shard execution)."""
        return self._engine.run_trial_range(start, stop, seed)
