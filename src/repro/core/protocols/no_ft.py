"""Restart-from-scratch simulator (no fault tolerance).

Companion of :class:`repro.core.analytical.no_ft.NoFaultToleranceModel`: the
whole application is one unprotected section; any failure loses all progress
and the run restarts from the beginning after the downtime (there is no
checkpoint to reload, so the recovery cost is zero).
"""

from __future__ import annotations

from typing import Optional

from repro.application.workload import ApplicationWorkload
from repro.core.parameters import ResilienceParameters
from repro.core.protocols.base import ProtocolSimulator
from repro.core.registry import register_protocol
from repro.failures.base import FailureModel
from repro.failures.timeline import FailureTimeline
from repro.simulation.trace import TraceRecorder
from repro.simulation.vectorized import (
    VectorizedChunkedSimulator,
    vectorized_failure_model_or_raise,
)

__all__ = ["NoFaultToleranceSimulator", "NoFaultToleranceVectorized"]


@register_protocol(
    "NoFT", kind="simulator", aliases=("none", "no-ft", "restart"), paper=False
)
class NoFaultToleranceSimulator(ProtocolSimulator):
    """Simulate an execution with no protection at all."""

    name = "NoFT"

    def __init__(
        self,
        parameters: ResilienceParameters,
        workload: ApplicationWorkload,
        *,
        failure_model: Optional[FailureModel] = None,
        record_events: bool = False,
        max_slowdown: float = 1e4,
    ) -> None:
        super().__init__(
            parameters,
            workload,
            failure_model=failure_model,
            record_events=record_events,
            max_slowdown=max_slowdown,
        )

    def _run(self, timeline: FailureTimeline, recorder: TraceRecorder) -> float:
        work = self._workload.total_time
        time = 0.0
        while True:
            self._check_cap(time)
            next_failure = timeline.next_failure_after(time)
            if next_failure >= time + work:
                recorder.account("useful_work", work)
                return time + work
            elapsed = next_failure - time
            recorder.account("lost_work", elapsed)
            from repro.simulation.events import EventKind

            recorder.record(next_failure, EventKind.FAILURE, during="no-ft")
            # No checkpoint exists: only the downtime is paid before the
            # application restarts from scratch.
            time = self._restart(
                next_failure,
                timeline,
                recorder,
                (("downtime", self._params.downtime),),
            )


@register_protocol("NoFT", kind="vectorized", paper=False)
class NoFaultToleranceVectorized:
    """Across-trials engine for NoFT under any vectorized failure law.

    The whole application is a single unprotected chunk, so the vectorized
    chunked engine models it exactly (no checkpoint, downtime-only restart).
    Bit-identical to :class:`NoFaultToleranceSimulator`, trial for trial,
    for every registry-flagged vectorized law (exponential, Weibull,
    log-normal).
    """

    name = "NoFT"

    def __init__(
        self,
        parameters: ResilienceParameters,
        workload: ApplicationWorkload,
        *,
        failure_model: Optional[FailureModel] = None,
        max_slowdown: float = 1e4,
    ) -> None:
        total = workload.total_time
        self._engine = VectorizedChunkedSimulator(
            protocol=self.name,
            application_time=total,
            work=total,
            chunk_size=total,
            checkpoint_cost=0.0,
            restart_stages=(("downtime", parameters.downtime),),
            failure_model=vectorized_failure_model_or_raise(
                failure_model, parameters.platform_mtbf, protocol=self.name
            ),
            max_makespan=float(max_slowdown) * total,
        )

    def run_trials(self, runs: int, seed: Optional[int] = None):
        """Simulate ``runs`` trials; see :class:`VectorizedChunkedSimulator`."""
        return self._engine.run_trials(runs, seed)
