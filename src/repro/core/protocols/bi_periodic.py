"""BiPeriodicCkpt protocol (Section IV-C / V, Figure 6).

Incremental-checkpoint-aware periodic checkpointing: during LIBRARY phases
only the LIBRARY dataset is modified, so checkpoints there cost ``C_L`` and
use their own (longer-work, cheaper-checkpoint) optimal period; GENERAL
phases keep full checkpoints of cost ``C``.  Recovery always reloads the full
dataset (cost ``R``).

The protocol compiles to one periodically checkpointed segment per phase,
with the per-kind checkpoint cost and period, closed by a trailing
checkpoint on every phase but the last; both Monte-Carlo backends execute
that compiled description.  Identical epochs of a weak-scaling workload
compress into a single repeated run.

Modelling note: when the protection mode switches at a phase boundary, the
schedule closes the current phase with a checkpoint (of that phase's cost)
unless the phase is the last one of the application.  This keeps rollbacks
within a single phase and mirrors what an actual runtime does when changing
checkpoint content; for the workloads of the paper (phases several orders of
magnitude longer than a checkpoint) the extra cost is negligible, and the
excellent model/simulation agreement of the validation experiments confirms
it.
"""

from __future__ import annotations

from typing import Optional

from repro.application.workload import ApplicationWorkload
from repro.core.analytical.young_daly import optimal_period
from repro.checkpointing.stack import StorageStack
from repro.core.parameters import ResilienceParameters
from repro.core.protocols.base import ProtocolSimulator
from repro.core.registry import register_protocol
from repro.failures.base import FailureModel
from repro.simulation.events import EventKind
from repro.simulation.schedule import (
    PeriodicSegment,
    Schedule,
    periodic_chunk_size,
)
from repro.simulation.vectorized import (
    VectorizedPhasedSimulator,
    vectorized_failure_model_or_raise,
)

__all__ = [
    "BiPeriodicCkptSimulator",
    "BiPeriodicCkptVectorized",
    "compile_bi_periodic_schedule",
]


def _resolve_general_period(
    parameters: ResilienceParameters,
    general_period: Optional[float],
    period_formula: str,
) -> float:
    """Period used during GENERAL phases (cost ``C``, Equation 11)."""
    if general_period is not None:
        return general_period
    return optimal_period(
        parameters.full_checkpoint,
        parameters.platform_mtbf,
        parameters.downtime,
        parameters.full_recovery,
        formula=period_formula,
    )


def _resolve_library_period(
    parameters: ResilienceParameters,
    library_period: Optional[float],
    period_formula: str,
) -> float:
    """Period used during LIBRARY phases (cost ``C_L``, Equation 14)."""
    if library_period is not None:
        return library_period
    if parameters.library_checkpoint <= 0.0:
        return float("nan")
    return optimal_period(
        parameters.library_checkpoint,
        parameters.platform_mtbf,
        parameters.downtime,
        parameters.full_recovery,
        formula=period_formula,
    )


@register_protocol("BiPeriodicCkpt", kind="schedule")
def compile_bi_periodic_schedule(
    parameters: ResilienceParameters,
    workload: ApplicationWorkload,
    *,
    general_period: Optional[float] = None,
    library_period: Optional[float] = None,
    period_formula: str = "paper",
) -> Schedule:
    """Compile bi-periodic checkpointing: one periodic segment per phase.

    Each (non-empty) phase becomes a periodic section with its kind's
    checkpoint cost and period, a trailing checkpoint unless it is the
    application's last phase, and a full downtime + recovery rollback.
    Per-epoch blocks are run-length-compressed, so identical epochs cost one
    repeated run.
    """
    resolved_general = _resolve_general_period(
        parameters, general_period, period_formula
    )
    resolved_library = _resolve_library_period(
        parameters, library_period, period_formula
    )
    rollback = (
        ("downtime", parameters.downtime),
        ("recovery", parameters.full_recovery),
    )
    # Phase indexing mirrors ApplicationWorkload.phase_sequence(): zero
    # -duration phases are skipped, and "last" means the last non-empty
    # phase of the whole application.
    total_phases = len(workload.phase_sequence())
    blocks = []
    index = 0
    for epoch in workload.epochs:
        block = []
        for kind, duration in (
            ("general", epoch.general_time),
            ("library", epoch.library_time),
        ):
            if not duration > 0.0:
                continue
            is_last = index == total_phases - 1
            if kind == "general":
                checkpoint = parameters.full_checkpoint
                period = resolved_general
                enter = EventKind.GENERAL_PHASE_START
                leave = EventKind.GENERAL_PHASE_END
            else:
                checkpoint = parameters.library_checkpoint
                period = resolved_library
                enter = EventKind.LIBRARY_PHASE_START
                leave = EventKind.LIBRARY_PHASE_END
            block.append(
                PeriodicSegment(
                    work=duration,
                    chunk_size=periodic_chunk_size(period, checkpoint, duration),
                    checkpoint_cost=checkpoint,
                    trailing=not is_last,
                    stages=rollback,
                    enter_event=enter,
                    exit_event=leave,
                )
            )
            index += 1
        blocks.append(block)
    return Schedule.from_blocks(blocks)


@register_protocol(
    "BiPeriodicCkpt", kind="simulator", aliases=("bi", "bi-periodic")
)
class BiPeriodicCkptSimulator(ProtocolSimulator):
    """Simulate bi-periodic (incremental) checkpointing.

    Parameters
    ----------
    parameters / workload:
        See :class:`~repro.core.protocols.base.ProtocolSimulator`.
    general_period / library_period:
        Override the per-phase-kind periods; ``None`` uses the optimal
        periods of Equations 11 and 14.
    period_formula:
        Optimal-period approximation used for defaulted periods.
    """

    name = "BiPeriodicCkpt"

    def __init__(
        self,
        parameters: ResilienceParameters,
        workload: ApplicationWorkload,
        *,
        general_period: Optional[float] = None,
        library_period: Optional[float] = None,
        period_formula: str = "paper",
        failure_model: Optional[FailureModel] = None,
        record_events: bool = False,
        max_slowdown: float = 1e4,
        storage: Optional[StorageStack] = None,
    ) -> None:
        super().__init__(
            parameters,
            workload,
            failure_model=failure_model,
            record_events=record_events,
            max_slowdown=max_slowdown,
            storage=storage,
        )
        self._general_period = general_period
        self._library_period = library_period
        self._period_formula = period_formula

    # ------------------------------------------------------------------ #
    def general_period(self) -> float:
        """Period used during GENERAL phases (cost ``C``)."""
        return _resolve_general_period(
            self._params, self._general_period, self._period_formula
        )

    def library_period(self) -> float:
        """Period used during LIBRARY phases (cost ``C_L``, Equation 14)."""
        return _resolve_library_period(
            self._params, self._library_period, self._period_formula
        )

    def _metadata(self) -> dict:
        return {
            "general_period": self.general_period(),
            "library_period": self.library_period(),
            "period_formula": self._period_formula,
        }

    def compile_schedule(self) -> Schedule:
        return compile_bi_periodic_schedule(
            self._params,
            self._workload,
            general_period=self._general_period,
            library_period=self._library_period,
            period_formula=self._period_formula,
        )


@register_protocol("BiPeriodicCkpt", kind="vectorized")
class BiPeriodicCkptVectorized:
    """Across-trials engine for BiPeriodicCkpt, any vectorized law.

    Executes the same compiled schedule as :class:`BiPeriodicCkptSimulator`
    through the phased engine.  Accepts the same knobs and reproduces the
    event backend bit for bit, trial for trial, under every registry-flagged
    vectorized law (exponential, Weibull, log-normal, trace replay).
    """

    name = "BiPeriodicCkpt"

    def __init__(
        self,
        parameters: ResilienceParameters,
        workload: ApplicationWorkload,
        *,
        general_period: Optional[float] = None,
        library_period: Optional[float] = None,
        period_formula: str = "paper",
        failure_model: Optional[FailureModel] = None,
        max_slowdown: float = 1e4,
    ) -> None:
        total = workload.total_time
        self._engine = VectorizedPhasedSimulator(
            protocol=self.name,
            application_time=total,
            segments=compile_bi_periodic_schedule(
                parameters,
                workload,
                general_period=general_period,
                library_period=library_period,
                period_formula=period_formula,
            ),
            failure_model=vectorized_failure_model_or_raise(
                failure_model, parameters.platform_mtbf, protocol=self.name
            ),
            max_makespan=float(max_slowdown) * total,
        )

    def run_trials(self, runs: int, seed: Optional[int] = None):
        """Simulate ``runs`` trials; see :class:`VectorizedPhasedSimulator`."""
        return self._engine.run_trials(runs, seed)

    def run_trial_range(self, start: int, stop: int, seed: Optional[int] = None):
        """Simulate trials ``[start, stop)`` of a campaign (shard execution)."""
        return self._engine.run_trial_range(start, stop, seed)
