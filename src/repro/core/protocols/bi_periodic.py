"""BiPeriodicCkpt simulator (Section IV-C / V, Figure 6).

Incremental-checkpoint-aware periodic checkpointing: during LIBRARY phases
only the LIBRARY dataset is modified, so checkpoints there cost ``C_L`` and
use their own (longer-work, cheaper-checkpoint) optimal period; GENERAL
phases keep full checkpoints of cost ``C``.  Recovery always reloads the full
dataset (cost ``R``).

Modelling note: when the protection mode switches at a phase boundary, the
simulator closes the current phase with a checkpoint (of that phase's cost)
unless the phase is the last one of the application.  This keeps rollbacks
within a single phase and mirrors what an actual runtime does when changing
checkpoint content; for the workloads of the paper (phases several orders of
magnitude longer than a checkpoint) the extra cost is negligible, and the
excellent model/simulation agreement of the validation experiments confirms
it.
"""

from __future__ import annotations

from typing import Optional

from repro.application.workload import ApplicationWorkload
from repro.core.analytical.young_daly import optimal_period
from repro.core.parameters import ResilienceParameters
from repro.core.protocols.base import ProtocolSimulator
from repro.core.registry import register_protocol
from repro.failures.base import FailureModel
from repro.failures.timeline import FailureTimeline
from repro.simulation.events import EventKind
from repro.simulation.trace import TraceRecorder
from repro.simulation.vectorized import (
    PeriodicSegment,
    VectorizedPhasedSimulator,
    periodic_chunk_size,
    vectorized_failure_model_or_raise,
)

__all__ = ["BiPeriodicCkptSimulator", "BiPeriodicCkptVectorized"]


@register_protocol(
    "BiPeriodicCkpt", kind="simulator", aliases=("bi", "bi-periodic")
)
class BiPeriodicCkptSimulator(ProtocolSimulator):
    """Simulate bi-periodic (incremental) checkpointing.

    Parameters
    ----------
    parameters / workload:
        See :class:`~repro.core.protocols.base.ProtocolSimulator`.
    general_period / library_period:
        Override the per-phase-kind periods; ``None`` uses the optimal
        periods of Equations 11 and 14.
    period_formula:
        Optimal-period approximation used for defaulted periods.
    """

    name = "BiPeriodicCkpt"

    def __init__(
        self,
        parameters: ResilienceParameters,
        workload: ApplicationWorkload,
        *,
        general_period: Optional[float] = None,
        library_period: Optional[float] = None,
        period_formula: str = "paper",
        failure_model: Optional[FailureModel] = None,
        record_events: bool = False,
        max_slowdown: float = 1e4,
    ) -> None:
        super().__init__(
            parameters,
            workload,
            failure_model=failure_model,
            record_events=record_events,
            max_slowdown=max_slowdown,
        )
        self._general_period = general_period
        self._library_period = library_period
        self._period_formula = period_formula

    # ------------------------------------------------------------------ #
    def general_period(self) -> float:
        """Period used during GENERAL phases (cost ``C``)."""
        if self._general_period is not None:
            return self._general_period
        params = self._params
        return optimal_period(
            params.full_checkpoint,
            params.platform_mtbf,
            params.downtime,
            params.full_recovery,
            formula=self._period_formula,
        )

    def library_period(self) -> float:
        """Period used during LIBRARY phases (cost ``C_L``, Equation 14)."""
        if self._library_period is not None:
            return self._library_period
        params = self._params
        if params.library_checkpoint <= 0.0:
            return float("nan")
        return optimal_period(
            params.library_checkpoint,
            params.platform_mtbf,
            params.downtime,
            params.full_recovery,
            formula=self._period_formula,
        )

    def _metadata(self) -> dict:
        return {
            "general_period": self.general_period(),
            "library_period": self.library_period(),
            "period_formula": self._period_formula,
        }

    # ------------------------------------------------------------------ #
    def _run(self, timeline: FailureTimeline, recorder: TraceRecorder) -> float:
        params = self._params
        phases = self._workload.phase_sequence()
        time = 0.0
        for index, (kind, duration, _abft_capable) in enumerate(phases):
            is_last = index == len(phases) - 1
            if kind == "general":
                recorder.record(time, EventKind.GENERAL_PHASE_START)
                time = self._periodic_section(
                    time,
                    duration,
                    timeline,
                    recorder,
                    checkpoint_cost=params.full_checkpoint,
                    recovery_cost=params.full_recovery,
                    period=self.general_period(),
                    trailing_checkpoint=not is_last,
                )
                recorder.record(time, EventKind.GENERAL_PHASE_END)
            else:
                recorder.record(time, EventKind.LIBRARY_PHASE_START)
                time = self._periodic_section(
                    time,
                    duration,
                    timeline,
                    recorder,
                    checkpoint_cost=params.library_checkpoint,
                    recovery_cost=params.full_recovery,
                    period=self.library_period(),
                    trailing_checkpoint=not is_last,
                )
                recorder.record(time, EventKind.LIBRARY_PHASE_END)
        return time


@register_protocol("BiPeriodicCkpt", kind="vectorized")
class BiPeriodicCkptVectorized:
    """Across-trials engine for BiPeriodicCkpt, any vectorized law.

    The protocol's phase schedule is deterministic -- one periodically
    checkpointed section per phase, with the per-kind checkpoint cost and
    period, closed by a trailing checkpoint on every phase but the last --
    so it lowers directly onto :class:`VectorizedPhasedSimulator`.  Accepts
    the same knobs as :class:`BiPeriodicCkptSimulator` and reproduces it
    bit for bit, trial for trial, under every registry-flagged vectorized
    law (exponential, Weibull, log-normal).
    """

    name = "BiPeriodicCkpt"

    def __init__(
        self,
        parameters: ResilienceParameters,
        workload: ApplicationWorkload,
        *,
        general_period: Optional[float] = None,
        library_period: Optional[float] = None,
        period_formula: str = "paper",
        failure_model: Optional[FailureModel] = None,
        max_slowdown: float = 1e4,
    ) -> None:
        # The event simulator owns the period derivation (Equations 11 and
        # 14, including the library-checkpoint <= 0 degenerate case);
        # reusing it keeps the two backends impossible to desynchronise.
        reference = BiPeriodicCkptSimulator(
            parameters,
            workload,
            general_period=general_period,
            library_period=library_period,
            period_formula=period_formula,
            max_slowdown=max_slowdown,
        )
        rollback = (
            ("downtime", parameters.downtime),
            ("recovery", parameters.full_recovery),
        )
        phases = workload.phase_sequence()
        segments = []
        for index, (kind, duration, _abft_capable) in enumerate(phases):
            is_last = index == len(phases) - 1
            if kind == "general":
                checkpoint = parameters.full_checkpoint
                period = reference.general_period()
            else:
                checkpoint = parameters.library_checkpoint
                period = reference.library_period()
            segments.append(
                PeriodicSegment(
                    work=duration,
                    chunk_size=periodic_chunk_size(period, checkpoint, duration),
                    checkpoint_cost=checkpoint,
                    trailing=not is_last,
                    stages=rollback,
                )
            )
        total = workload.total_time
        self._engine = VectorizedPhasedSimulator(
            protocol=self.name,
            application_time=total,
            segments=segments,
            failure_model=vectorized_failure_model_or_raise(
                failure_model, parameters.platform_mtbf, protocol=self.name
            ),
            max_makespan=float(max_slowdown) * total,
        )

    def run_trials(self, runs: int, seed: Optional[int] = None):
        """Simulate ``runs`` trials; see :class:`VectorizedPhasedSimulator`."""
        return self._engine.run_trials(runs, seed)
