"""Discrete-event simulations of the fault-tolerance protocols.

These simulators reproduce the behaviour of the protocols without the
first-order approximations of the analytical model: failures may strike
during checkpoints, recoveries, reconstructions and re-executions, several
failures may hit the same period, and every such event is re-executed until
the work completes (paper Section V-A: *"the simulator ... takes these events
into account, accurately reproducing the corresponding costs"*).

* :class:`PurePeriodicCkptSimulator` -- full-memory periodic checkpointing
  with a single period over the whole run.
* :class:`BiPeriodicCkptSimulator` -- incremental checkpoints (cost ``C_L``)
  with their own period during LIBRARY phases.
* :class:`AbftPeriodicCkptSimulator` -- the composite protocol: forced
  partial checkpoints around library calls, ABFT inside them, periodic
  checkpointing outside.
* :class:`NoFaultToleranceSimulator` -- restart-from-scratch baseline.
"""

from repro.core.protocols.base import ProtocolSimulator, SimulationHorizonExceeded
from repro.core.protocols.no_ft import (
    NoFaultToleranceSimulator,
    NoFaultToleranceVectorized,
    compile_no_ft_schedule,
)
from repro.core.protocols.pure_periodic import (
    PurePeriodicCkptSimulator,
    PurePeriodicCkptVectorized,
    compile_pure_periodic_schedule,
)
from repro.core.protocols.bi_periodic import (
    BiPeriodicCkptSimulator,
    BiPeriodicCkptVectorized,
    compile_bi_periodic_schedule,
)
from repro.core.protocols.abft_periodic import (
    AbftPeriodicCkptSimulator,
    AbftPeriodicCkptVectorized,
    compile_abft_periodic_schedule,
)

__all__ = [
    "ProtocolSimulator",
    "SimulationHorizonExceeded",
    "NoFaultToleranceSimulator",
    "NoFaultToleranceVectorized",
    "PurePeriodicCkptSimulator",
    "PurePeriodicCkptVectorized",
    "BiPeriodicCkptSimulator",
    "BiPeriodicCkptVectorized",
    "AbftPeriodicCkptSimulator",
    "AbftPeriodicCkptVectorized",
    "compile_no_ft_schedule",
    "compile_pure_periodic_schedule",
    "compile_bi_periodic_schedule",
    "compile_abft_periodic_schedule",
]
