"""ABFT&PeriodicCkpt composite simulator (Section III / V, Figure 2).

The composite protocol, phase by phase (per epoch):

* **GENERAL phase** -- if the phase is longer than the optimal checkpointing
  period, periodic full-memory checkpoints are taken (the last one doubles
  as the forced entry checkpoint of the upcoming library call); otherwise no
  periodic checkpoint is taken and a *partial* checkpoint of the REMAINDER
  dataset (cost ``C_Rem``) is written when entering the library call.  A
  failure rolls back to the last protected state (previous split checkpoint
  or periodic checkpoint).
* **LIBRARY phase** -- ABFT protects the computation (slowdown ``phi``);
  periodic checkpointing is disabled.  A failure costs a downtime, the reload
  of the REMAINDER partial checkpoint and the ABFT reconstruction of the
  LIBRARY dataset, and loses no work.  A partial checkpoint of the LIBRARY
  dataset (cost ``C_L``) is written when the call returns, completing the
  split checkpoint.
* The Section III-B **safeguard** (optional): a library call whose projected
  ABFT duration is shorter than the optimal checkpointing interval is not
  worth its forced checkpoints and is protected by (incremental) periodic
  checkpointing instead, as are library phases without an ABFT
  implementation.

Modelling note: a failure striking during the *exit* partial checkpoint is
handled as an ABFT failure (reconstruction then re-write of the checkpoint);
the library call has just finished, its dataset and checksums are still in
memory, so reconstruction remains possible.  The alternative (full rollback)
differs only on a window of ``C_L`` per epoch and is indistinguishable at the
scale of the paper's experiments.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.application.epoch import Epoch
from repro.application.workload import ApplicationWorkload
from repro.core.analytical.young_daly import optimal_period
from repro.core.parameters import ResilienceParameters
from repro.core.protocols.base import ProtocolSimulator
from repro.core.registry import register_protocol
from repro.failures.base import FailureModel
from repro.failures.timeline import FailureTimeline
from repro.simulation.events import EventKind
from repro.simulation.trace import TraceRecorder
from repro.simulation.vectorized import (
    AbftSegment,
    AtomicSegment,
    PeriodicSegment,
    VectorizedPhasedSimulator,
    periodic_chunk_size,
    vectorized_failure_model_or_raise,
)

__all__ = ["AbftPeriodicCkptSimulator", "AbftPeriodicCkptVectorized"]


@register_protocol(
    "ABFT&PeriodicCkpt",
    kind="simulator",
    aliases=("abft", "composite", "abft-periodic"),
)
class AbftPeriodicCkptSimulator(ProtocolSimulator):
    """Simulate the ABFT&PeriodicCkpt composite protocol.

    Parameters
    ----------
    parameters / workload:
        See :class:`~repro.core.protocols.base.ProtocolSimulator`.
    general_period:
        Override the periodic-checkpointing period of long GENERAL phases;
        ``None`` uses the optimal period of Equation 11.
    safeguard:
        Enable the Section III-B safeguard mechanism (off by default, like in
        the analytical model).
    period_formula:
        Optimal-period approximation used for defaulted periods.
    """

    name = "ABFT&PeriodicCkpt"

    def __init__(
        self,
        parameters: ResilienceParameters,
        workload: ApplicationWorkload,
        *,
        general_period: Optional[float] = None,
        safeguard: bool = False,
        period_formula: str = "paper",
        failure_model: Optional[FailureModel] = None,
        record_events: bool = False,
        max_slowdown: float = 1e4,
    ) -> None:
        super().__init__(
            parameters,
            workload,
            failure_model=failure_model,
            record_events=record_events,
            max_slowdown=max_slowdown,
        )
        self._general_period = general_period
        self._safeguard = bool(safeguard)
        self._period_formula = period_formula

    # ------------------------------------------------------------------ #
    def general_period(self) -> float:
        """Periodic-checkpointing period used in long GENERAL phases."""
        if self._general_period is not None:
            return self._general_period
        params = self._params
        return optimal_period(
            params.full_checkpoint,
            params.platform_mtbf,
            params.downtime,
            params.full_recovery,
            formula=self._period_formula,
        )

    def library_fallback_period(self) -> float:
        """Period used when a LIBRARY phase falls back to checkpointing."""
        params = self._params
        if params.library_checkpoint <= 0.0:
            return float("nan")
        return optimal_period(
            params.library_checkpoint,
            params.platform_mtbf,
            params.downtime,
            params.full_recovery,
            formula=self._period_formula,
        )

    @property
    def safeguard(self) -> bool:
        """Whether the Section III-B safeguard is enabled."""
        return self._safeguard

    def _library_uses_abft(self, epoch: Epoch) -> bool:
        """Decide whether ABFT protects the LIBRARY phase of ``epoch``."""
        params = self._params
        if not epoch.abft_capable or epoch.library_time <= 0.0:
            return False
        if not self._safeguard:
            return True
        projected = params.phi * epoch.library_time + params.library_checkpoint
        threshold = self.general_period()
        if math.isnan(threshold):
            return True
        return projected >= threshold

    def _metadata(self) -> dict:
        return {
            "general_period": self.general_period(),
            "safeguard": self._safeguard,
            "period_formula": self._period_formula,
        }

    # ------------------------------------------------------------------ #
    def _run(self, timeline: FailureTimeline, recorder: TraceRecorder) -> float:
        params = self._params
        time = 0.0
        general_period = self.general_period()
        for epoch in self._workload.epochs:
            # ---- GENERAL phase ---------------------------------------- #
            recorder.record(time, EventKind.GENERAL_PHASE_START)
            general_time = epoch.general_time
            use_periodic = (
                not math.isnan(general_period) and general_time >= general_period
            )
            if use_periodic:
                # Periodic checkpointing; the trailing checkpoint doubles as
                # the forced entry checkpoint of the library call.
                time = self._periodic_section(
                    time,
                    general_time,
                    timeline,
                    recorder,
                    checkpoint_cost=params.full_checkpoint,
                    recovery_cost=params.full_recovery,
                    period=general_period,
                    trailing_checkpoint=True,
                )
            else:
                # Short phase: execute unprotected, then write the partial
                # entry checkpoint of the REMAINDER dataset.
                time = self._unprotected_section(
                    time,
                    general_time,
                    timeline,
                    recorder,
                    recovery_cost=params.full_recovery,
                    checkpoint_cost=params.remainder_checkpoint,
                )
            recorder.record(time, EventKind.GENERAL_PHASE_END)

            # ---- LIBRARY phase ----------------------------------------- #
            if epoch.library_time <= 0.0:
                continue
            if self._library_uses_abft(epoch):
                time = self._abft_section(
                    time,
                    epoch.library_time,
                    timeline,
                    recorder,
                    exit_checkpoint_cost=params.library_checkpoint,
                )
            else:
                recorder.record(time, EventKind.LIBRARY_PHASE_START)
                time = self._periodic_section(
                    time,
                    epoch.library_time,
                    timeline,
                    recorder,
                    checkpoint_cost=params.library_checkpoint,
                    recovery_cost=params.full_recovery,
                    period=self.library_fallback_period(),
                    trailing_checkpoint=True,
                )
                recorder.record(time, EventKind.LIBRARY_PHASE_END)
        return time


@register_protocol("ABFT&PeriodicCkpt", kind="vectorized")
class AbftPeriodicCkptVectorized:
    """Across-trials engine for the composite protocol, any vectorized law.

    The composite's epoch schedule is deterministic -- periodic or atomic
    GENERAL protection chosen by comparing the phase length to the optimal
    period, ABFT (plus its exit partial checkpoint) or fallback periodic
    checkpointing for the LIBRARY phase, decided per epoch by the same
    safeguard rule as the event simulator -- so it lowers directly onto
    :class:`VectorizedPhasedSimulator`.  Accepts the same knobs as
    :class:`AbftPeriodicCkptSimulator` and reproduces it bit for bit, trial
    for trial, under every registry-flagged vectorized law (exponential,
    Weibull, log-normal).
    """

    name = "ABFT&PeriodicCkpt"

    def __init__(
        self,
        parameters: ResilienceParameters,
        workload: ApplicationWorkload,
        *,
        general_period: Optional[float] = None,
        safeguard: bool = False,
        period_formula: str = "paper",
        failure_model: Optional[FailureModel] = None,
        max_slowdown: float = 1e4,
    ) -> None:
        # The event simulator owns the period derivation and the
        # ABFT-vs-fallback decision (Section III-B safeguard); reusing it
        # keeps the two backends impossible to desynchronise.
        reference = AbftPeriodicCkptSimulator(
            parameters,
            workload,
            general_period=general_period,
            safeguard=safeguard,
            period_formula=period_formula,
            max_slowdown=max_slowdown,
        )
        params = parameters
        rollback = (
            ("downtime", params.downtime),
            ("recovery", params.full_recovery),
        )
        abft_stages = (
            ("downtime", params.downtime),
            ("recovery", params.remainder_recovery_cost),
            ("abft_recovery", params.abft_reconstruction),
        )
        period = reference.general_period()
        segments = []
        for epoch in workload.epochs:
            general_time = epoch.general_time
            use_periodic = (
                not math.isnan(period) and general_time >= period
            )
            if use_periodic:
                # Periodic checkpointing; the trailing checkpoint doubles
                # as the forced entry checkpoint of the library call.
                segments.append(
                    PeriodicSegment(
                        work=general_time,
                        chunk_size=periodic_chunk_size(
                            period, params.full_checkpoint, general_time
                        ),
                        checkpoint_cost=params.full_checkpoint,
                        trailing=True,
                        stages=rollback,
                    )
                )
            else:
                # Short phase: execute unprotected, then write the partial
                # entry checkpoint of the REMAINDER dataset.
                segments.append(
                    AtomicSegment(
                        work=general_time,
                        checkpoint_cost=params.remainder_checkpoint,
                        stages=rollback,
                    )
                )
            if epoch.library_time <= 0.0:
                continue
            if reference._library_uses_abft(epoch):
                segments.append(
                    AbftSegment(
                        work=epoch.library_time,
                        phi=params.phi,
                        stages=abft_stages,
                    )
                )
                # The exit partial checkpoint of the LIBRARY dataset; a
                # failure during the write is an ABFT failure (the dataset
                # is still reconstructible) and the write is redone.
                if params.library_checkpoint > 0.0:
                    segments.append(
                        AtomicSegment(
                            work=0.0,
                            checkpoint_cost=params.library_checkpoint,
                            stages=abft_stages,
                        )
                    )
            else:
                fallback = reference.library_fallback_period()
                segments.append(
                    PeriodicSegment(
                        work=epoch.library_time,
                        chunk_size=periodic_chunk_size(
                            fallback, params.library_checkpoint, epoch.library_time
                        ),
                        checkpoint_cost=params.library_checkpoint,
                        trailing=True,
                        stages=rollback,
                    )
                )
        total = workload.total_time
        self._engine = VectorizedPhasedSimulator(
            protocol=self.name,
            application_time=total,
            segments=segments,
            failure_model=vectorized_failure_model_or_raise(
                failure_model, params.platform_mtbf, protocol=self.name
            ),
            max_makespan=float(max_slowdown) * total,
        )

    def run_trials(self, runs: int, seed: Optional[int] = None):
        """Simulate ``runs`` trials; see :class:`VectorizedPhasedSimulator`."""
        return self._engine.run_trials(runs, seed)
