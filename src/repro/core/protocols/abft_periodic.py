"""ABFT&PeriodicCkpt composite protocol (Section III / V, Figure 2).

The composite protocol, phase by phase (per epoch):

* **GENERAL phase** -- if the phase is longer than the optimal checkpointing
  period, periodic full-memory checkpoints are taken (the last one doubles
  as the forced entry checkpoint of the upcoming library call); otherwise no
  periodic checkpoint is taken and a *partial* checkpoint of the REMAINDER
  dataset (cost ``C_Rem``) is written when entering the library call.  A
  failure rolls back to the last protected state (previous split checkpoint
  or periodic checkpoint).
* **LIBRARY phase** -- ABFT protects the computation (slowdown ``phi``);
  periodic checkpointing is disabled.  A failure costs a downtime, the reload
  of the REMAINDER partial checkpoint and the ABFT reconstruction of the
  LIBRARY dataset, and loses no work.  A partial checkpoint of the LIBRARY
  dataset (cost ``C_L``) is written when the call returns, completing the
  split checkpoint.
* The Section III-B **safeguard** (optional): a library call whose projected
  ABFT duration is shorter than the optimal checkpointing interval is not
  worth its forced checkpoints and is protected by (incremental) periodic
  checkpointing instead, as are library phases without an ABFT
  implementation.

The protocol compiles to per-epoch segment blocks (periodic or atomic
GENERAL protection chosen by comparing the phase length to the optimal
period; an ABFT segment with its exit partial checkpoint, or a fallback
periodic section, for the LIBRARY phase); both Monte-Carlo backends execute
the compiled description, and identical epochs compress into one repeated
run.

Modelling note: a failure striking during the *exit* partial checkpoint is
handled as an ABFT failure (reconstruction then re-write of the checkpoint);
the library call has just finished, its dataset and checksums are still in
memory, so reconstruction remains possible.  The alternative (full rollback)
differs only on a window of ``C_L`` per epoch and is indistinguishable at the
scale of the paper's experiments.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.application.epoch import Epoch
from repro.application.workload import ApplicationWorkload
from repro.core.analytical.young_daly import optimal_period
from repro.checkpointing.stack import StorageStack
from repro.core.parameters import ResilienceParameters
from repro.core.protocols.base import ProtocolSimulator
from repro.core.registry import register_protocol
from repro.failures.base import FailureModel
from repro.simulation.events import EventKind
from repro.simulation.schedule import (
    AbftSegment,
    AtomicSegment,
    PeriodicSegment,
    Schedule,
    periodic_chunk_size,
)
from repro.simulation.vectorized import (
    VectorizedPhasedSimulator,
    vectorized_failure_model_or_raise,
)

__all__ = [
    "AbftPeriodicCkptSimulator",
    "AbftPeriodicCkptVectorized",
    "compile_abft_periodic_schedule",
]


def _resolve_general_period(
    parameters: ResilienceParameters,
    general_period: Optional[float],
    period_formula: str,
) -> float:
    """Periodic-checkpointing period used in long GENERAL phases."""
    if general_period is not None:
        return general_period
    return optimal_period(
        parameters.full_checkpoint,
        parameters.platform_mtbf,
        parameters.downtime,
        parameters.full_recovery,
        formula=period_formula,
    )


def _library_fallback_period(
    parameters: ResilienceParameters, period_formula: str
) -> float:
    """Period used when a LIBRARY phase falls back to checkpointing."""
    if parameters.library_checkpoint <= 0.0:
        return float("nan")
    return optimal_period(
        parameters.library_checkpoint,
        parameters.platform_mtbf,
        parameters.downtime,
        parameters.full_recovery,
        formula=period_formula,
    )


def _library_uses_abft(
    parameters: ResilienceParameters,
    epoch: Epoch,
    *,
    safeguard: bool,
    general_period: float,
) -> bool:
    """Decide whether ABFT protects the LIBRARY phase of ``epoch``."""
    if not epoch.abft_capable or epoch.library_time <= 0.0:
        return False
    if not safeguard:
        return True
    projected = parameters.phi * epoch.library_time + parameters.library_checkpoint
    if math.isnan(general_period):
        return True
    return projected >= general_period


@register_protocol("ABFT&PeriodicCkpt", kind="schedule")
def compile_abft_periodic_schedule(
    parameters: ResilienceParameters,
    workload: ApplicationWorkload,
    *,
    general_period: Optional[float] = None,
    safeguard: bool = False,
    period_formula: str = "paper",
) -> Schedule:
    """Compile the composite protocol: per-epoch GENERAL + LIBRARY blocks.

    Long GENERAL phases become periodic sections whose trailing checkpoint
    doubles as the library call's forced entry checkpoint; short ones become
    atomic segments closed by the partial REMAINDER checkpoint.  LIBRARY
    phases become ABFT segments (with the exit partial checkpoint folded
    in) or, per the safeguard rule, fallback periodic sections.  Per-epoch
    blocks are run-length-compressed, so identical epochs cost one repeated
    run.
    """
    params = parameters
    resolved_period = _resolve_general_period(params, general_period, period_formula)
    rollback = (
        ("downtime", params.downtime),
        ("recovery", params.full_recovery),
    )
    abft_stages = (
        ("downtime", params.downtime),
        ("recovery", params.remainder_recovery_cost),
        ("abft_recovery", params.abft_reconstruction),
    )
    blocks = []
    for epoch in workload.epochs:
        block = []
        # ---- GENERAL phase -------------------------------------------- #
        general_time = epoch.general_time
        use_periodic = (
            not math.isnan(resolved_period) and general_time >= resolved_period
        )
        if use_periodic:
            # Periodic checkpointing; the trailing checkpoint doubles as
            # the forced entry checkpoint of the library call.
            block.append(
                PeriodicSegment(
                    work=general_time,
                    chunk_size=periodic_chunk_size(
                        resolved_period, params.full_checkpoint, general_time
                    ),
                    checkpoint_cost=params.full_checkpoint,
                    trailing=True,
                    stages=rollback,
                    enter_event=EventKind.GENERAL_PHASE_START,
                    exit_event=EventKind.GENERAL_PHASE_END,
                )
            )
        else:
            # Short phase: execute unprotected, then write the partial
            # entry checkpoint of the REMAINDER dataset.
            block.append(
                AtomicSegment(
                    work=general_time,
                    checkpoint_cost=params.remainder_checkpoint,
                    stages=rollback,
                    enter_event=EventKind.GENERAL_PHASE_START,
                    exit_event=EventKind.GENERAL_PHASE_END,
                )
            )
        # ---- LIBRARY phase -------------------------------------------- #
        if epoch.library_time <= 0.0:
            blocks.append(block)
            continue
        if _library_uses_abft(
            params, epoch, safeguard=safeguard, general_period=resolved_period
        ):
            # The exit partial checkpoint of the LIBRARY dataset is part of
            # the segment; a failure during the write is an ABFT failure
            # (the dataset is still reconstructible) and the write is
            # redone.
            block.append(
                AbftSegment(
                    work=epoch.library_time,
                    phi=params.phi,
                    stages=abft_stages,
                    exit_checkpoint_cost=params.library_checkpoint,
                )
            )
        else:
            block.append(
                PeriodicSegment(
                    work=epoch.library_time,
                    chunk_size=periodic_chunk_size(
                        _library_fallback_period(params, period_formula),
                        params.library_checkpoint,
                        epoch.library_time,
                    ),
                    checkpoint_cost=params.library_checkpoint,
                    trailing=True,
                    stages=rollback,
                    enter_event=EventKind.LIBRARY_PHASE_START,
                    exit_event=EventKind.LIBRARY_PHASE_END,
                )
            )
        blocks.append(block)
    return Schedule.from_blocks(blocks)


@register_protocol(
    "ABFT&PeriodicCkpt",
    kind="simulator",
    aliases=("abft", "composite", "abft-periodic"),
)
class AbftPeriodicCkptSimulator(ProtocolSimulator):
    """Simulate the ABFT&PeriodicCkpt composite protocol.

    Parameters
    ----------
    parameters / workload:
        See :class:`~repro.core.protocols.base.ProtocolSimulator`.
    general_period:
        Override the periodic-checkpointing period of long GENERAL phases;
        ``None`` uses the optimal period of Equation 11.
    safeguard:
        Enable the Section III-B safeguard mechanism (off by default, like in
        the analytical model).
    period_formula:
        Optimal-period approximation used for defaulted periods.
    """

    name = "ABFT&PeriodicCkpt"

    def __init__(
        self,
        parameters: ResilienceParameters,
        workload: ApplicationWorkload,
        *,
        general_period: Optional[float] = None,
        safeguard: bool = False,
        period_formula: str = "paper",
        failure_model: Optional[FailureModel] = None,
        record_events: bool = False,
        max_slowdown: float = 1e4,
        storage: Optional[StorageStack] = None,
    ) -> None:
        super().__init__(
            parameters,
            workload,
            failure_model=failure_model,
            record_events=record_events,
            max_slowdown=max_slowdown,
            storage=storage,
        )
        self._general_period = general_period
        self._safeguard = bool(safeguard)
        self._period_formula = period_formula

    # ------------------------------------------------------------------ #
    def general_period(self) -> float:
        """Periodic-checkpointing period used in long GENERAL phases."""
        return _resolve_general_period(
            self._params, self._general_period, self._period_formula
        )

    def library_fallback_period(self) -> float:
        """Period used when a LIBRARY phase falls back to checkpointing."""
        return _library_fallback_period(self._params, self._period_formula)

    @property
    def safeguard(self) -> bool:
        """Whether the Section III-B safeguard is enabled."""
        return self._safeguard

    def _library_uses_abft(self, epoch: Epoch) -> bool:
        """Decide whether ABFT protects the LIBRARY phase of ``epoch``."""
        return _library_uses_abft(
            self._params,
            epoch,
            safeguard=self._safeguard,
            general_period=self.general_period(),
        )

    def _metadata(self) -> dict:
        return {
            "general_period": self.general_period(),
            "safeguard": self._safeguard,
            "period_formula": self._period_formula,
        }

    def compile_schedule(self) -> Schedule:
        return compile_abft_periodic_schedule(
            self._params,
            self._workload,
            general_period=self._general_period,
            safeguard=self._safeguard,
            period_formula=self._period_formula,
        )


@register_protocol("ABFT&PeriodicCkpt", kind="vectorized")
class AbftPeriodicCkptVectorized:
    """Across-trials engine for the composite protocol, any vectorized law.

    Executes the same compiled schedule as
    :class:`AbftPeriodicCkptSimulator` through the phased engine.  Accepts
    the same knobs (including the Section III-B safeguard) and reproduces
    the event backend bit for bit, trial for trial, under every
    registry-flagged vectorized law (exponential, Weibull, log-normal,
    trace replay).
    """

    name = "ABFT&PeriodicCkpt"

    def __init__(
        self,
        parameters: ResilienceParameters,
        workload: ApplicationWorkload,
        *,
        general_period: Optional[float] = None,
        safeguard: bool = False,
        period_formula: str = "paper",
        failure_model: Optional[FailureModel] = None,
        max_slowdown: float = 1e4,
    ) -> None:
        total = workload.total_time
        self._engine = VectorizedPhasedSimulator(
            protocol=self.name,
            application_time=total,
            segments=compile_abft_periodic_schedule(
                parameters,
                workload,
                general_period=general_period,
                safeguard=safeguard,
                period_formula=period_formula,
            ),
            failure_model=vectorized_failure_model_or_raise(
                failure_model, parameters.platform_mtbf, protocol=self.name
            ),
            max_makespan=float(max_slowdown) * total,
        )

    def run_trials(self, runs: int, seed: Optional[int] = None):
        """Simulate ``runs`` trials; see :class:`VectorizedPhasedSimulator`."""
        return self._engine.run_trials(runs, seed)

    def run_trial_range(self, start: int, stop: int, seed: Optional[int] = None):
        """Simulate trials ``[start, stop)`` of a campaign (shard execution)."""
        return self._engine.run_trial_range(start, stop, seed)
