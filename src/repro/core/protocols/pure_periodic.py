"""PurePeriodicCkpt protocol (Section IV-C / V, Figure 5).

The whole application -- GENERAL and LIBRARY phases alike -- is protected by
full-memory coordinated checkpoints taken at a single fixed period.  The
protocol is oblivious of the phase structure, exactly like the strategy it
models: it compiles to one periodically checkpointed segment covering the
total fault-free work, and both Monte-Carlo backends execute that compiled
description.
"""

from __future__ import annotations

from typing import Optional

from repro.application.workload import ApplicationWorkload
from repro.core.analytical.young_daly import optimal_period
from repro.checkpointing.stack import StorageStack
from repro.core.parameters import ResilienceParameters
from repro.core.protocols.base import ProtocolSimulator
from repro.core.registry import register_protocol
from repro.failures.base import FailureModel
from repro.simulation.schedule import (
    PeriodicSegment,
    Schedule,
    periodic_chunk_size,
)
from repro.simulation.vectorized import (
    VectorizedPhasedSimulator,
    vectorized_failure_model_or_raise,
)

__all__ = [
    "PurePeriodicCkptSimulator",
    "PurePeriodicCkptVectorized",
    "compile_pure_periodic_schedule",
]


def _resolve_period(
    parameters: ResilienceParameters,
    period: Optional[float],
    period_formula: str,
) -> float:
    """The checkpointing period actually used: explicit, or Equation 11."""
    if period is not None:
        return period
    return optimal_period(
        parameters.full_checkpoint,
        parameters.platform_mtbf,
        parameters.downtime,
        parameters.full_recovery,
        formula=period_formula,
    )


@register_protocol("PurePeriodicCkpt", kind="schedule")
def compile_pure_periodic_schedule(
    parameters: ResilienceParameters,
    workload: ApplicationWorkload,
    *,
    period: Optional[float] = None,
    period_formula: str = "paper",
) -> Schedule:
    """Compile pure periodic checkpointing: one checkpointed segment.

    The total fault-free work forms a single periodic section at the given
    (or optimal) period, with no trailing checkpoint after the final chunk
    and a full downtime + recovery rollback on failure.
    """
    resolved = _resolve_period(parameters, period, period_formula)
    total = workload.total_time
    checkpoint = parameters.full_checkpoint
    return Schedule.from_segments(
        (
            PeriodicSegment(
                work=total,
                chunk_size=periodic_chunk_size(resolved, checkpoint, total),
                checkpoint_cost=checkpoint,
                trailing=False,
                stages=(
                    ("downtime", parameters.downtime),
                    ("recovery", parameters.full_recovery),
                ),
            ),
        )
    )


@register_protocol(
    "PurePeriodicCkpt", kind="simulator", aliases=("pure", "pure-periodic")
)
class PurePeriodicCkptSimulator(ProtocolSimulator):
    """Simulate pure periodic checkpointing with a single period.

    Parameters
    ----------
    parameters / workload:
        See :class:`~repro.core.protocols.base.ProtocolSimulator`.
    period:
        Checkpointing period (wall-clock, checkpoint included).  ``None``
        uses the paper's optimal period of Equation 11.
    period_formula:
        Optimal-period approximation used when ``period`` is ``None``.
    """

    name = "PurePeriodicCkpt"

    def __init__(
        self,
        parameters: ResilienceParameters,
        workload: ApplicationWorkload,
        *,
        period: Optional[float] = None,
        period_formula: str = "paper",
        failure_model: Optional[FailureModel] = None,
        record_events: bool = False,
        max_slowdown: float = 1e4,
        storage: Optional[StorageStack] = None,
    ) -> None:
        super().__init__(
            parameters,
            workload,
            failure_model=failure_model,
            record_events=record_events,
            max_slowdown=max_slowdown,
            storage=storage,
        )
        self._explicit_period = period
        self._period_formula = period_formula

    def period(self) -> float:
        """The checkpointing period actually used (seconds)."""
        return _resolve_period(
            self._params, self._explicit_period, self._period_formula
        )

    def _metadata(self) -> dict:
        return {"period": self.period(), "period_formula": self._period_formula}

    def compile_schedule(self) -> Schedule:
        return compile_pure_periodic_schedule(
            self._params,
            self._workload,
            period=self._explicit_period,
            period_formula=self._period_formula,
        )


@register_protocol("PurePeriodicCkpt", kind="vectorized")
class PurePeriodicCkptVectorized:
    """Across-trials engine for PurePeriodicCkpt, any vectorized law.

    Accepts the same protocol knobs as :class:`PurePeriodicCkptSimulator`
    (explicit period or optimal-period formula), compiles the same schedule
    and produces bit-identical per-trial results through the phased engine,
    under every registry-flagged vectorized law (exponential, Weibull,
    log-normal, trace replay).
    """

    name = "PurePeriodicCkpt"

    def __init__(
        self,
        parameters: ResilienceParameters,
        workload: ApplicationWorkload,
        *,
        period: Optional[float] = None,
        period_formula: str = "paper",
        failure_model: Optional[FailureModel] = None,
        max_slowdown: float = 1e4,
    ) -> None:
        total = workload.total_time
        self._engine = VectorizedPhasedSimulator(
            protocol=self.name,
            application_time=total,
            segments=compile_pure_periodic_schedule(
                parameters, workload, period=period, period_formula=period_formula
            ),
            failure_model=vectorized_failure_model_or_raise(
                failure_model, parameters.platform_mtbf, protocol=self.name
            ),
            max_makespan=float(max_slowdown) * total,
        )

    def run_trials(self, runs: int, seed: Optional[int] = None):
        """Simulate ``runs`` trials; see :class:`VectorizedPhasedSimulator`."""
        return self._engine.run_trials(runs, seed)

    def run_trial_range(self, start: int, stop: int, seed: Optional[int] = None):
        """Simulate trials ``[start, stop)`` of a campaign (shard execution)."""
        return self._engine.run_trial_range(start, stop, seed)
