"""PurePeriodicCkpt simulator (Section IV-C / V, Figure 5).

The whole application -- GENERAL and LIBRARY phases alike -- is protected by
full-memory coordinated checkpoints taken at a single fixed period.  The
simulator is oblivious of the phase structure, exactly like the protocol it
models: the total fault-free work is executed as one periodically
checkpointed section.
"""

from __future__ import annotations

from typing import Optional

from repro.application.workload import ApplicationWorkload
from repro.core.analytical.young_daly import optimal_period
from repro.core.parameters import ResilienceParameters
from repro.core.protocols.base import ProtocolSimulator
from repro.core.registry import register_protocol
from repro.failures.base import FailureModel
from repro.failures.timeline import FailureTimeline
from repro.simulation.trace import TraceRecorder
from repro.simulation.vectorized import (
    VectorizedChunkedSimulator,
    periodic_chunk_size,
    vectorized_failure_model_or_raise,
)

__all__ = ["PurePeriodicCkptSimulator", "PurePeriodicCkptVectorized"]


@register_protocol(
    "PurePeriodicCkpt", kind="simulator", aliases=("pure", "pure-periodic")
)
class PurePeriodicCkptSimulator(ProtocolSimulator):
    """Simulate pure periodic checkpointing with a single period.

    Parameters
    ----------
    parameters / workload:
        See :class:`~repro.core.protocols.base.ProtocolSimulator`.
    period:
        Checkpointing period (wall-clock, checkpoint included).  ``None``
        uses the paper's optimal period of Equation 11.
    period_formula:
        Optimal-period approximation used when ``period`` is ``None``.
    """

    name = "PurePeriodicCkpt"

    def __init__(
        self,
        parameters: ResilienceParameters,
        workload: ApplicationWorkload,
        *,
        period: Optional[float] = None,
        period_formula: str = "paper",
        failure_model: Optional[FailureModel] = None,
        record_events: bool = False,
        max_slowdown: float = 1e4,
    ) -> None:
        super().__init__(
            parameters,
            workload,
            failure_model=failure_model,
            record_events=record_events,
            max_slowdown=max_slowdown,
        )
        self._explicit_period = period
        self._period_formula = period_formula

    def period(self) -> float:
        """The checkpointing period actually used (seconds)."""
        if self._explicit_period is not None:
            return self._explicit_period
        params = self._params
        return optimal_period(
            params.full_checkpoint,
            params.platform_mtbf,
            params.downtime,
            params.full_recovery,
            formula=self._period_formula,
        )

    def _metadata(self) -> dict:
        return {"period": self.period(), "period_formula": self._period_formula}

    def _run(self, timeline: FailureTimeline, recorder: TraceRecorder) -> float:
        params = self._params
        return self._periodic_section(
            0.0,
            self._workload.total_time,
            timeline,
            recorder,
            checkpoint_cost=params.full_checkpoint,
            recovery_cost=params.full_recovery,
            period=self.period(),
            trailing_checkpoint=False,
        )


@register_protocol("PurePeriodicCkpt", kind="vectorized")
class PurePeriodicCkptVectorized:
    """Across-trials engine for PurePeriodicCkpt, any vectorized law.

    Accepts the same protocol knobs as :class:`PurePeriodicCkptSimulator`
    (explicit period or optimal-period formula) and produces bit-identical
    per-trial results through the vectorized chunked engine, under every
    registry-flagged vectorized law (exponential, Weibull, log-normal).
    """

    name = "PurePeriodicCkpt"

    def __init__(
        self,
        parameters: ResilienceParameters,
        workload: ApplicationWorkload,
        *,
        period: Optional[float] = None,
        period_formula: str = "paper",
        failure_model: Optional[FailureModel] = None,
        max_slowdown: float = 1e4,
    ) -> None:
        if period is None:
            period = optimal_period(
                parameters.full_checkpoint,
                parameters.platform_mtbf,
                parameters.downtime,
                parameters.full_recovery,
                formula=period_formula,
            )
        total = workload.total_time
        checkpoint = parameters.full_checkpoint
        self._engine = VectorizedChunkedSimulator(
            protocol=self.name,
            application_time=total,
            work=total,
            chunk_size=periodic_chunk_size(period, checkpoint, total),
            checkpoint_cost=checkpoint,
            restart_stages=(
                ("downtime", parameters.downtime),
                ("recovery", parameters.full_recovery),
            ),
            failure_model=vectorized_failure_model_or_raise(
                failure_model, parameters.platform_mtbf, protocol=self.name
            ),
            max_makespan=float(max_slowdown) * total,
        )

    def run_trials(self, runs: int, seed: Optional[int] = None):
        """Simulate ``runs`` trials; see :class:`VectorizedChunkedSimulator`."""
        return self._engine.run_trials(runs, seed)
