"""Waste metric helpers.

The paper's figure of merit is the *waste* (Equation 12):

.. math::

    \\mathrm{WASTE} = 1 - \\frac{T_0}{T^{\\mathrm{final}}}

the fraction of platform time that does not progress the application, due to
the intrinsic overhead of the resilience technique and to failures.
"""

from __future__ import annotations

import math

from repro.utils.validation import require_non_negative, require_positive

__all__ = ["waste_from_times", "waste_to_slowdown", "slowdown_to_waste", "combine_wastes"]


def waste_from_times(application_time: float, final_time: float) -> float:
    """Waste ``1 - T0 / T_final`` (paper Eq. 12).

    ``final_time`` may be ``inf`` (infeasible protection regime), in which
    case the waste is 1.
    """
    application_time = require_positive(application_time, "application_time")
    if math.isinf(final_time):
        return 1.0
    final_time = require_positive(final_time, "final_time")
    if final_time < application_time:
        raise ValueError(
            "final_time cannot be smaller than the fault-free application time "
            f"({final_time} < {application_time})"
        )
    return 1.0 - application_time / final_time


def waste_to_slowdown(waste: float) -> float:
    """Convert a waste into a makespan slowdown ``T_final / T0``."""
    waste = require_non_negative(waste, "waste")
    if waste >= 1.0:
        return math.inf
    return 1.0 / (1.0 - waste)


def slowdown_to_waste(slowdown: float) -> float:
    """Convert a makespan slowdown ``T_final / T0`` into a waste."""
    if slowdown < 1.0:
        raise ValueError(f"slowdown must be >= 1, got {slowdown}")
    if math.isinf(slowdown):
        return 1.0
    return 1.0 - 1.0 / slowdown


def combine_wastes(parts: list[tuple[float, float]]) -> float:
    """Combine per-phase wastes into the application-level waste.

    Parameters
    ----------
    parts:
        List of ``(application_time, final_time)`` pairs, one per phase.

    Notes
    -----
    Waste does not average linearly across phases; the correct combination
    sums the fault-free times and the final times first, which is what this
    helper does.
    """
    if not parts:
        raise ValueError("parts must not be empty")
    total_app = sum(app for app, _ in parts)
    total_final = sum(final for _, final in parts)
    return waste_from_times(total_app, total_final)
