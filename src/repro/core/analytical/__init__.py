"""Closed-form performance models of Section IV.

The models compute, for a given workload and parameter bundle, the expected
final execution time ``T_final``, the waste ``1 - T0 / T_final`` and the
expected number of failures handled during the run.

* :mod:`repro.core.analytical.young_daly` -- optimal checkpoint periods
  (Young's and Daly's classical approximations and the paper's refined
  Equation 11) and the building-block expressions for the expected duration
  of periodically checkpointed work.
* :class:`PurePeriodicCkptModel` -- the fully conservative protocol
  (Section IV-C, Figure 5).
* :class:`BiPeriodicCkptModel` -- the incremental-checkpoint-aware variant
  with one period per phase kind (Section IV-C, Figure 6, Equations 13-14).
* :class:`AbftPeriodicCkptModel` -- the composite ABFT&PeriodicCkpt protocol
  (Section IV-B, Equations 1-11).
* :class:`NoFaultToleranceModel` -- restart-from-scratch baseline, included
  for completeness (not part of the paper's comparison but useful to
  motivate it).
* :mod:`repro.core.analytical.grid` -- vectorised (NumPy broadcast) waste
  evaluation over whole (MTBF, alpha) grids, bit-identical to the scalar
  models; the fast path of :class:`repro.campaign.SweepRunner`.
"""

from repro.core.analytical.young_daly import (
    young_period,
    daly_period,
    paper_optimal_period,
    optimal_period,
    first_order_waste,
    periodic_final_time,
    unprotected_final_time,
)
from repro.core.analytical.base import AnalyticalModel, ModelPrediction
from repro.core.analytical.grid import waste_grid, waste_points
from repro.core.analytical.no_ft import NoFaultToleranceModel
from repro.core.analytical.pure_periodic import PurePeriodicCkptModel
from repro.core.analytical.bi_periodic import BiPeriodicCkptModel
from repro.core.analytical.abft_periodic import AbftPeriodicCkptModel

__all__ = [
    "young_period",
    "daly_period",
    "paper_optimal_period",
    "optimal_period",
    "first_order_waste",
    "periodic_final_time",
    "unprotected_final_time",
    "AnalyticalModel",
    "ModelPrediction",
    "NoFaultToleranceModel",
    "PurePeriodicCkptModel",
    "BiPeriodicCkptModel",
    "AbftPeriodicCkptModel",
    "waste_grid",
    "waste_points",
]
