"""Common interface and result container for the analytical models."""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.application.workload import ApplicationWorkload
from repro.core.parameters import ResilienceParameters
from repro.core.waste import waste_from_times

__all__ = ["ModelPrediction", "AnalyticalModel"]


@dataclass(frozen=True)
class ModelPrediction:
    """Output of an analytical model evaluation.

    Attributes
    ----------
    protocol:
        Name of the protocol the prediction is for.
    application_time:
        Fault-free, protection-free duration ``T0`` (seconds).
    final_time:
        Expected protected duration ``T_final`` (seconds); ``inf`` when the
        protection cannot keep up with the failure rate.
    expected_failures:
        Expected number of failures during the protected execution,
        ``T_final / mu``.
    details:
        Model-specific intermediate values (periods used, per-phase times,
        ...), useful for reporting and debugging.
    """

    protocol: str
    application_time: float
    final_time: float
    expected_failures: float
    details: Mapping[str, Any] = field(default_factory=dict)

    @property
    def waste(self) -> float:
        """Waste ``1 - T0 / T_final`` (Equation 12)."""
        return waste_from_times(self.application_time, self.final_time)

    @property
    def slowdown(self) -> float:
        """``T_final / T0``; ``inf`` in the infeasible regime."""
        if math.isinf(self.final_time):
            return math.inf
        return self.final_time / self.application_time

    @property
    def feasible(self) -> bool:
        """False when the model predicts the execution never completes."""
        return math.isfinite(self.final_time)


class AnalyticalModel(abc.ABC):
    """Base class of the closed-form protocol models.

    Concrete models are constructed from a
    :class:`~repro.core.parameters.ResilienceParameters` bundle and evaluate
    an :class:`~repro.application.workload.ApplicationWorkload` into a
    :class:`ModelPrediction`.
    """

    #: Human-readable protocol name (set by subclasses).
    name: str = "analytical-model"

    def __init__(self, parameters: ResilienceParameters) -> None:
        self._parameters = parameters

    @property
    def parameters(self) -> ResilienceParameters:
        """The parameter bundle the model was built with."""
        return self._parameters

    @abc.abstractmethod
    def final_time(self, workload: ApplicationWorkload) -> tuple[float, Mapping[str, Any]]:
        """Expected final time ``T_final`` and model-specific details."""

    def evaluate(self, workload: ApplicationWorkload) -> ModelPrediction:
        """Evaluate the model for ``workload``."""
        final, details = self.final_time(workload)
        mtbf = self._parameters.platform_mtbf
        expected_failures = math.inf if math.isinf(final) else final / mtbf
        return ModelPrediction(
            protocol=self.name,
            application_time=workload.total_time,
            final_time=final,
            expected_failures=expected_failures,
            details=dict(details),
        )

    def waste(self, workload: ApplicationWorkload) -> float:
        """Shortcut returning only the predicted waste."""
        return self.evaluate(workload).waste

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(mtbf={self._parameters.platform_mtbf:.6g}s)"
