"""BiPeriodicCkpt analytical model (Section IV-C, Figure 6, Eq. 13-14).

A semi-conservative approach: the checkpoint runtime recognises library
phases that only modify the LIBRARY dataset and uses *incremental*
checkpoints of cost ``C_L = rho * C`` (with their own optimal period
``P_BPC = sqrt(2 C_L (mu - D - R))``, Equation 14) during those phases, while
GENERAL phases keep full checkpoints of cost ``C`` at the usual optimal
period.  Recovery always reloads the full dataset (cost ``R``), because the
incremental checkpoints must be combined with the last full state at
rollback time.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.application.workload import ApplicationWorkload
from repro.core.analytical.base import AnalyticalModel
from repro.core.analytical.young_daly import optimal_period, periodic_final_time
from repro.core.parameters import ResilienceParameters
from repro.core.registry import register_protocol

__all__ = ["BiPeriodicCkptModel"]


@register_protocol(
    "BiPeriodicCkpt", kind="model", aliases=("bi", "bi-periodic")
)
class BiPeriodicCkptModel(AnalyticalModel):
    """Expected execution time under bi-periodic (incremental) checkpointing.

    Parameters
    ----------
    parameters:
        The resilience parameter bundle.
    general_period / library_period:
        Override the periods used in GENERAL / LIBRARY phases.  ``None``
        (default) uses the optimal periods of Equations 11 and 14.
    period_formula:
        Optimal-period approximation (``"paper"``, ``"young"``, ``"daly"``).
    """

    name = "BiPeriodicCkpt"

    def __init__(
        self,
        parameters: ResilienceParameters,
        *,
        general_period: Optional[float] = None,
        library_period: Optional[float] = None,
        period_formula: str = "paper",
    ) -> None:
        super().__init__(parameters)
        self._general_period = general_period
        self._library_period = library_period
        self._period_formula = period_formula

    # ------------------------------------------------------------------ #
    def general_period(self) -> float:
        """Period used during GENERAL phases (full checkpoints of cost C)."""
        if self._general_period is not None:
            return self._general_period
        params = self.parameters
        return optimal_period(
            params.full_checkpoint,
            params.platform_mtbf,
            params.downtime,
            params.full_recovery,
            formula=self._period_formula,
        )

    def library_period(self) -> float:
        """Period used during LIBRARY phases (Equation 14, cost ``C_L``)."""
        if self._library_period is not None:
            return self._library_period
        params = self.parameters
        if params.library_checkpoint == 0.0:
            # A zero-cost incremental checkpoint degenerates to continuous
            # checkpointing; the periodic formula handles C == 0 separately.
            return 0.0
        return optimal_period(
            params.library_checkpoint,
            params.platform_mtbf,
            params.downtime,
            params.full_recovery,
            formula=self._period_formula,
        )

    # ------------------------------------------------------------------ #
    def final_time(
        self, workload: ApplicationWorkload
    ) -> tuple[float, Mapping[str, Any]]:
        params = self.parameters
        general_period = self.general_period()
        library_period = self.library_period()

        general_time = periodic_final_time(
            work=workload.total_general_time,
            checkpoint_cost=params.full_checkpoint,
            mtbf=params.platform_mtbf,
            downtime=params.downtime,
            recovery_cost=params.full_recovery,
            period=general_period,
        )
        library_time = periodic_final_time(
            work=workload.total_library_time,
            checkpoint_cost=params.library_checkpoint,
            mtbf=params.platform_mtbf,
            downtime=params.downtime,
            recovery_cost=params.full_recovery,
            period=library_period if params.library_checkpoint > 0 else None,
        )
        details = {
            "general_period": general_period,
            "library_period": library_period,
            "general_final_time": general_time,
            "library_final_time": library_time,
            "general_checkpoint_cost": params.full_checkpoint,
            "library_checkpoint_cost": params.library_checkpoint,
            "period_formula": self._period_formula,
        }
        return general_time + library_time, details
