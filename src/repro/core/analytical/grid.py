"""Vectorised waste evaluation over (MTBF, alpha) grids.

The heatmaps of Figure 7 evaluate the three analytical models at every point
of an MTBF x alpha grid.  The scalar models in this package do that one point
at a time; for a full-resolution grid (hundreds of points, three protocols)
the pure-Python call overhead dominates.  This module evaluates whole grids
with NumPy broadcasting instead, as the fast path used by
:class:`repro.campaign.SweepRunner` when no simulation is requested.

Every arithmetic step mirrors the scalar implementations operation for
operation (:mod:`repro.core.analytical.young_daly` and the three model
classes), so the vectorised waste is bit-identical to
``model.waste(workload)`` for single-epoch workloads -- the regression tests
assert exact equality, not closeness.

Scope: single-epoch, ABFT-capable workloads evaluated at the models' default
settings (optimal paper periods, no safeguard), which is exactly the Figure 7
scenario.  Multi-epoch workloads, explicit periods or the safeguard must go
through the scalar models.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.core.parameters import ResilienceParameters

__all__ = ["GRID_PROTOCOLS", "waste_points", "waste_grid"]

#: Protocols the vectorised evaluator supports, in paper order.
GRID_PROTOCOLS: tuple[str, ...] = (
    "PurePeriodicCkpt",
    "BiPeriodicCkpt",
    "ABFT&PeriodicCkpt",
)


def _optimal_period(
    checkpoint: float, mu: np.ndarray, downtime: float, recovery: float
) -> np.ndarray:
    """Equation 11, ``sqrt(2 C (mu - D - R))``; NaN where infeasible."""
    slack = mu - downtime - recovery
    with np.errstate(invalid="ignore"):
        period = np.sqrt(2.0 * checkpoint * slack)
    return np.where(slack > 0.0, period, np.nan)


def _efficiency(
    period: np.ndarray,
    checkpoint: float,
    mu: np.ndarray,
    downtime: float,
    recovery: float,
) -> np.ndarray:
    """The useful fraction ``X`` of Equation 10; 0 where infeasible."""
    with np.errstate(invalid="ignore", divide="ignore"):
        fault_free = 1.0 - checkpoint / period
        failure_factor = 1.0 - (downtime + recovery + period / 2.0) / mu
        efficiency = fault_free * failure_factor
    with np.errstate(invalid="ignore"):
        infeasible = (
            np.isnan(period) | (period <= checkpoint) | (failure_factor <= 0.0)
        )
    return np.where(infeasible, 0.0, efficiency)


def _periodic_final_time(
    work: np.ndarray,
    checkpoint: float,
    mu: np.ndarray,
    downtime: float,
    recovery: float,
    period: np.ndarray | None,
) -> np.ndarray:
    """Vectorised Equation 10 (``young_daly.periodic_final_time``)."""
    work = np.asarray(work, dtype=float)
    if checkpoint == 0.0:
        failure_factor = 1.0 - (downtime + recovery) / mu
        with np.errstate(divide="ignore", invalid="ignore"):
            final = work / np.where(failure_factor > 0.0, failure_factor, 1.0)
        final = np.where(failure_factor > 0.0, final, np.inf)
    else:
        if period is None:
            period = _optimal_period(checkpoint, mu, downtime, recovery)
        efficiency = _efficiency(period, checkpoint, mu, downtime, recovery)
        with np.errstate(divide="ignore", invalid="ignore"):
            final = work / np.where(efficiency > 0.0, efficiency, 1.0)
        final = np.where(efficiency > 0.0, final, np.inf)
    return np.where(work == 0.0, 0.0, final)


def _unprotected_final_time(
    work_and_overhead: np.ndarray,
    mu: np.ndarray,
    downtime: float,
    recovery: float,
) -> np.ndarray:
    """Vectorised Equation 9 (``young_daly.unprotected_final_time``)."""
    work_and_overhead = np.asarray(work_and_overhead, dtype=float)
    denominator = 1.0 - (downtime + recovery + work_and_overhead / 2.0) / mu
    with np.errstate(divide="ignore", invalid="ignore"):
        final = work_and_overhead / np.where(denominator > 0.0, denominator, 1.0)
    final = np.where(denominator > 0.0, final, np.inf)
    return np.where(work_and_overhead == 0.0, 0.0, final)


def _waste(application_time: np.ndarray, final_time: np.ndarray) -> np.ndarray:
    """Equation 12, ``1 - T0 / T_final``; exactly 1 where ``T_final`` is inf."""
    with np.errstate(invalid="ignore"):
        return 1.0 - application_time / final_time


def waste_points(
    parameters: ResilienceParameters,
    application_time: float,
    mtbf: np.ndarray,
    alpha: np.ndarray,
    protocols: Sequence[str] = GRID_PROTOCOLS,
) -> Dict[str, np.ndarray]:
    """Waste of each protocol at pairwise ``(mtbf, alpha)`` points.

    Parameters
    ----------
    parameters:
        Parameter bundle; its ``platform_mtbf`` is ignored in favour of the
        ``mtbf`` array, everything else (``C``, ``R``, ``D``, ``rho``,
        ``phi``, ``Recons_ABFT``) is taken as-is.
    application_time:
        Fault-free duration ``T0`` of the single-epoch workload, seconds.
    mtbf / alpha:
        Broadcastable arrays of platform MTBFs (seconds) and library-time
        ratios.
    protocols:
        Subset of :data:`GRID_PROTOCOLS` to evaluate.

    Returns
    -------
    dict
        Protocol name to waste array (the broadcast shape of the inputs).
    """
    unknown = set(protocols) - set(GRID_PROTOCOLS)
    if unknown:
        raise ValueError(f"unknown protocols {sorted(unknown)}")
    mu, a = np.broadcast_arrays(
        np.asarray(mtbf, dtype=float), np.asarray(alpha, dtype=float)
    )
    # Phase durations exactly as ``Epoch.from_duration`` derives them, so the
    # floating-point values (including T0 = T_G + T_L) match the scalar path.
    library_time = a * application_time
    general_time = application_time - library_time
    total_time = general_time + library_time

    checkpoint = parameters.full_checkpoint
    recovery = parameters.full_recovery
    downtime = parameters.downtime
    library_checkpoint = parameters.library_checkpoint
    remainder_checkpoint = parameters.remainder_checkpoint

    wastes: Dict[str, np.ndarray] = {}
    for name in protocols:
        if name == "PurePeriodicCkpt":
            period = _optimal_period(checkpoint, mu, downtime, recovery)
            final = _periodic_final_time(
                total_time, checkpoint, mu, downtime, recovery, period
            )
        elif name == "BiPeriodicCkpt":
            general_period = _optimal_period(checkpoint, mu, downtime, recovery)
            general_final = _periodic_final_time(
                general_time, checkpoint, mu, downtime, recovery, general_period
            )
            library_period = (
                _optimal_period(library_checkpoint, mu, downtime, recovery)
                if library_checkpoint > 0.0
                else None
            )
            library_final = _periodic_final_time(
                library_time,
                library_checkpoint,
                mu,
                downtime,
                recovery,
                library_period,
            )
            final = general_final + library_final
        else:  # ABFT&PeriodicCkpt
            period = _optimal_period(checkpoint, mu, downtime, recovery)
            with np.errstate(invalid="ignore"):
                short_general = np.isnan(period) | (general_time < period)
            unprotected = _unprotected_final_time(
                general_time + remainder_checkpoint, mu, downtime, recovery
            )
            periodic = _periodic_final_time(
                general_time, checkpoint, mu, downtime, recovery, period
            )
            general_final = np.where(short_general, unprotected, periodic)
            if remainder_checkpoint <= 0.0:
                general_final = np.where(general_time <= 0.0, 0.0, general_final)
            numerator = parameters.phi * library_time + library_checkpoint
            denominator = 1.0 - parameters.abft_failure_cost / mu
            with np.errstate(divide="ignore", invalid="ignore"):
                library_final = numerator / np.where(
                    denominator > 0.0, denominator, 1.0
                )
            library_final = np.where(denominator > 0.0, library_final, np.inf)
            library_final = np.where(library_time <= 0.0, 0.0, library_final)
            final = general_final + library_final
        wastes[name] = _waste(total_time, final)
    return wastes


def waste_grid(
    parameters: ResilienceParameters,
    application_time: float,
    mtbf_values: Sequence[float],
    alpha_values: Sequence[float],
    protocols: Sequence[str] = GRID_PROTOCOLS,
) -> Dict[str, np.ndarray]:
    """Waste of each protocol over the full MTBF x alpha grid.

    Returns a mapping from protocol name to a ``(len(mtbf_values),
    len(alpha_values))`` array, row ``i`` holding the wastes at
    ``mtbf_values[i]`` for every alpha.
    """
    mu = np.asarray(mtbf_values, dtype=float).reshape(-1, 1)
    a = np.asarray(alpha_values, dtype=float).reshape(1, -1)
    return waste_points(parameters, application_time, mu, a, protocols)
