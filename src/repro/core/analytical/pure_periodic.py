"""PurePeriodicCkpt analytical model (Section IV-C, Figure 5).

The fully conservative approach: a single Young/Daly-optimal checkpointing
period, with full-memory checkpoints of cost ``C``, is used throughout the
whole execution, regardless of the application's phase structure.  In the
paper's notation this is the composite model evaluated with ``alpha = 0``
(everything is a GENERAL phase) and the optimal period of Equation 11.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.application.workload import ApplicationWorkload
from repro.core.analytical.base import AnalyticalModel
from repro.core.analytical.young_daly import optimal_period, periodic_final_time
from repro.core.parameters import ResilienceParameters
from repro.core.registry import register_protocol

__all__ = ["PurePeriodicCkptModel"]


@register_protocol(
    "PurePeriodicCkpt", kind="model", aliases=("pure", "pure-periodic")
)
class PurePeriodicCkptModel(AnalyticalModel):
    """Expected execution time under pure periodic checkpointing.

    Parameters
    ----------
    parameters:
        The resilience parameter bundle.
    period:
        Checkpointing period to use.  ``None`` (default) uses the paper's
        optimal period ``sqrt(2 C (mu - D - R))``.
    period_formula:
        Which optimal-period approximation to use when ``period`` is not
        given: ``"paper"`` (default), ``"young"`` or ``"daly"`` -- exposed
        for the period-formula ablation study.
    """

    name = "PurePeriodicCkpt"

    def __init__(
        self,
        parameters: ResilienceParameters,
        *,
        period: Optional[float] = None,
        period_formula: str = "paper",
    ) -> None:
        super().__init__(parameters)
        self._explicit_period = period
        self._period_formula = period_formula

    def period(self) -> float:
        """The checkpointing period actually used (seconds)."""
        if self._explicit_period is not None:
            return self._explicit_period
        params = self.parameters
        return optimal_period(
            params.full_checkpoint,
            params.platform_mtbf,
            params.downtime,
            params.full_recovery,
            formula=self._period_formula,
        )

    def final_time(
        self, workload: ApplicationWorkload
    ) -> tuple[float, Mapping[str, Any]]:
        params = self.parameters
        period = self.period()
        total = periodic_final_time(
            work=workload.total_time,
            checkpoint_cost=params.full_checkpoint,
            mtbf=params.platform_mtbf,
            downtime=params.downtime,
            recovery_cost=params.full_recovery,
            period=period,
        )
        details = {
            "period": period,
            "checkpoint_cost": params.full_checkpoint,
            "period_formula": self._period_formula,
        }
        return total, details
