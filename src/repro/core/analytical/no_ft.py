"""Restart-from-scratch baseline (no fault tolerance at all).

Not part of the paper's comparison, but a useful sanity baseline: without any
protection, a failure destroys all progress and the application restarts from
the beginning.  For exponential failures of mean ``mu`` and a job of length
``T0``, the expected completion time has the classical closed form

.. math::

    E[T] = (\\mu + D)\\,(e^{T_0/\\mu} - 1)

which grows exponentially with ``T0 / mu`` -- the quantitative reason why
*some* fault-tolerance mechanism is mandatory at scale.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from repro.application.workload import ApplicationWorkload
from repro.core.analytical.base import AnalyticalModel
from repro.core.registry import register_protocol

__all__ = ["NoFaultToleranceModel"]


@register_protocol(
    "NoFT", kind="model", aliases=("none", "no-ft", "restart"), paper=False,
    storage=False
)
class NoFaultToleranceModel(AnalyticalModel):
    """Expected completion time with restart-from-scratch on every failure."""

    name = "NoFT"

    def final_time(
        self, workload: ApplicationWorkload
    ) -> tuple[float, Mapping[str, Any]]:
        params = self.parameters
        total = workload.total_time
        mtbf = params.platform_mtbf
        exponent = total / mtbf
        # Guard against overflow for absurdly failure-dominated regimes.
        if exponent > 700.0:
            return math.inf, {"exponent": exponent}
        expected = (mtbf + params.downtime) * (math.exp(exponent) - 1.0)
        # The expectation can dip below T0 only through rounding for tiny
        # exponents; clamp to preserve the waste >= 0 invariant.
        expected = max(expected, total)
        return expected, {"exponent": exponent}
