"""ABFT&PeriodicCkpt composite analytical model (Section IV-B).

The composite protocol alternates between periodic checkpointing (GENERAL
phases) and ABFT protection (LIBRARY phases):

GENERAL phase of duration ``T_G`` (Equations 1, 4, 6, 7, 9, 10):

* if ``T_G < P_G`` (shorter than the optimal period), no periodic checkpoint
  is taken; a partial checkpoint of the REMAINDER dataset (cost ``C_Rem``)
  is taken when entering the library call, and a failure loses half the
  phase on average:

  ``T_G^final = (T_G + C_Rem) / (1 - (D + R + (T_G + C_Rem)/2) / mu)``

* otherwise periodic checkpointing at the optimal period is used, and the
  last periodic checkpoint replaces the entry partial checkpoint:

  ``T_G^final = T_G / X`` with ``X = (1 - C/P)(1 - (D + R + P/2)/mu)``.

LIBRARY phase of duration ``T_L`` (Equations 2, 5, 8): ABFT slows computation
by ``phi`` and a partial checkpoint of the LIBRARY dataset (cost ``C_L``) is
taken when leaving the call; a failure costs ``D + R_Rem + Recons_ABFT`` and
loses no work:

  ``T_L^final = (phi T_L + C_L) / (1 - (D + R_Rem + Recons_ABFT) / mu)``

The model also implements the two refinements discussed in Section III-B:

* the **safeguard** mechanism: when the projected ABFT-protected duration of
  a library call is smaller than the optimal checkpoint interval, ABFT is not
  worth its forced checkpoints and the phase falls back to (incremental)
  periodic checkpointing;
* **non-ABFT-capable** library phases are always protected by periodic
  checkpointing.
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Optional

from repro.application.epoch import Epoch
from repro.application.workload import ApplicationWorkload
from repro.core.analytical.base import AnalyticalModel
from repro.core.analytical.young_daly import (
    optimal_period,
    periodic_final_time,
    unprotected_final_time,
)
from repro.core.parameters import ResilienceParameters
from repro.core.registry import register_protocol

__all__ = ["AbftPeriodicCkptModel"]


@register_protocol(
    "ABFT&PeriodicCkpt",
    kind="model",
    aliases=("abft", "composite", "abft-periodic"),
)
class AbftPeriodicCkptModel(AnalyticalModel):
    """Expected execution time under the ABFT&PeriodicCkpt composite protocol.

    Parameters
    ----------
    parameters:
        The resilience parameter bundle.
    general_period:
        Override the periodic-checkpointing period used in (long) GENERAL
        phases; ``None`` uses the optimal period of Equation 11.
    safeguard:
        Enable the Section III-B safeguard: a LIBRARY phase whose projected
        ABFT-protected duration (``phi * T_L + C_L``) is smaller than the
        optimal checkpoint interval is protected by periodic checkpointing
        instead of ABFT.  Disabled by default, matching the headline figures
        where the library phases are long.
    per_epoch:
        Analyse each epoch independently (the faithful reading of the forced
        entry/exit checkpoints, default) instead of collapsing the workload
        into one aggregate epoch first.
    period_formula:
        Optimal-period approximation (``"paper"``, ``"young"``, ``"daly"``).
    """

    name = "ABFT&PeriodicCkpt"

    def __init__(
        self,
        parameters: ResilienceParameters,
        *,
        general_period: Optional[float] = None,
        safeguard: bool = False,
        per_epoch: bool = True,
        period_formula: str = "paper",
    ) -> None:
        super().__init__(parameters)
        self._general_period = general_period
        self._safeguard = bool(safeguard)
        self._per_epoch = bool(per_epoch)
        self._period_formula = period_formula

    # ------------------------------------------------------------------ #
    # Periods
    # ------------------------------------------------------------------ #
    def general_period(self) -> float:
        """Periodic-checkpointing period used in long GENERAL phases."""
        if self._general_period is not None:
            return self._general_period
        params = self.parameters
        return optimal_period(
            params.full_checkpoint,
            params.platform_mtbf,
            params.downtime,
            params.full_recovery,
            formula=self._period_formula,
        )

    def library_fallback_period(self) -> float:
        """Period used when a LIBRARY phase falls back to checkpointing."""
        params = self.parameters
        if params.library_checkpoint == 0.0:
            return 0.0
        return optimal_period(
            params.library_checkpoint,
            params.platform_mtbf,
            params.downtime,
            params.full_recovery,
            formula=self._period_formula,
        )

    @property
    def safeguard(self) -> bool:
        """Whether the Section III-B safeguard is enabled."""
        return self._safeguard

    # ------------------------------------------------------------------ #
    # Per-phase expectations
    # ------------------------------------------------------------------ #
    def _general_phase_final_time(self, general_time: float) -> tuple[float, bool]:
        """Expected duration of one GENERAL phase plus its entry checkpoint.

        Returns ``(final_time, used_periodic)``.
        """
        params = self.parameters
        period = self.general_period()
        if general_time <= 0.0 and params.remainder_checkpoint <= 0.0:
            return 0.0, False
        if math.isnan(period) or general_time < period:
            # Short phase: no periodic checkpoint, a partial checkpoint of
            # the REMAINDER dataset is appended before entering the library.
            total = unprotected_final_time(
                general_time + params.remainder_checkpoint,
                params.platform_mtbf,
                params.downtime,
                params.full_recovery,
            )
            return total, False
        total = periodic_final_time(
            work=general_time,
            checkpoint_cost=params.full_checkpoint,
            mtbf=params.platform_mtbf,
            downtime=params.downtime,
            recovery_cost=params.full_recovery,
            period=period,
        )
        return total, True

    def _library_phase_abft_final_time(self, library_time: float) -> float:
        """Expected duration of one ABFT-protected LIBRARY phase (Eq. 8)."""
        params = self.parameters
        if library_time <= 0.0:
            return 0.0
        numerator = params.phi * library_time + params.library_checkpoint
        denominator = 1.0 - params.abft_failure_cost / params.platform_mtbf
        if denominator <= 0.0:
            return math.inf
        return numerator / denominator

    def _library_phase_fallback_final_time(self, library_time: float) -> float:
        """Expected duration of a LIBRARY phase protected by checkpointing."""
        params = self.parameters
        return periodic_final_time(
            work=library_time,
            checkpoint_cost=params.library_checkpoint,
            mtbf=params.platform_mtbf,
            downtime=params.downtime,
            recovery_cost=params.full_recovery,
            period=(
                self.library_fallback_period()
                if params.library_checkpoint > 0
                else None
            ),
        )

    def _library_uses_abft(self, epoch: Epoch) -> bool:
        """Decide whether ABFT protects the LIBRARY phase of ``epoch``."""
        params = self.parameters
        if not epoch.abft_capable or epoch.library_time <= 0.0:
            return epoch.library_time > 0.0 and epoch.abft_capable
        if not self._safeguard:
            return True
        projected = params.phi * epoch.library_time + params.library_checkpoint
        threshold = self.general_period()
        if math.isnan(threshold):
            # Periodic checkpointing is infeasible: always prefer ABFT.
            return True
        return projected >= threshold

    # ------------------------------------------------------------------ #
    def final_time(
        self, workload: ApplicationWorkload
    ) -> tuple[float, Mapping[str, Any]]:
        effective = workload if self._per_epoch else workload.collapse()

        total = 0.0
        general_total = 0.0
        library_total = 0.0
        epochs_with_periodic_general = 0
        epochs_with_abft = 0

        for epoch in effective.epochs:
            general_time, used_periodic = self._general_phase_final_time(
                epoch.general_time
            )
            if used_periodic:
                epochs_with_periodic_general += 1
            if self._library_uses_abft(epoch):
                library_time = self._library_phase_abft_final_time(epoch.library_time)
                epochs_with_abft += 1
            else:
                library_time = self._library_phase_fallback_final_time(
                    epoch.library_time
                )
            general_total += general_time
            library_total += library_time
            total = general_total + library_total
            if math.isinf(total):
                break

        details = {
            "general_period": self.general_period(),
            "library_fallback_period": self.library_fallback_period(),
            "general_final_time": general_total,
            "library_final_time": library_total,
            "epochs": effective.epoch_count,
            "epochs_with_periodic_general": epochs_with_periodic_general,
            "epochs_with_abft": epochs_with_abft,
            "safeguard": self._safeguard,
            "per_epoch": self._per_epoch,
        }
        return total, details
