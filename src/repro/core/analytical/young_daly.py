"""Optimal checkpoint periods and periodic-checkpointing building blocks.

The classical first-order results:

* Young's approximation [19]: ``P = sqrt(2 C mu)``;
* Daly's higher-order estimate [20]: ``P = sqrt(2 C (mu + D + R)) `` refined
  with correction terms (we implement the widely used first-order form
  ``sqrt(2 C mu) + C``);
* the paper's refined Equation 11: ``P_opt = sqrt(2 C (mu - D - R))``, which
  is the value used by every protocol in the evaluation.

The module also provides the expected-final-time expressions that the three
protocol models share:

* :func:`periodic_final_time` -- Equation 10: expected duration of ``work``
  seconds of computation protected by periodic checkpoints of cost ``C``
  taken every ``P`` seconds, under exponential failures of mean ``mu`` with
  per-failure overhead ``D + R`` plus half a period of lost work;
* :func:`unprotected_final_time` -- Equation 9: expected duration of a
  phase executed without any intermediate checkpoint (the composite's short
  GENERAL phase), where a failure loses half the phase on average.
"""

from __future__ import annotations

import math

from repro.utils.validation import require_non_negative, require_positive

__all__ = [
    "young_period",
    "daly_period",
    "paper_optimal_period",
    "optimal_period",
    "first_order_waste",
    "periodic_final_time",
    "unprotected_final_time",
]


def young_period(checkpoint_cost: float, mtbf: float) -> float:
    """Young's optimal period ``sqrt(2 C mu)`` [Young 1974].

    Parameters
    ----------
    checkpoint_cost:
        Checkpoint cost ``C`` in seconds.
    mtbf:
        Platform MTBF ``mu`` in seconds.
    """
    checkpoint_cost = require_positive(checkpoint_cost, "checkpoint_cost")
    mtbf = require_positive(mtbf, "mtbf")
    return math.sqrt(2.0 * checkpoint_cost * mtbf)


def daly_period(checkpoint_cost: float, mtbf: float) -> float:
    """Daly's first-order optimal period ``sqrt(2 C mu) + C`` [Daly 2004]."""
    checkpoint_cost = require_positive(checkpoint_cost, "checkpoint_cost")
    mtbf = require_positive(mtbf, "mtbf")
    return math.sqrt(2.0 * checkpoint_cost * mtbf) + checkpoint_cost


def paper_optimal_period(
    checkpoint_cost: float, mtbf: float, downtime: float, recovery_cost: float
) -> float:
    """The paper's refined optimal period, Equation 11.

    ``P_opt = sqrt(2 C (mu - D - R))``.

    When ``mu <= D + R`` the formula has no real solution: the platform fails
    faster than it can recover, periodic checkpointing cannot make progress
    in expectation and the function returns ``nan`` (callers treat this as
    an infeasible regime and report a waste of 1).
    """
    checkpoint_cost = require_positive(checkpoint_cost, "checkpoint_cost")
    mtbf = require_positive(mtbf, "mtbf")
    downtime = require_non_negative(downtime, "downtime")
    recovery_cost = require_non_negative(recovery_cost, "recovery_cost")
    slack = mtbf - downtime - recovery_cost
    if slack <= 0:
        return math.nan
    return math.sqrt(2.0 * checkpoint_cost * slack)


def optimal_period(
    checkpoint_cost: float,
    mtbf: float,
    downtime: float = 0.0,
    recovery_cost: float = 0.0,
    *,
    formula: str = "paper",
) -> float:
    """Dispatch between the Young, Daly and paper period formulas.

    Parameters
    ----------
    formula:
        One of ``"paper"`` (default, Equation 11), ``"young"`` or ``"daly"``.
    """
    if formula == "paper":
        return paper_optimal_period(checkpoint_cost, mtbf, downtime, recovery_cost)
    if formula == "young":
        return young_period(checkpoint_cost, mtbf)
    if formula == "daly":
        return daly_period(checkpoint_cost, mtbf)
    raise ValueError(f"unknown period formula {formula!r}; expected paper|young|daly")


def _efficiency(
    period: float,
    checkpoint_cost: float,
    mtbf: float,
    downtime: float,
    recovery_cost: float,
) -> float:
    """The factor ``X`` of Equation 10: useful fraction of each period.

    ``X = (1 - C/P) (1 - (D + R + P/2) / mu)``.  Non-positive values mean the
    protection cannot keep up with the failure rate (infeasible regime).
    """
    if math.isnan(period) or period <= checkpoint_cost:
        return 0.0
    fault_free = 1.0 - checkpoint_cost / period
    failure_factor = 1.0 - (downtime + recovery_cost + period / 2.0) / mtbf
    if failure_factor <= 0.0:
        return 0.0
    return fault_free * failure_factor


def periodic_final_time(
    work: float,
    checkpoint_cost: float,
    mtbf: float,
    downtime: float,
    recovery_cost: float,
    period: float | None = None,
) -> float:
    """Expected final time of periodically checkpointed work (Equation 10).

    Parameters
    ----------
    work:
        Amount of useful computation to perform, in seconds.
    checkpoint_cost:
        Cost ``C`` of each periodic checkpoint, seconds.
    mtbf:
        Platform MTBF ``mu`` in seconds.
    downtime / recovery_cost:
        Per-failure downtime ``D`` and recovery ``R``, seconds.
    period:
        Checkpointing period ``P`` (wall-clock, including the checkpoint).
        ``None`` uses the optimal period of Equation 11.

    Returns
    -------
    float
        The expected completion time ``work / X``; ``inf`` when the regime is
        infeasible (``X <= 0``).
    """
    work = require_non_negative(work, "work")
    if work == 0.0:
        return 0.0
    mtbf = require_positive(mtbf, "mtbf")
    if checkpoint_cost == 0.0:
        # No checkpoint cost: the optimal period goes to zero and the only
        # remaining overhead is the per-failure downtime + recovery.
        failure_factor = 1.0 - (downtime + recovery_cost) / mtbf
        return work / failure_factor if failure_factor > 0 else math.inf
    if period is None:
        period = paper_optimal_period(checkpoint_cost, mtbf, downtime, recovery_cost)
    efficiency = _efficiency(period, checkpoint_cost, mtbf, downtime, recovery_cost)
    if efficiency <= 0.0:
        return math.inf
    return work / efficiency


def unprotected_final_time(
    work_and_overhead: float,
    mtbf: float,
    downtime: float,
    recovery_cost: float,
) -> float:
    """Expected final time of a phase executed without intermediate checkpoints.

    Equation 9 of the paper: the phase (of fault-free duration
    ``work_and_overhead``, which may include a trailing partial checkpoint)
    is re-executed from its beginning when a failure strikes; on average the
    failure hits the middle of the phase, so the expected loss per failure is
    ``D + R + work_and_overhead / 2``:

    ``T_final = work_and_overhead / (1 - (D + R + work_and_overhead/2) / mu)``

    Returns ``inf`` when the denominator is non-positive (the phase is too
    long to complete in expectation without intermediate checkpoints).
    """
    work_and_overhead = require_non_negative(work_and_overhead, "work_and_overhead")
    if work_and_overhead == 0.0:
        return 0.0
    mtbf = require_positive(mtbf, "mtbf")
    denominator = 1.0 - (downtime + recovery_cost + work_and_overhead / 2.0) / mtbf
    if denominator <= 0.0:
        return math.inf
    return work_and_overhead / denominator


def first_order_waste(
    checkpoint_cost: float,
    mtbf: float,
    downtime: float = 0.0,
    recovery_cost: float = 0.0,
    period: float | None = None,
) -> float:
    """First-order waste of steady-state periodic checkpointing.

    ``waste = 1 - X`` where ``X`` is the efficiency factor of Equation 10,
    evaluated at the optimal period unless ``period`` is given.  Clipped to
    ``[0, 1]``.
    """
    checkpoint_cost = require_positive(checkpoint_cost, "checkpoint_cost")
    mtbf = require_positive(mtbf, "mtbf")
    if period is None:
        period = paper_optimal_period(checkpoint_cost, mtbf, downtime, recovery_cost)
    efficiency = _efficiency(period, checkpoint_cost, mtbf, downtime, recovery_cost)
    return min(1.0, max(0.0, 1.0 - efficiency))
