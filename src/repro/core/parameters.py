"""Parameter bundle shared by the analytical models and the simulators.

This is the single place where all of the paper's Section IV notation lives:

========  =====================================================================
Symbol    Meaning
========  =====================================================================
``mu``    Platform mean time between failures (seconds).
``C``     Full-memory coordinated checkpoint cost (seconds).
``R``     Full-memory recovery cost (seconds).
``D``     Downtime: reboot / spare swap-in (seconds).
``rho``   Fraction of memory in the LIBRARY dataset; ``C_L = rho * C``.
``phi``   ABFT slowdown factor (``>= 1``); ABFT-protected work takes
          ``phi * t`` instead of ``t``.
``Recons_ABFT``  Time to reconstruct the LIBRARY dataset from ABFT checksums
          after a failure (seconds).
``R_Rem`` Time to reload the partial checkpoint of the REMAINDER dataset
          during an ABFT recovery; defaults to ``(1 - rho) * R``
          (the paper notes "in many cases R_Rem = C_Rem").
========  =====================================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.checkpointing.cost_model import CheckpointCostModel, CheckpointCosts
from repro.checkpointing.stack import StorageStack
from repro.checkpointing.storage import CheckpointStorage
from repro.failures.platform import Platform
from repro.utils.validation import require_non_negative, require_positive

__all__ = ["ResilienceParameters"]


@dataclass(frozen=True)
class ResilienceParameters:
    """Every scalar parameter of the composite model.

    Parameters
    ----------
    platform_mtbf:
        Platform MTBF ``mu`` in seconds.
    costs:
        Checkpoint / recovery / downtime costs (see
        :class:`~repro.checkpointing.cost_model.CheckpointCosts`).  May be
        omitted when ``storage`` is given; with both, ``costs`` contributes
        only its ``library_fraction`` and ``downtime`` while ``C``/``R``
        come from the storage lowering.
    storage:
        Optional :class:`~repro.checkpointing.stack.StorageStack`.  When
        set, the stack is *lowered* here, once, to the scalar ``(C, R)``
        every downstream consumer reads (``full_checkpoint`` /
        ``full_recovery``), so schedule compilers, both Monte-Carlo
        engines, closed forms and the optimizer run storage-stack
        protocols unchanged.  Excluded from equality: two parameter sets
        lowering to the same scalars behave identically everywhere.
    abft_overhead:
        ``phi >= 1``: multiplicative slowdown of ABFT-protected computation.
    abft_reconstruction:
        ``Recons_ABFT``: ABFT data reconstruction time after a failure,
        seconds.
    remainder_recovery:
        ``R_Rem``: time to reload the REMAINDER partial checkpoint during an
        ABFT recovery.  ``None`` (default) uses ``(1 - rho) * R``.

    Examples
    --------
    >>> from repro.utils import MINUTE
    >>> from repro.checkpointing import CheckpointCostModel
    >>> costs = CheckpointCostModel.from_scalars(
    ...     checkpoint=10 * MINUTE, recovery=10 * MINUTE,
    ...     library_fraction=0.8, downtime=1 * MINUTE)
    >>> params = ResilienceParameters(platform_mtbf=120 * MINUTE, costs=costs,
    ...                               abft_overhead=1.03, abft_reconstruction=2.0)
    >>> params.library_checkpoint == 0.8 * params.full_checkpoint
    True
    """

    platform_mtbf: float
    costs: Optional[CheckpointCosts] = None
    abft_overhead: float = 1.03
    abft_reconstruction: float = 2.0
    remainder_recovery: Optional[float] = field(default=None)
    storage: Optional[StorageStack] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        require_positive(self.platform_mtbf, "platform_mtbf")
        if self.storage is not None:
            # Lower the storage stack to the scalar (C, R) once, here, so
            # everything downstream keeps reading plain costs.  rho and D
            # are not storage properties; carry them over from the seed
            # costs when given (paper defaults otherwise).
            base = self.costs
            rho = base.library_fraction if base is not None else 0.8
            downtime = base.downtime if base is not None else 60.0
            checkpoint, recovery = self.storage.lowered_costs(self.platform_mtbf)
            object.__setattr__(
                self, "costs", CheckpointCosts(checkpoint, recovery, rho, downtime)
            )
        elif self.costs is None:
            raise ValueError(
                "ResilienceParameters needs either costs or a storage stack"
            )
        if self.abft_overhead < 1.0:
            raise ValueError(
                f"abft_overhead (phi) must be >= 1, got {self.abft_overhead}"
            )
        require_non_negative(self.abft_reconstruction, "abft_reconstruction")
        if self.remainder_recovery is not None:
            require_non_negative(self.remainder_recovery, "remainder_recovery")

    # ------------------------------------------------------------------ #
    # Paper-notation accessors
    # ------------------------------------------------------------------ #
    @property
    def mtbf(self) -> float:
        """``mu``: platform MTBF in seconds."""
        return self.platform_mtbf

    @property
    def full_checkpoint(self) -> float:
        """``C``: full-memory checkpoint cost."""
        return self.costs.full_checkpoint

    @property
    def full_recovery(self) -> float:
        """``R``: full-memory recovery cost."""
        return self.costs.full_recovery

    @property
    def downtime(self) -> float:
        """``D``: downtime after a failure."""
        return self.costs.downtime

    @property
    def rho(self) -> float:
        """``rho``: LIBRARY fraction of memory."""
        return self.costs.library_fraction

    @property
    def library_checkpoint(self) -> float:
        """``C_L = rho * C``: partial checkpoint of the LIBRARY dataset."""
        return self.costs.library_checkpoint

    @property
    def remainder_checkpoint(self) -> float:
        """``C_Rem = (1 - rho) * C``: partial checkpoint of the REMAINDER dataset."""
        return self.costs.remainder_checkpoint

    @property
    def library_recovery(self) -> float:
        """``R_L = rho * R``: recovery of the LIBRARY dataset alone."""
        return self.costs.library_recovery

    @property
    def remainder_recovery_cost(self) -> float:
        """``R_Rem``: recovery of the REMAINDER partial checkpoint."""
        if self.remainder_recovery is not None:
            return self.remainder_recovery
        return self.costs.remainder_recovery

    @property
    def phi(self) -> float:
        """``phi``: ABFT slowdown factor."""
        return self.abft_overhead

    @property
    def abft_failure_cost(self) -> float:
        """``D + R_Rem + Recons_ABFT``: average time lost per failure in an
        ABFT-protected LIBRARY phase (paper Section IV-B.2)."""
        return self.downtime + self.remainder_recovery_cost + self.abft_reconstruction

    @property
    def rollback_failure_overhead(self) -> float:
        """``D + R``: fixed part of the time lost per failure under rollback."""
        return self.downtime + self.full_recovery

    # ------------------------------------------------------------------ #
    # Constructors and transforms
    # ------------------------------------------------------------------ #
    @classmethod
    def from_scalars(
        cls,
        *,
        platform_mtbf: float,
        checkpoint: float,
        recovery: Optional[float] = None,
        downtime: float = 60.0,
        library_fraction: float = 0.8,
        abft_overhead: float = 1.03,
        abft_reconstruction: float = 2.0,
        remainder_recovery: Optional[float] = None,
    ) -> "ResilienceParameters":
        """Build parameters directly from scalar values (paper style)."""
        costs = CheckpointCostModel.from_scalars(
            checkpoint,
            recovery,
            library_fraction=library_fraction,
            downtime=downtime,
        )
        return cls(
            platform_mtbf=platform_mtbf,
            costs=costs,
            abft_overhead=abft_overhead,
            abft_reconstruction=abft_reconstruction,
            remainder_recovery=remainder_recovery,
        )

    @classmethod
    def from_platform(
        cls,
        platform: Platform,
        cost_model: CheckpointCostModel,
        dataset,
        *,
        abft_overhead: float = 1.03,
        abft_reconstruction: float = 2.0,
        remainder_recovery: Optional[float] = None,
    ) -> "ResilienceParameters":
        """Derive parameters from a platform, a storage cost model and a dataset."""
        costs = cost_model.costs(platform, dataset)
        return cls(
            platform_mtbf=platform.mtbf,
            costs=costs,
            abft_overhead=abft_overhead,
            abft_reconstruction=abft_reconstruction,
            remainder_recovery=remainder_recovery,
        )

    @classmethod
    def from_storage(
        cls,
        *,
        platform_mtbf: float,
        storage,
        data_bytes: float = 0.0,
        node_count: int = 1,
        downtime: float = 60.0,
        library_fraction: float = 0.8,
        abft_overhead: float = 1.03,
        abft_reconstruction: float = 2.0,
        remainder_recovery: Optional[float] = None,
    ) -> "ResilienceParameters":
        """Build parameters from a checkpoint-storage stack.

        ``storage`` is either a ready
        :class:`~repro.checkpointing.stack.StorageStack` (then
        ``data_bytes``/``node_count`` must be left at their defaults) or a
        bare :class:`~repro.checkpointing.storage.CheckpointStorage`
        medium, which is bound to ``data_bytes`` over ``node_count`` nodes
        here.
        """
        if isinstance(storage, CheckpointStorage):
            stack = StorageStack(storage, data_bytes, node_count)
        elif isinstance(storage, StorageStack):
            if data_bytes or node_count != 1:
                raise ValueError(
                    "data_bytes/node_count are already bound by the "
                    "StorageStack; pass a bare CheckpointStorage to bind "
                    "them here"
                )
            stack = storage
        else:
            raise ValueError(
                "storage must be a CheckpointStorage or StorageStack, "
                f"got {type(storage).__name__}"
            )
        seed_costs = CheckpointCosts(0.0, 0.0, library_fraction, downtime)
        return cls(
            platform_mtbf=platform_mtbf,
            costs=seed_costs,
            abft_overhead=abft_overhead,
            abft_reconstruction=abft_reconstruction,
            remainder_recovery=remainder_recovery,
            storage=stack,
        )

    def with_mtbf(self, platform_mtbf: float) -> "ResilienceParameters":
        """Return a copy with a different platform MTBF (sweep helper).

        With a storage stack attached the copy re-lowers it at the new
        MTBF, so risk-weighted media stay honest across an MTBF sweep.
        """
        return replace(self, platform_mtbf=platform_mtbf)

    def with_costs(self, costs: CheckpointCosts) -> "ResilienceParameters":
        """Return a copy with different checkpoint costs (sweep helper).

        Detaches any storage stack: explicit costs win over the lowering
        (otherwise ``__post_init__`` would immediately overwrite them).
        """
        return replace(self, costs=costs, storage=None)

    def with_storage(self, storage: Optional[StorageStack]) -> "ResilienceParameters":
        """Return a copy lowered from ``storage`` (keeps rho / downtime)."""
        return replace(self, storage=storage)

    def with_abft(
        self,
        *,
        abft_overhead: Optional[float] = None,
        abft_reconstruction: Optional[float] = None,
    ) -> "ResilienceParameters":
        """Return a copy with different ABFT parameters (sweep helper)."""
        return replace(
            self,
            abft_overhead=(
                self.abft_overhead if abft_overhead is None else abft_overhead
            ),
            abft_reconstruction=(
                self.abft_reconstruction
                if abft_reconstruction is None
                else abft_reconstruction
            ),
        )
