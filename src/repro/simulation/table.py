"""Columnar per-trial results of a Monte-Carlo campaign.

A :class:`TrialTable` is the canonical result of a campaign: one row per
simulated execution, stored as a structured NumPy array so that summary
statistics (mean, confidence interval, percentiles) are single vectorized
reductions over columns instead of Python loops over trace objects.

Columns
-------
``makespan``
    Simulated wall-clock completion time ``T_final`` in seconds.
``waste``
    ``1 - T0 / T_final`` (paper Eq. 12) of the trial.
``failure_count``
    Number of failures that struck during the (protected) execution.
``truncated``
    Whether the trial hit the ``max_slowdown`` cap and was cut short (its
    waste is then ~1).
``useful_work`` .. ``downtime``
    The seven waste categories of
    :data:`repro.simulation.trace.CATEGORIES`, in seconds.

Tables concatenate cheaply (the parallel campaign executor has each worker
return one slice, reassembled in trial order) and slices round-trip through
pickle, which keeps inter-process transfer cost flat per batch instead of
per trial.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Sequence

import numpy as np

from repro.simulation.trace import CATEGORIES, ExecutionTrace, TimeBreakdown
from repro.utils.stats import SummaryStatistics, summarize_array

__all__ = ["TrialTable", "TRIAL_DTYPE"]

#: Structured dtype of one trial row.
TRIAL_DTYPE = np.dtype(
    [
        ("makespan", np.float64),
        ("waste", np.float64),
        ("failure_count", np.int64),
        ("truncated", np.bool_),
    ]
    + [(category, np.float64) for category in CATEGORIES]
)


class TrialTable:
    """Columnar table of per-trial Monte-Carlo results.

    Parameters
    ----------
    data:
        Structured array of dtype :data:`TRIAL_DTYPE`, one row per trial in
        trial (seed) order.
    protocol:
        Name of the protocol that produced the trials.
    application_time:
        Common fault-free application duration ``T0`` in seconds.
    """

    __slots__ = ("_data", "_protocol", "_application_time")

    def __init__(
        self,
        data: np.ndarray,
        *,
        protocol: str = "",
        application_time: float = float("nan"),
    ) -> None:
        if data.dtype != TRIAL_DTYPE:
            raise ValueError(
                f"data must have dtype TRIAL_DTYPE, got {data.dtype}"
            )
        self._data = data
        self._protocol = str(protocol)
        self._application_time = float(application_time)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(
        cls, runs: int, *, protocol: str = "", application_time: float = float("nan")
    ) -> "TrialTable":
        """A zero-filled table with ``runs`` rows, ready to be filled."""
        if runs < 0:
            raise ValueError(f"runs must be non-negative, got {runs}")
        return cls(
            np.zeros(runs, dtype=TRIAL_DTYPE),
            protocol=protocol,
            application_time=application_time,
        )

    @classmethod
    def from_traces(cls, traces: Sequence[ExecutionTrace]) -> "TrialTable":
        """Build a table from individual execution traces, in order."""
        table = cls.empty(
            len(traces),
            protocol=traces[0].protocol if traces else "",
            application_time=traces[0].application_time if traces else float("nan"),
        )
        for index, trace in enumerate(traces):
            table.record_trace(index, trace)
        return table

    @classmethod
    def concatenate(cls, tables: Sequence["TrialTable"]) -> "TrialTable":
        """Concatenate table slices in the given (trial) order."""
        if not tables:
            raise ValueError("need at least one table to concatenate")
        first = tables[0]
        return cls(
            np.concatenate([table._data for table in tables]),
            protocol=first._protocol,
            application_time=first._application_time,
        )

    def record_trace(self, index: int, trace: ExecutionTrace) -> None:
        """Fill row ``index`` from one :class:`ExecutionTrace`."""
        row = self._data[index]
        row["makespan"] = trace.makespan
        row["waste"] = trace.waste
        row["failure_count"] = trace.failure_count
        row["truncated"] = bool(trace.metadata.get("truncated", False))
        breakdown = trace.breakdown
        for category in CATEGORIES:
            row[category] = getattr(breakdown, category)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    @property
    def data(self) -> np.ndarray:
        """The underlying structured array (one row per trial)."""
        return self._data

    @property
    def protocol(self) -> str:
        """Protocol name the trials were simulated under."""
        return self._protocol

    @property
    def application_time(self) -> float:
        """The common fault-free application duration ``T0`` (seconds)."""
        return self._application_time

    @property
    def runs(self) -> int:
        """Number of trials in the table."""
        return int(self._data.size)

    def __len__(self) -> int:
        return int(self._data.size)

    def column(self, name: str) -> np.ndarray:
        """One column as a plain float/int/bool array (a view, not a copy)."""
        if name not in TRIAL_DTYPE.names:
            raise KeyError(
                f"unknown column {name!r}; available: {TRIAL_DTYPE.names}"
            )
        return self._data[name]

    @property
    def makespans(self) -> np.ndarray:
        """The makespan column (seconds)."""
        return self._data["makespan"]

    @property
    def wastes(self) -> np.ndarray:
        """The waste column."""
        return self._data["waste"]

    @property
    def failure_counts(self) -> np.ndarray:
        """The failure-count column."""
        return self._data["failure_count"]

    @property
    def truncated(self) -> np.ndarray:
        """The truncated-flag column."""
        return self._data["truncated"]

    @property
    def truncated_count(self) -> int:
        """Number of trials cut short by the ``max_slowdown`` cap."""
        return int(np.count_nonzero(self._data["truncated"]))

    def breakdown_means(self) -> Dict[str, float]:
        """Mean seconds per waste category over all trials."""
        return {
            category: float(np.mean(self._data[category])) if self.runs else float("nan")
            for category in CATEGORIES
        }

    def mean_breakdown(self) -> TimeBreakdown:
        """The per-category means as a :class:`TimeBreakdown`."""
        breakdown = TimeBreakdown()
        for category, value in self.breakdown_means().items():
            setattr(breakdown, category, value)
        return breakdown

    # ------------------------------------------------------------------ #
    # Statistics (vectorized over columns)
    # ------------------------------------------------------------------ #
    def summarize(self, column: str, confidence: float = 0.95) -> SummaryStatistics:
        """Vectorized summary statistics of one column."""
        return summarize_array(
            np.asarray(self.column(column), dtype=float), confidence
        )

    def percentiles(
        self, column: str, q: Iterable[float] = (5.0, 25.0, 50.0, 75.0, 95.0)
    ) -> Dict[float, float]:
        """Percentiles of one column (``q`` in percent, 0..100)."""
        qs = [float(v) for v in q]
        if not self.runs:
            return {v: float("nan") for v in qs}
        values = np.percentile(np.asarray(self.column(column), dtype=float), qs)
        return {v: float(x) for v, x in zip(qs, values)}

    def summary_dict(self, confidence: float = 0.95) -> Dict[str, Any]:
        """Compact, JSON-compatible summary (used by the sweep point cache).

        Non-finite statistics (the std / CI of a single-trial campaign are
        NaN) are emitted as ``None`` so the cached files stay strict JSON.
        """

        def finite(value: float) -> Optional[float]:
            return float(value) if np.isfinite(value) else None

        waste = self.summarize("waste", confidence)
        makespan = self.summarize("makespan", confidence)
        failures = self.summarize("failure_count", confidence)
        return {
            "runs": self.runs,
            "waste_mean": finite(waste.mean),
            "waste_std": finite(waste.std),
            "waste_ci_half_width": finite(waste.ci_half_width),
            "makespan_mean": finite(makespan.mean),
            "failures_mean": finite(failures.mean),
            "truncated": self.truncated_count,
            "confidence": confidence,
        }

    # ------------------------------------------------------------------ #
    def slice(self, start: int, stop: Optional[int] = None) -> "TrialTable":
        """A contiguous slice (shares the underlying buffer)."""
        return TrialTable(
            self._data[start:stop],
            protocol=self._protocol,
            application_time=self._application_time,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TrialTable):
            return NotImplemented
        return (
            self._protocol == other._protocol
            and (
                (np.isnan(self._application_time) and np.isnan(other._application_time))
                or self._application_time == other._application_time
            )
            and np.array_equal(self._data, other._data)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"TrialTable(runs={self.runs}, protocol={self._protocol!r}, "
            f"truncated={self.truncated_count})"
        )
