"""Event records used by the simulation engine and the trace recorder."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["EventKind", "Event"]


class EventKind(enum.Enum):
    """Kinds of events occurring during a protected execution.

    The protocol simulators emit these into the execution trace; the generic
    engine treats them opaquely (any hashable kind works there) but using a
    shared enum keeps traces comparable across protocols.
    """

    #: A process/node failure strikes the platform.
    FAILURE = "failure"
    #: Start of a (full or partial) coordinated checkpoint.
    CHECKPOINT_START = "checkpoint_start"
    #: Successful completion of a checkpoint.
    CHECKPOINT_END = "checkpoint_end"
    #: Start of a rollback-recovery (reloading a checkpoint).
    RECOVERY_START = "recovery_start"
    #: Completion of a rollback-recovery.
    RECOVERY_END = "recovery_end"
    #: Start of an ABFT reconstruction of the LIBRARY dataset.
    ABFT_RECOVERY_START = "abft_recovery_start"
    #: Completion of an ABFT reconstruction.
    ABFT_RECOVERY_END = "abft_recovery_end"
    #: Node downtime (reboot / spare swap-in) begins.
    DOWNTIME_START = "downtime_start"
    #: Node downtime ends.
    DOWNTIME_END = "downtime_end"
    #: The application enters a GENERAL phase.
    GENERAL_PHASE_START = "general_phase_start"
    #: The application leaves a GENERAL phase.
    GENERAL_PHASE_END = "general_phase_end"
    #: The application enters a LIBRARY (ABFT-capable) phase.
    LIBRARY_PHASE_START = "library_phase_start"
    #: The application leaves a LIBRARY phase.
    LIBRARY_PHASE_END = "library_phase_end"
    #: The whole protected application completed.
    APPLICATION_END = "application_end"
    #: Generic user-defined event (payload carries the detail).
    CUSTOM = "custom"


_EVENT_COUNTER = itertools.count()


@dataclass(frozen=True, order=False)
class Event:
    """A timestamped event.

    Attributes
    ----------
    time:
        Simulation time of the event, in seconds.
    kind:
        The :class:`EventKind` (or any hashable tag for engine-level use).
    payload:
        Optional free-form mapping with event details (e.g. which node
        failed, how much work was lost).
    sequence:
        Monotonic tie-breaker assigned at creation so that events with equal
        timestamps keep their insertion order in the priority queue.
    """

    time: float
    kind: Any
    payload: Mapping[str, Any] = field(default_factory=dict)
    sequence: int = field(default_factory=lambda: next(_EVENT_COUNTER))

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be non-negative, got {self.time}")

    def sort_key(self) -> tuple[float, int]:
        """Key used by the engine's priority queue."""
        return (self.time, self.sequence)

    def with_payload(self, **updates: Any) -> "Event":
        """Return a copy of the event with additional payload entries."""
        merged = dict(self.payload)
        merged.update(updates)
        return Event(time=self.time, kind=self.kind, payload=merged)

    def __str__(self) -> str:
        kind = self.kind.value if isinstance(self.kind, EventKind) else str(self.kind)
        return f"[t={self.time:.3f}s] {kind} {dict(self.payload) if self.payload else ''}".rstrip()
