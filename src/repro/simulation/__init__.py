"""Discrete-event simulation substrate.

The paper validates its analytical model with a purpose-built discrete event
simulator (Section V-A).  That simulator was never released; this package
re-implements it from scratch:

* :mod:`repro.simulation.events` -- event records and event kinds (failure,
  checkpoint start/end, recovery, phase transitions, ...).
* :mod:`repro.simulation.engine` -- a classical event-queue engine: a
  priority queue of timestamped events, a simulation clock, handler dispatch
  and stop conditions.  Generic enough to host arbitrary models; the
  fault-tolerance protocol simulators use it through the thin
  :class:`~repro.simulation.engine.SimulationEngine` API or drive their own
  time directly against a :class:`~repro.failures.timeline.FailureTimeline`
  for speed.
* :mod:`repro.simulation.rng` -- reproducible, independent random streams
  (one per concern: failures, node attribution, workload jitter).
* :mod:`repro.simulation.trace` -- execution trace recording and the
  time-breakdown accounting (useful work, checkpointing, re-execution,
  recovery, downtime, ABFT overhead) from which waste is computed.
* :mod:`repro.simulation.runner` -- Monte-Carlo driver that repeats a
  simulation over many independent failure draws and aggregates the results
  (the paper averages 1000 executions per configuration).
* :mod:`repro.simulation.table` -- the columnar per-trial result table
  (structured NumPy array) every campaign produces; summaries are
  vectorized reductions over its columns.
* :mod:`repro.simulation.schedule` -- the segment-schedule IR: protocols
  compile to a run-length-compressed :class:`~repro.simulation.schedule.
  Schedule` of typed segments; the
  :class:`~repro.simulation.schedule.ScheduleInterpreter` is the canonical
  event walk over it.
* :mod:`repro.simulation.vectorized` -- the across-trials engine behind
  ``backend="vectorized"``: executes the same compiled schedules,
  bit-identical to the event walk for the laws it supports.
"""

from repro.simulation.events import Event, EventKind
from repro.simulation.engine import SimulationEngine, SimulationError
from repro.simulation.rng import RandomStreams
from repro.simulation.table import TrialTable, TRIAL_DTYPE
from repro.simulation.trace import (
    CATEGORIES,
    ExecutionTrace,
    TimeBreakdown,
    TraceRecorder,
    WasteAccumulator,
)
from repro.simulation.runner import MonteCarloResult, MonteCarloRunner, run_monte_carlo
from repro.simulation.schedule import (
    AbftSegment,
    AtomicSegment,
    PeriodicSegment,
    Schedule,
    ScheduleInterpreter,
    ScheduleRun,
    SimulationHorizonExceeded,
    compile_schedule,
)
from repro.simulation.vectorized import (
    ENGINE_BACKENDS,
    VectorizedBackendError,
    VectorizedChunkedSimulator,
    VectorizedPhasedSimulator,
)

__all__ = [
    "Event",
    "EventKind",
    "SimulationEngine",
    "SimulationError",
    "RandomStreams",
    "CATEGORIES",
    "ExecutionTrace",
    "TimeBreakdown",
    "WasteAccumulator",
    "TraceRecorder",
    "TrialTable",
    "TRIAL_DTYPE",
    "MonteCarloResult",
    "MonteCarloRunner",
    "run_monte_carlo",
    "PeriodicSegment",
    "AtomicSegment",
    "AbftSegment",
    "Schedule",
    "ScheduleRun",
    "ScheduleInterpreter",
    "SimulationHorizonExceeded",
    "compile_schedule",
    "ENGINE_BACKENDS",
    "VectorizedBackendError",
    "VectorizedChunkedSimulator",
    "VectorizedPhasedSimulator",
]
