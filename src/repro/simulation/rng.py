"""Reproducible, independent random streams.

Monte-Carlo validation needs (a) reproducibility -- the same seed must give
the same waste down to the last bit, so regressions are detectable -- and
(b) independence between concerns: the stream that drives failure
inter-arrival times must not be perturbed when, say, node attribution draws
an extra sample.  NumPy's ``SeedSequence.spawn`` provides exactly this:
children streams are statistically independent and derived deterministically
from the parent seed.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Sequence

import numpy as np

__all__ = ["RandomStreams", "trial_seed_sequences"]


#: Per-root-seed memo of trial SeedSequence children.  Campaign layers call
#: ``generator_for_trial(i)`` for every trial of every sweep point; the
#: children depend only on ``(seed, i)``, so deriving them once per campaign
#: and reusing them across sweep points removes ~40% of the vectorized
#: engine's wall-clock.  Bounded to a handful of root seeds (sweeps reuse
#: one root seed across all points); evicted least-recently-used.
_TRIAL_SEQUENCES: "OrderedDict[int, list[np.random.SeedSequence]]" = OrderedDict()
_TRIAL_SEQUENCES_MAX_SEEDS = 8
#: Memoised entries per seed; campaigns beyond this derive the tail
#: transiently, so a one-off huge campaign cannot pin memory for the
#: process lifetime.  16k covers the 10k-trial benchmark sweep with room
#: to spare while bounding the memo at ~6 MB per seed (~50 MB worst case
#: over the seed limit).
_TRIAL_SEQUENCES_MAX_LENGTH = 1 << 14
_TRIAL_SEQUENCES_LOCK = threading.Lock()


def trial_seed_sequences(seed: int, count: int) -> Sequence[np.random.SeedSequence]:
    """The first ``count`` per-trial seed sequences of root ``seed``, memoised.

    Entry ``i`` is exactly the sequence
    ``np.random.SeedSequence(entropy=seed, spawn_key=(i, 0))`` that
    :meth:`RandomStreams.generator_for_trial` derives, so generators built
    from the memoised sequences are bit-identical to the uncached path
    (``SeedSequence`` is immutable; ``generate_state`` is a pure function of
    its construction arguments, so sharing one instance across campaigns is
    safe).  The returned list is shared -- callers must treat it as
    read-only and index it, not mutate it.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    memoised = min(count, _TRIAL_SEQUENCES_MAX_LENGTH)
    with _TRIAL_SEQUENCES_LOCK:
        sequences = _TRIAL_SEQUENCES.get(seed)
        if sequences is None:
            while len(_TRIAL_SEQUENCES) >= _TRIAL_SEQUENCES_MAX_SEEDS:
                _TRIAL_SEQUENCES.popitem(last=False)
            sequences = []
            _TRIAL_SEQUENCES[seed] = sequences
        else:
            _TRIAL_SEQUENCES.move_to_end(seed)
        while len(sequences) < memoised:
            sequences.append(
                np.random.SeedSequence(
                    entropy=seed, spawn_key=(len(sequences), 0)
                )
            )
    if count <= _TRIAL_SEQUENCES_MAX_LENGTH:
        return sequences
    # Oversized campaign: the tail is derived transiently (the returned
    # list is a copy, garbage-collected with the campaign) so the memo
    # stays bounded.
    return sequences + [
        np.random.SeedSequence(entropy=seed, spawn_key=(index, 0))
        for index in range(_TRIAL_SEQUENCES_MAX_LENGTH, count)
    ]


class RandomStreams:
    """A family of named, independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Root seed.  ``None`` derives a nondeterministic seed from the OS.

    Examples
    --------
    >>> streams = RandomStreams(seed=1234)
    >>> a = streams.get("failures")
    >>> b = streams.get("nodes")
    >>> a is streams.get("failures")
    True
    >>> streams2 = RandomStreams(seed=1234)
    >>> float(a.random()) == float(streams2.get("failures").random())
    True
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = seed
        self._root = np.random.SeedSequence(seed)
        self._streams: Dict[str, np.random.Generator] = {}
        self._spawned: Dict[str, np.random.SeedSequence] = {}

    @property
    def seed(self) -> Optional[int]:
        """The root seed this family was created from (``None`` if entropy-based)."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The mapping from name to child seed is deterministic in the *order of
        first use*; to guarantee cross-run reproducibility, create streams in
        a fixed order (the runners in this library always do).
        """
        if name not in self._streams:
            child = self._root.spawn(1)[0]
            self._spawned[name] = child
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def child(self, index: int) -> "RandomStreams":
        """Derive an independent child family (one per Monte-Carlo trial).

        ``child(i)`` is deterministic given the parent seed and ``i`` and
        independent of ``child(j)`` for ``j != i``, so trials can be run in
        any order (or in parallel) without changing results.
        """
        if index < 0:
            raise ValueError(f"index must be non-negative, got {index}")
        if self._seed is None:
            child_seq = np.random.SeedSequence(entropy=None)
        else:
            child_seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(index,))
        family = RandomStreams.__new__(RandomStreams)
        family._seed = None
        family._root = child_seq
        family._streams = {}
        family._spawned = {}
        return family

    def generator_for_trial(self, index: int, name: str = "failures") -> np.random.Generator:
        """Shortcut: the ``name`` stream of the ``index``-th child family.

        Bit-identical to ``child(index).get(name)`` -- whatever ``name``,
        the first stream of a fresh child family is the first spawn of
        ``SeedSequence(entropy=seed, spawn_key=(index,))``, whose spawn key
        is ``(index, 0)`` by NumPy's spawning rule.  Building that sequence
        directly halves the derivation cost, which matters when a campaign
        derives tens of thousands of per-trial generators.
        """
        if self._seed is None:
            return self.child(index).get(name)
        if index < 0:
            raise ValueError(f"index must be non-negative, got {index}")
        return np.random.default_rng(
            np.random.SeedSequence(entropy=self._seed, spawn_key=(index, 0))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RandomStreams(seed={self._seed!r}, streams={sorted(self._streams)})"
