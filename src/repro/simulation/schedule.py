"""Segment-schedule IR: one protocol description, two execution backends.

The paper's protocols (Sections III-V) are compositions of a small set of
deterministic building blocks -- periodically checkpointed sections, atomic
(unprotected or checkpoint-only) segments and ABFT-protected stretches --
scheduled in an order that depends only on the configuration, never on the
failure draws.  This module makes that composition a first-class value: a
protocol *compiles* to a :class:`Schedule` (a run-length-compressed list of
:class:`PeriodicSegment` / :class:`AtomicSegment` / :class:`AbftSegment`
with per-segment restart stages), and both Monte-Carlo backends execute the
compiled object:

* the **event backend** walks it one trial at a time through
  :class:`ScheduleInterpreter` against a
  :class:`~repro.failures.timeline.FailureTimeline` and a
  :class:`~repro.simulation.trace.TraceRecorder`;
* the **vectorized backend**
  (:class:`~repro.simulation.vectorized.VectorizedPhasedSimulator`) advances
  all trials of a campaign simultaneously over the same segments.

Adding a protocol is therefore one ``compile_schedule()`` function
registered with ``register_protocol(name, kind="schedule")`` -- not a pair
of hand-written walks that can drift apart.

Bit-identity contract
---------------------
The interpreter replays the historical hand-written event walks IEEE-754
op for op: segment sums, the final-chunk slack (``work_done + chunk >=
work - 1e-12``), partial restart accounting (``min(remaining, duration)``
per stage in order), ABFT progress splits (``useful = elapsed / phi``) and
the cap check at the top of every loop iteration.  The pinned-hex bench
baselines and the event/vectorized property tests hold across the walks
exactly because these operations are pinned; do not "simplify" them.

Run-length compression
----------------------
:class:`Schedule` stores ``(segment block, repeat count)`` runs, so a
1000-epoch weak-scaling workload whose epochs compile identically costs two
runs, not thousands of segment objects.  Frozen-dataclass equality is what
makes the compression sound: two segments compare equal iff they execute
identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence, Tuple, Union

from repro.simulation.events import EventKind
from repro.simulation.trace import TraceRecorder

__all__ = [
    "SimulationHorizonExceeded",
    "RestartStages",
    "WORK_EPSILON",
    "PeriodicSegment",
    "AtomicSegment",
    "AbftSegment",
    "Segment",
    "ScheduleRun",
    "Schedule",
    "ScheduleInterpreter",
    "compile_schedule",
    "periodic_chunk_size",
]

#: Ordered ``(category, duration)`` pairs paid after a failure.
RestartStages = Sequence[Tuple[str, float]]

#: The event walk's "final chunk" slack (``work_done + chunk >= work -
#: WORK_EPSILON``) and the ABFT section's remaining-work cutoff.  Pinned:
#: changing it shifts every simulated result.
WORK_EPSILON = 1e-12

#: Signature of the cap check injected into the walk functions.
CapCheck = Callable[[float], None]


class SimulationHorizonExceeded(RuntimeError):
    """Raised internally when a run exceeds the configured makespan cap.

    In infeasible regimes (e.g. the checkpoint cost exceeds the MTBF) a
    simulated execution may essentially never finish; the cap turns that into
    a truncated trace whose waste is ~1 instead of an endless loop.
    """

    def __init__(self, time: float) -> None:
        super().__init__(f"simulation exceeded its makespan cap at t={time:.6g}s")
        self.time = time


def _no_cap(time: float) -> None:
    """Default cap check: never truncate."""


# --------------------------------------------------------------------- #
# Segments
# --------------------------------------------------------------------- #
def periodic_chunk_size(period: float, checkpoint_cost: float, work: float) -> float:
    """Chunk size of a periodic section for a checkpointing ``period``.

    An invalid period (NaN, or not larger than the checkpoint cost) means
    "no intermediate checkpoint": the whole section is a single chunk, the
    degenerate behaviour a real runtime would adopt when the optimal-period
    formula has no solution.
    """
    period = float(period)
    if math.isnan(period) or period <= checkpoint_cost:
        return float(work)
    return period - checkpoint_cost


@dataclass(frozen=True)
class PeriodicSegment:
    """``work`` seconds under periodic checkpointing.

    Work is cut into chunks of ``chunk_size`` seconds, each followed by a
    checkpoint of ``checkpoint_cost`` seconds (the last chunk only when
    ``trailing``); a failure loses the un-checkpointed progress and pays
    ``stages``, itself restartable.  ``work <= 0`` degenerates to a lone
    trailing checkpoint when ``trailing`` and the cost is positive, nothing
    otherwise.

    ``during`` labels the segment's ``FAILURE`` event payloads (the NoFT
    walk uses ``"no-ft"``); ``enter_event`` / ``exit_event`` optionally
    bracket the segment with phase markers in recorded traces.
    """

    work: float
    chunk_size: float
    checkpoint_cost: float
    trailing: bool
    stages: RestartStages
    during: str = "periodic"
    enter_event: Optional[EventKind] = None
    exit_event: Optional[EventKind] = None


@dataclass(frozen=True)
class AtomicSegment:
    """``work`` plus an optional trailing checkpoint, executed atomically.

    A failure anywhere in the segment (work or trailing checkpoint) pays
    ``stages`` and re-executes it entirely.  Zero-duration segments execute
    nothing (phase markers, if any, are still recorded).
    """

    work: float
    checkpoint_cost: float
    stages: RestartStages
    during: str = "unprotected"
    enter_event: Optional[EventKind] = None
    exit_event: Optional[EventKind] = None


@dataclass(frozen=True)
class AbftSegment:
    """``work`` seconds of computation under ABFT protection.

    The computation is slowed by ``phi``; a failure pays ``stages`` but
    loses no work (the surviving processes keep their data and the failed
    process's data is rebuilt).  A partial checkpoint of the LIBRARY
    dataset (``exit_checkpoint_cost``) closes the segment; a failure during
    that write is an ABFT failure (the dataset is still reconstructible)
    and the write is redone.  The segment brackets itself with
    ``LIBRARY_PHASE_START`` / ``LIBRARY_PHASE_END`` markers in recorded
    traces, exactly like the historical ``_abft_section`` walk.
    """

    work: float
    phi: float
    stages: RestartStages
    exit_checkpoint_cost: float = 0.0


Segment = Union[PeriodicSegment, AtomicSegment, AbftSegment]


# --------------------------------------------------------------------- #
# Schedule: run-length-compressed segment program
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScheduleRun:
    """A block of segments repeated ``count`` times back to back."""

    segments: Tuple[Segment, ...]
    count: int = 1

    def __post_init__(self) -> None:
        if self.count <= 0 or int(self.count) != self.count:
            raise ValueError(f"count must be a positive integer, got {self.count}")


@dataclass(frozen=True)
class Schedule:
    """A compiled protocol: segments to execute, in order, RLE-compressed.

    Iterating a schedule yields the expanded segment sequence; ``len()``
    is the expanded segment count.  ``runs`` stays compact for workloads
    with repeating structure (identical epochs compress into one run).
    """

    runs: Tuple[ScheduleRun, ...] = field(default_factory=tuple)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_segments(cls, segments: Iterable[Segment]) -> "Schedule":
        """Build a schedule from a flat segment sequence (RLE-compressed).

        Consecutive identical segments collapse into one counted run;
        frozen-dataclass equality guarantees collapsed segments execute
        identically.
        """
        runs: list[ScheduleRun] = []
        for segment in segments:
            if runs and runs[-1].segments == (segment,):
                runs[-1] = ScheduleRun(runs[-1].segments, runs[-1].count + 1)
            else:
                runs.append(ScheduleRun((segment,), 1))
        return cls(tuple(runs))

    @classmethod
    def from_blocks(cls, blocks: Iterable[Sequence[Segment]]) -> "Schedule":
        """Build a schedule from per-epoch segment blocks (RLE-compressed).

        Consecutive identical blocks (e.g. the identical epochs of a
        weak-scaling workload) collapse into one counted run; empty blocks
        are dropped.
        """
        runs: list[ScheduleRun] = []
        for block in blocks:
            segments = tuple(block)
            if not segments:
                continue
            if runs and runs[-1].segments == segments:
                runs[-1] = ScheduleRun(segments, runs[-1].count + 1)
            else:
                runs.append(ScheduleRun(segments, 1))
        return cls(tuple(runs))

    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[Segment]:
        for run in self.runs:
            for _ in range(run.count):
                yield from run.segments

    def __len__(self) -> int:
        return sum(len(run.segments) * run.count for run in self.runs)

    @property
    def segment_count(self) -> int:
        """Expanded number of segments."""
        return len(self)

    @property
    def run_count(self) -> int:
        """Number of compressed runs (the stored size)."""
        return len(self.runs)

    @property
    def segments(self) -> Tuple[Segment, ...]:
        """The expanded segment sequence as a tuple."""
        return tuple(self)


# --------------------------------------------------------------------- #
# Event-walk building blocks
# --------------------------------------------------------------------- #
# These functions ARE the event backend: the historical hand-written
# ProtocolSimulator walks were moved here verbatim (parameterized by the
# compiled segment fields instead of the simulator's attributes) and the
# base-class helpers now delegate to them.  Every arithmetic operation and
# its order is pinned by the bit-identity contract.


def run_restart(
    time: float,
    timeline: Any,
    recorder: TraceRecorder,
    stages: RestartStages,
    *,
    check_cap: CapCheck = _no_cap,
) -> float:
    """Perform a restart sequence (downtime, recovery, ...), restartable.

    ``stages`` is an ordered list of ``(category, duration)`` pairs, e.g.
    ``[("downtime", D), ("recovery", R)]``.  If a failure strikes before
    the whole sequence completes, the time already spent is charged to
    the categories reached so far and the sequence starts over.
    Returns the time at which the sequence finally completes.
    """
    total = sum(duration for _, duration in stages)
    if total <= 0.0:
        return time
    recorder.record(time, EventKind.RECOVERY_START)
    while True:
        check_cap(time)
        next_failure = timeline.next_failure_after(time)
        if next_failure >= time + total:
            for category, duration in stages:
                recorder.account(category, duration)
            recorder.record(time + total, EventKind.RECOVERY_END)
            return time + total
        # The restart itself is interrupted: charge what was spent, count
        # the failure, and start the sequence over.
        elapsed = next_failure - time
        remaining = elapsed
        for category, duration in stages:
            spent = min(remaining, duration)
            if spent > 0.0:
                recorder.account(category, spent)
            remaining -= spent
            if remaining <= 0.0:
                break
        recorder.record(next_failure, EventKind.FAILURE, during="restart")
        time = next_failure


def run_checkpoint(
    time: float,
    timeline: Any,
    recorder: TraceRecorder,
    *,
    checkpoint_cost: float,
    restart_stages: RestartStages,
    redo_on_failure: bool = True,
    check_cap: CapCheck = _no_cap,
) -> float:
    """Write one checkpoint, handling failures during the write.

    With ``redo_on_failure`` (default) a failure during the write pays the
    given restart sequence and the checkpoint is attempted again; this is
    the behaviour used for the composite's exit partial checkpoint, where
    the LIBRARY dataset remains reconstructible by ABFT while the write
    is redone.
    """
    if checkpoint_cost <= 0.0:
        return time
    while True:
        check_cap(time)
        next_failure = timeline.next_failure_after(time)
        if next_failure >= time + checkpoint_cost:
            recorder.account("checkpointing", checkpoint_cost)
            recorder.record(time + checkpoint_cost, EventKind.CHECKPOINT_END)
            return time + checkpoint_cost
        elapsed = next_failure - time
        recorder.account("lost_work", elapsed)
        recorder.record(next_failure, EventKind.FAILURE, during="checkpoint")
        time = run_restart(
            next_failure, timeline, recorder, restart_stages, check_cap=check_cap
        )
        if not redo_on_failure:
            return time


def run_periodic_section(
    time: float,
    work: float,
    timeline: Any,
    recorder: TraceRecorder,
    *,
    chunk_size: float,
    checkpoint_cost: float,
    trailing_checkpoint: bool,
    restart_stages: RestartStages,
    during: str = "periodic",
    check_cap: CapCheck = _no_cap,
) -> float:
    """Execute ``work`` seconds of work under periodic checkpointing.

    The section starts from a protected state (job start, split checkpoint
    or previous periodic checkpoint).  Work is cut into chunks of
    ``chunk_size`` seconds, each followed by a checkpoint; a failure rolls
    back to the last completed checkpoint.  The last (possibly partial)
    chunk is followed by a checkpoint only when ``trailing_checkpoint``.
    Compile period-based protocols through :func:`periodic_chunk_size`,
    which maps invalid periods to the single-chunk degenerate case.
    """
    if work <= 0.0:
        if trailing_checkpoint and checkpoint_cost > 0.0:
            return run_checkpoint(
                time,
                timeline,
                recorder,
                checkpoint_cost=checkpoint_cost,
                restart_stages=restart_stages,
                check_cap=check_cap,
            )
        return time
    if math.isnan(chunk_size) or chunk_size <= 0.0:
        chunk_size = work

    work_done = 0.0
    while work_done < work:
        chunk = min(chunk_size, work - work_done)
        is_last = work_done + chunk >= work - WORK_EPSILON
        do_checkpoint = (not is_last) or trailing_checkpoint
        segment = chunk + (checkpoint_cost if do_checkpoint else 0.0)
        check_cap(time)
        next_failure = timeline.next_failure_after(time)
        if next_failure >= time + segment:
            recorder.account("useful_work", chunk)
            if do_checkpoint and checkpoint_cost > 0.0:
                recorder.account("checkpointing", checkpoint_cost)
                recorder.record(time + segment, EventKind.CHECKPOINT_END)
            time += segment
            work_done += chunk
        else:
            elapsed = next_failure - time
            recorder.account("lost_work", elapsed)
            recorder.record(next_failure, EventKind.FAILURE, during=during)
            time = run_restart(
                next_failure, timeline, recorder, restart_stages, check_cap=check_cap
            )
            # Rollback: work_done stays at the last completed checkpoint.
    return time


def run_atomic_segment(
    time: float,
    work: float,
    timeline: Any,
    recorder: TraceRecorder,
    *,
    checkpoint_cost: float,
    restart_stages: RestartStages,
    during: str = "unprotected",
    check_cap: CapCheck = _no_cap,
) -> float:
    """Execute ``work`` + an optional trailing checkpoint atomically.

    Used for the composite's short GENERAL phase: no intermediate
    checkpoint is taken, so a failure anywhere in the segment (or in its
    trailing partial checkpoint) re-executes it entirely from the previous
    protected state (reached through the ``restart_stages`` sequence).
    """
    segment = work + checkpoint_cost
    if segment <= 0.0:
        return time
    while True:
        check_cap(time)
        next_failure = timeline.next_failure_after(time)
        if next_failure >= time + segment:
            if work > 0.0:
                recorder.account("useful_work", work)
            if checkpoint_cost > 0.0:
                recorder.account("checkpointing", checkpoint_cost)
                recorder.record(time + segment, EventKind.CHECKPOINT_END)
            return time + segment
        elapsed = next_failure - time
        recorder.account("lost_work", elapsed)
        recorder.record(next_failure, EventKind.FAILURE, during=during)
        time = run_restart(
            next_failure, timeline, recorder, restart_stages, check_cap=check_cap
        )


def _account_abft_progress(
    recorder: TraceRecorder, elapsed: float, phi: float
) -> None:
    """Split ABFT-protected wall-clock time into progress and overhead."""
    if elapsed <= 0.0:
        return
    useful = elapsed / phi
    recorder.account("useful_work", useful)
    recorder.account("abft_overhead", elapsed - useful)


def run_abft_section(
    time: float,
    work: float,
    timeline: Any,
    recorder: TraceRecorder,
    *,
    phi: float,
    restart_stages: RestartStages,
    exit_checkpoint_cost: float,
    check_cap: CapCheck = _no_cap,
) -> float:
    """Execute ``work`` seconds of computation under ABFT protection.

    The computation is slowed by ``phi``; a failure pays ``restart_stages``
    (downtime, REMAINDER reload, ABFT reconstruction) but loses no work
    (the surviving processes keep their data and the failed process's data
    is rebuilt).  A partial checkpoint of the LIBRARY dataset
    (``exit_checkpoint_cost``) is written when the call returns.
    """
    scaled_remaining = work * phi
    recorder.record(time, EventKind.LIBRARY_PHASE_START)
    while scaled_remaining > WORK_EPSILON:
        check_cap(time)
        next_failure = timeline.next_failure_after(time)
        if next_failure >= time + scaled_remaining:
            _account_abft_progress(recorder, scaled_remaining, phi)
            time += scaled_remaining
            scaled_remaining = 0.0
        else:
            elapsed = next_failure - time
            _account_abft_progress(recorder, elapsed, phi)
            scaled_remaining -= elapsed
            recorder.record(next_failure, EventKind.FAILURE, during="abft")
            recorder.record(next_failure, EventKind.ABFT_RECOVERY_START)
            time = run_restart(
                next_failure, timeline, recorder, restart_stages, check_cap=check_cap
            )
            recorder.record(time, EventKind.ABFT_RECOVERY_END)
    if exit_checkpoint_cost > 0.0:
        time = run_checkpoint(
            time,
            timeline,
            recorder,
            checkpoint_cost=exit_checkpoint_cost,
            restart_stages=restart_stages,
            check_cap=check_cap,
        )
    recorder.record(time, EventKind.LIBRARY_PHASE_END)
    return time


# --------------------------------------------------------------------- #
# Interpreter
# --------------------------------------------------------------------- #
class ScheduleInterpreter:
    """Event backend of the segment IR: one trial, one schedule, one walk.

    Executes a :class:`Schedule` (or any segment iterable) against a
    :class:`~repro.failures.timeline.FailureTimeline` and a
    :class:`~repro.simulation.trace.TraceRecorder`, raising
    :class:`SimulationHorizonExceeded` once the clock passes
    ``max_makespan`` (``float("inf")`` disables the cap).
    """

    def __init__(self, *, max_makespan: float = float("inf")) -> None:
        self._max_makespan = float(max_makespan)

    @property
    def max_makespan(self) -> float:
        """The truncation cap, in seconds."""
        return self._max_makespan

    def check_cap(self, time: float) -> None:
        """Raise :class:`SimulationHorizonExceeded` past the cap."""
        if time > self._max_makespan:
            raise SimulationHorizonExceeded(time)

    # ------------------------------------------------------------------ #
    def run(
        self,
        schedule: Union[Schedule, Iterable[Segment]],
        timeline: Any,
        recorder: TraceRecorder,
        *,
        start_time: float = 0.0,
    ) -> float:
        """Execute every segment in order; return the final makespan."""
        time = float(start_time)
        for segment in schedule:
            time = self.execute_segment(segment, time, timeline, recorder)
        return time

    def execute_segment(
        self,
        segment: Segment,
        time: float,
        timeline: Any,
        recorder: TraceRecorder,
    ) -> float:
        """Execute one segment starting at ``time``; return the end time."""
        if isinstance(segment, PeriodicSegment):
            if segment.enter_event is not None:
                recorder.record(time, segment.enter_event)
            time = run_periodic_section(
                time,
                segment.work,
                timeline,
                recorder,
                chunk_size=segment.chunk_size,
                checkpoint_cost=segment.checkpoint_cost,
                trailing_checkpoint=segment.trailing,
                restart_stages=segment.stages,
                during=segment.during,
                check_cap=self.check_cap,
            )
            if segment.exit_event is not None:
                recorder.record(time, segment.exit_event)
            return time
        if isinstance(segment, AtomicSegment):
            if segment.enter_event is not None:
                recorder.record(time, segment.enter_event)
            time = run_atomic_segment(
                time,
                segment.work,
                timeline,
                recorder,
                checkpoint_cost=segment.checkpoint_cost,
                restart_stages=segment.stages,
                during=segment.during,
                check_cap=self.check_cap,
            )
            if segment.exit_event is not None:
                recorder.record(time, segment.exit_event)
            return time
        if isinstance(segment, AbftSegment):
            return run_abft_section(
                time,
                segment.work,
                timeline,
                recorder,
                phi=segment.phi,
                restart_stages=segment.stages,
                exit_checkpoint_cost=segment.exit_checkpoint_cost,
                check_cap=self.check_cap,
            )
        raise TypeError(
            f"unknown segment type {type(segment).__name__}; expected "
            "PeriodicSegment, AtomicSegment or AbftSegment"
        )


# --------------------------------------------------------------------- #
# Registry front door
# --------------------------------------------------------------------- #
def compile_schedule(
    protocol: str, parameters: Any, workload: Any, **kwargs: Any
) -> Schedule:
    """Compile a registered protocol into its :class:`Schedule`.

    Resolves ``protocol`` (canonical name or alias) through the registry
    and calls its ``register_protocol(name, kind="schedule")`` compiler
    with the protocol's knobs (periods, safeguard, ...).  Both Monte-Carlo
    backends of a registered protocol execute the object this returns.
    """
    from repro.core.registry import resolve_protocol

    entry = resolve_protocol(protocol)
    if entry.schedule_fn is None:
        raise ValueError(
            f"protocol {entry.name!r} has no registered schedule compiler; "
            "register one with register_protocol(name, kind='schedule')"
        )
    return entry.schedule_fn(parameters, workload, **kwargs)
