"""Monte-Carlo driver: repeat a stochastic simulation and aggregate results.

The paper's validation averages one thousand independent executions for every
parameter combination (Section V-A).  :func:`run_monte_carlo` reproduces this
campaign structure: a *single-run* callable is invoked with independent,
deterministically derived random generators, the per-trial samples are
collected into a columnar :class:`~repro.simulation.table.TrialTable`, and
the waste / makespan / failure-count distributions are summarised with
vectorized reductions over its columns.

For large campaigns, :mod:`repro.campaign` fans the trials out over a worker
pool with bit-identical results (same root seed, any worker count); the
``parallel=`` / ``workers=`` options of :class:`MonteCarloRunner` expose the
same machinery.  The fully vectorized across-trials engine
(:mod:`repro.simulation.vectorized`) produces the same tables without a
Python loop at all, for the protocols and failure laws it supports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.simulation.rng import RandomStreams, trial_seed_sequences
from repro.simulation.table import TrialTable
from repro.simulation.trace import ExecutionTrace
from repro.utils.stats import SummaryStatistics

__all__ = [
    "MonteCarloResult",
    "MonteCarloRunner",
    "run_monte_carlo",
    "simulate_trial_range",
]

SimulateOnce = Callable[[np.random.Generator], ExecutionTrace]


@dataclass(frozen=True)
class MonteCarloResult:
    """Aggregated outcome of a Monte-Carlo simulation campaign.

    Attributes
    ----------
    protocol:
        Protocol name (taken from the first trace).
    runs:
        Number of independent executions.
    waste:
        Summary statistics of the per-run waste.
    makespan:
        Summary statistics of the per-run makespan (seconds).
    failures:
        Summary statistics of the per-run failure counts.
    application_time:
        The common fault-free application duration ``T0`` (seconds).
    table:
        The columnar per-trial results backing the summaries (the canonical
        campaign output; summaries are vectorized reductions over it).
    traces:
        The individual traces when ``keep_traces`` was requested, else empty.
    """

    protocol: str
    runs: int
    waste: SummaryStatistics
    makespan: SummaryStatistics
    failures: SummaryStatistics
    application_time: float
    table: Optional[TrialTable] = None
    traces: tuple[ExecutionTrace, ...] = field(default_factory=tuple)

    @classmethod
    def from_table(
        cls,
        table: TrialTable,
        *,
        confidence: float = 0.95,
        traces: Sequence[ExecutionTrace] = (),
    ) -> "MonteCarloResult":
        """Summarise a :class:`TrialTable` into a campaign result."""
        return cls(
            protocol=table.protocol,
            runs=table.runs,
            waste=table.summarize("waste", confidence),
            makespan=table.summarize("makespan", confidence),
            failures=table.summarize("failure_count", confidence),
            application_time=table.application_time,
            table=table,
            traces=tuple(traces),
        )

    @property
    def mean_waste(self) -> float:
        """Convenience accessor for the mean simulated waste."""
        return self.waste.mean

    @property
    def mean_makespan(self) -> float:
        """Convenience accessor for the mean simulated makespan."""
        return self.makespan.mean

    @property
    def mean_failures(self) -> float:
        """Convenience accessor for the mean number of failures per run."""
        return self.failures.mean

    @property
    def truncated(self) -> int:
        """Number of trials cut short by the ``max_slowdown`` cap."""
        if self.table is None:
            return 0
        return self.table.truncated_count


def run_monte_carlo(
    simulate_once: SimulateOnce,
    *,
    runs: int,
    seed: Optional[int] = None,
    keep_traces: bool = False,
    confidence: float = 0.95,
) -> MonteCarloResult:
    """Run ``simulate_once`` ``runs`` times with independent RNG streams.

    Parameters
    ----------
    simulate_once:
        Callable taking a :class:`numpy.random.Generator` and returning an
        :class:`~repro.simulation.trace.ExecutionTrace`.
    runs:
        Number of independent executions (the paper uses 1000).
    seed:
        Root seed; trial ``i`` always receives the same child stream for a
        given root seed, regardless of execution order.
    keep_traces:
        Store every individual trace in the result (memory heavy; off by
        default).
    confidence:
        Confidence level of the reported intervals.
    """
    if runs <= 0:
        raise ValueError(f"runs must be a positive integer, got {runs}")
    table, traces = simulate_trial_range(
        simulate_once, seed=seed, start=0, stop=runs, keep_traces=keep_traces
    )
    return MonteCarloResult.from_table(table, confidence=confidence, traces=traces)


def simulate_trial_range(
    simulate_once: SimulateOnce,
    *,
    seed: Optional[int],
    start: int,
    stop: int,
    keep_traces: bool = False,
) -> tuple[TrialTable, list[ExecutionTrace]]:
    """Run trials ``start..stop-1`` and return their table slice.

    Each trial's generator is derived exactly as the serial runner derives
    it (``RandomStreams(seed).generator_for_trial(index)``), which is what
    lets the parallel executor split a campaign into batches and reassemble
    a bit-identical table.
    """
    if stop <= start:
        raise ValueError(f"empty trial range [{start}, {stop})")
    streams = RandomStreams(seed)
    # Full seeded campaigns draw the per-trial SeedSequence children from
    # the process-wide memo: sweep runners call this for every grid point
    # with the same root seed, and the children depend only on
    # (seed, index).  Mid-campaign batches (start > 0, the process-pool
    # workers) derive per index instead -- growing the memo from 0 would
    # cost them the whole prefix for one slice.
    sequences = (
        trial_seed_sequences(seed, stop)
        if seed is not None and start == 0
        else None
    )
    table = TrialTable.empty(stop - start)
    traces: list[ExecutionTrace] = []
    for index in range(start, stop):
        if sequences is None:
            rng = streams.generator_for_trial(index)
        else:
            rng = np.random.default_rng(sequences[index])
        trace = simulate_once(rng)
        if index == start:
            table = TrialTable(
                table.data,
                protocol=trace.protocol,
                application_time=trace.application_time,
            )
        table.record_trace(index - start, trace)
        if keep_traces:
            traces.append(trace)
    return table, traces


class MonteCarloRunner:
    """Object-oriented wrapper around :func:`run_monte_carlo`.

    Useful when the same campaign settings (number of runs, seed policy,
    confidence level) are applied to many different simulators, e.g. when
    sweeping the (MTBF, alpha) grid of Figure 7.

    Parameters
    ----------
    runs / seed / keep_traces / confidence:
        As in :func:`run_monte_carlo`.
    parallel:
        Fan the trials of each campaign out over a worker pool
        (:class:`repro.campaign.ParallelMonteCarloExecutor`).  Results are
        bit-identical to the serial path for any worker count.
    workers:
        Worker count when ``parallel`` is set; ``None`` uses the CPU count.
    backend:
        Pool backend when ``parallel`` is set: ``"process"`` (default,
        requires a picklable ``simulate_once``) or ``"thread"``.
    """

    def __init__(
        self,
        *,
        runs: int = 100,
        seed: Optional[int] = None,
        keep_traces: bool = False,
        confidence: float = 0.95,
        parallel: bool = False,
        workers: Optional[int] = None,
        backend: str = "process",
    ) -> None:
        if runs <= 0:
            raise ValueError(f"runs must be a positive integer, got {runs}")
        self._runs = int(runs)
        self._seed = seed
        self._keep_traces = bool(keep_traces)
        self._confidence = float(confidence)
        self._parallel = bool(parallel)
        self._workers = workers
        self._backend = backend
        if self._parallel:
            # Validate the pool settings eagerly (fail at construction, not
            # mid-campaign); the import is deferred to avoid a cycle.
            from repro.campaign.executor import ParallelMonteCarloExecutor

            self._executor = ParallelMonteCarloExecutor(
                workers=workers, backend=backend
            )
        else:
            self._executor = None

    @property
    def runs(self) -> int:
        """Number of independent executions per campaign."""
        return self._runs

    @property
    def seed(self) -> Optional[int]:
        """Root seed shared by every campaign launched by this runner."""
        return self._seed

    @property
    def parallel(self) -> bool:
        """Whether campaigns fan trials out over a worker pool."""
        return self._parallel

    def _campaign(
        self, simulate_once: SimulateOnce, seed: Optional[int]
    ) -> MonteCarloResult:
        if self._executor is not None:
            return self._executor.run(
                simulate_once,
                runs=self._runs,
                seed=seed,
                keep_traces=self._keep_traces,
                confidence=self._confidence,
            )
        return run_monte_carlo(
            simulate_once,
            runs=self._runs,
            seed=seed,
            keep_traces=self._keep_traces,
            confidence=self._confidence,
        )

    def run(self, simulate_once: SimulateOnce) -> MonteCarloResult:
        """Run one campaign for the given single-run callable."""
        return self._campaign(simulate_once, self._seed)

    def run_many(
        self, simulators: Sequence[SimulateOnce]
    ) -> list[MonteCarloResult]:
        """Run one campaign per simulator, with a distinct seed offset each.

        The ``i``-th simulator uses root seed ``seed + i`` when a seed was
        given, so that campaigns remain reproducible yet independent; with
        ``seed=None`` every campaign draws fresh OS entropy (campaigns are
        independent but not reproducible).  This policy is pinned by the
        unit tests -- changing it silently would invalidate cached sweeps.
        """
        results = []
        for index, simulate_once in enumerate(simulators):
            seed = None if self._seed is None else self._seed + index
            results.append(self._campaign(simulate_once, seed))
        return results
