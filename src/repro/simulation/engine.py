"""A small, general-purpose discrete-event simulation engine.

The engine is a textbook event-queue simulator: events are kept in a binary
heap ordered by timestamp, the clock jumps from event to event, and
registered handlers react to each event (possibly scheduling new ones).

The fault-tolerance protocol simulators of :mod:`repro.core.protocols` are
*time-walking* state machines layered on a
:class:`~repro.failures.timeline.FailureTimeline` for efficiency (they only
care about the next failure), but they share this engine for trace-driven
experiments and the engine is part of the public substrate so that users can
build richer platform models (per-node failures and repairs, contention on
the checkpoint store, ...) on top of it.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Mapping, Optional

from repro.simulation.events import Event, EventKind

__all__ = ["SimulationEngine", "SimulationError"]

Handler = Callable[["SimulationEngine", Event], None]


class SimulationError(RuntimeError):
    """Raised when the engine is driven into an inconsistent state."""


class SimulationEngine:
    """Event-queue simulator with handler dispatch.

    Examples
    --------
    >>> engine = SimulationEngine()
    >>> seen = []
    >>> def on_failure(engine, event):
    ...     seen.append(event.time)
    >>> engine.subscribe(EventKind.FAILURE, on_failure)
    >>> engine.schedule(5.0, EventKind.FAILURE)
    >>> engine.schedule(2.0, EventKind.FAILURE)
    >>> engine.run()
    >>> seen
    [2.0, 5.0]
    >>> engine.now
    5.0
    """

    def __init__(self, *, start_time: float = 0.0) -> None:
        if start_time < 0:
            raise ValueError(f"start_time must be non-negative, got {start_time}")
        self._now = float(start_time)
        self._queue: list[tuple[tuple[float, int], Event]] = []
        self._handlers: dict[Any, list[Handler]] = {}
        self._global_handlers: list[Handler] = []
        self._processed = 0
        self._stopped = False

    # ------------------------------------------------------------------ #
    # Clock and queue introspection
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still waiting in the queue."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Number of events dispatched so far."""
        return self._processed

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def schedule(
        self,
        time: float,
        kind: Any,
        payload: Optional[Mapping[str, Any]] = None,
    ) -> Event:
        """Schedule an event at absolute ``time`` and return it."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        event = Event(time=float(time), kind=kind, payload=dict(payload or {}))
        heapq.heappush(self._queue, (event.sort_key(), event))
        return event

    def schedule_after(
        self,
        delay: float,
        kind: Any,
        payload: Optional[Mapping[str, Any]] = None,
    ) -> Event:
        """Schedule an event ``delay`` seconds after the current time."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, kind, payload)

    def schedule_events(self, events: Iterable[Event]) -> None:
        """Schedule pre-built events (e.g. a failure trace)."""
        for event in events:
            if event.time < self._now:
                raise SimulationError(
                    f"cannot schedule event at t={event.time} before t={self._now}"
                )
            heapq.heappush(self._queue, (event.sort_key(), event))

    # ------------------------------------------------------------------ #
    # Handlers
    # ------------------------------------------------------------------ #
    def subscribe(self, kind: Any, handler: Handler) -> None:
        """Register ``handler`` for events of ``kind``."""
        self._handlers.setdefault(kind, []).append(handler)

    def subscribe_all(self, handler: Handler) -> None:
        """Register ``handler`` for every event regardless of kind."""
        self._global_handlers.append(handler)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stopped = True

    def step(self) -> Optional[Event]:
        """Dispatch the next event; return it, or ``None`` if the queue is empty."""
        if not self._queue:
            return None
        _, event = heapq.heappop(self._queue)
        if event.time < self._now:
            raise SimulationError(
                f"event queue corrupted: event at t={event.time} < now={self._now}"
            )
        self._now = event.time
        self._processed += 1
        for handler in self._global_handlers:
            handler(self, event)
        for handler in self._handlers.get(event.kind, ()):  # noqa: B905
            handler(self, event)
        return event

    def run(
        self,
        *,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run until the queue is empty, ``until`` is reached, or ``stop()``.

        Parameters
        ----------
        until:
            Optional absolute time; events strictly after it are left in the
            queue and the clock is advanced to ``until``.
        max_events:
            Optional cap on the number of dispatched events (guards against
            runaway self-scheduling models).
        """
        self._stopped = False
        dispatched = 0
        while self._queue and not self._stopped:
            next_time = self._queue[0][0][0]
            if until is not None and next_time > until:
                self._now = max(self._now, float(until))
                return
            self.step()
            dispatched += 1
            if max_events is not None and dispatched >= max_events:
                raise SimulationError(
                    f"max_events={max_events} reached; runaway event loop?"
                )
        if until is not None and not self._stopped:
            self._now = max(self._now, float(until))

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time`` without dispatching events."""
        if time < self._now:
            raise SimulationError(
                f"cannot move clock backwards from {self._now} to {time}"
            )
        self._now = float(time)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SimulationEngine(now={self._now:.3f}, pending={self.pending}, "
            f"processed={self._processed})"
        )
