"""Vectorized across-trials Monte-Carlo engines.

The event-driven simulators (:mod:`repro.core.protocols`) walk one trial at
a time through a Python state machine.  Their walks are compositions of a
small set of deterministic building blocks -- periodically checkpointed
sections, atomic (unprotected or checkpoint-only) segments, ABFT-protected
stretches and restartable recovery sequences -- scheduled in an order that
depends only on the configuration, never on the failure draws.  That makes
them batchable: the engines in this module keep one NumPy state vector per
quantity (clock, progress, failure cursor, segment index, mode) and advance
**all trials simultaneously**, one state-machine step per round.

Two engines are provided:

* :class:`VectorizedChunkedSimulator` -- a single periodically checkpointed
  section (``NoFT``, ``PurePeriodicCkpt``);
* :class:`VectorizedPhasedSimulator` -- an arbitrary deterministic sequence
  of periodic / atomic / ABFT segments (``BiPeriodicCkpt``,
  ``ABFT&PeriodicCkpt``), of which the chunked engine is the one-segment
  special case.

Bit-identical contract
----------------------
The engines are not approximations: for a given root seed they reproduce
the event backend **trial for trial, bit for bit** -- same makespan, waste,
failure count and per-category waste breakdown.  Two properties make this
possible:

* failure times are drawn in exactly the block pattern of
  :class:`~repro.failures.timeline.FailureTimeline` (``batch_size``
  inter-arrivals per refill, clamped, ``last + cumsum(block)``), from the
  same per-trial generator (``RandomStreams(seed).generator_for_trial(i)``)
  and the same failure-law model, through the model's
  :meth:`~repro.failures.base.FailureModel.trial_block_sampler`.  Laws
  whose block sampling is a pure function of the generator qualify
  directly (exponential, Weibull, log-normal), and trace replay qualifies
  through its vectorized sampler (per-trial rewindable cursors over one
  shared trace array) -- the registry flags all of them with
  ``register_failure_model(vectorized=True)``.  Subclasses of the flagged
  classes (whose overridden sampling the engine could not honour) fall
  back to the event backend;
* every arithmetic operation of the event walk (segment sums, partial
  restart accounting, ABFT progress splits, cap checks) is replayed with
  the same IEEE-754 operations in the same per-trial order, just batched
  across trials.

Two more properties matter at campaign scale:

* repeated runs of a compiled :class:`~repro.simulation.schedule.Schedule`
  execute as a loop over the *compressed* block -- the per-round arrays are
  sized by unique rounds, so a 1000-epoch weak-scaling workload costs the
  same setup and memory as a single epoch;
* :meth:`VectorizedPhasedSimulator.run_trial_range` simulates any
  contiguous ``[start, stop)`` slice of a campaign with the per-trial
  generators derived from the *absolute* indices, so
  :class:`~repro.campaign.executor.ShardedVectorizedExecutor` can fan one
  campaign over worker processes and reassemble bit-identical results.

The cross-validation tests assert exact ``==`` on every column, and the
sweep cache deliberately uses the same keys for both backends -- entries
are interchangeable.
"""

from __future__ import annotations

import math
import time
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

import repro.obs as _obs

from repro.failures.base import FailureModel
from repro.failures.exponential import ExponentialFailureModel
from repro.failures.timeline import DEFAULT_BATCH_SIZE
from repro.simulation.rng import RandomStreams, trial_seed_sequences
from repro.simulation.schedule import (
    WORK_EPSILON as _WORK_EPSILON,
    AbftSegment,
    AtomicSegment,
    PeriodicSegment,
    RestartStages,
    Schedule,
    Segment,
    periodic_chunk_size,
)
from repro.simulation.table import TrialTable
from repro.simulation.trace import CATEGORIES

__all__ = [
    "ENGINE_BACKENDS",
    "VectorizedBackendError",
    "VectorizedChunkedSimulator",
    "VectorizedPhasedSimulator",
    "PeriodicSegment",
    "AtomicSegment",
    "AbftSegment",
    "Segment",
    "periodic_chunk_size",
    "exponential_mtbf_or_raise",
    "vectorized_failure_model_or_raise",
    "supports_vectorized_backend",
    "vectorized_backend_obstacle",
    "note_backend_fallback",
    "reset_backend_fallback_notes",
]

#: Monte-Carlo engine backends selectable in the campaign/scenario layers.
#: ``"event"`` is the per-trial state-machine walk, ``"vectorized"`` the
#: across-trials engine of this module, ``"auto"`` picks the vectorized
#: engine whenever the (protocol, failure law) pair supports it.
ENGINE_BACKENDS = ("event", "vectorized", "auto")


class VectorizedBackendError(ValueError):
    """The vectorized backend cannot run the requested configuration.

    Raised with an actionable message naming the unsupported protocol or
    failure law and the supported alternatives, so a scenario author can fix
    the spec (or fall back to ``backend="event"``).
    """


def supports_vectorized_backend(
    vectorized_cls: Optional[type], failure_model: Optional[FailureModel]
) -> bool:
    """Whether the across-trials engine can run this configuration.

    The single source of the eligibility rule every backend-selecting layer
    (sweep runner, period refinement, regime maps) consults: a registered
    vectorized engine class, and a failure law whose block sampling the
    engine can replay -- ``None`` (the simulators' exponential default) or
    an *exact* instance of a law registered with
    ``register_failure_model(vectorized=True)`` (subclasses override the
    sampling the engine could not honour).
    """
    if vectorized_cls is None:
        return False
    if failure_model is None:
        return True
    from repro.core.registry import vectorized_law_classes

    return type(failure_model) in vectorized_law_classes()


def vectorized_backend_obstacle(
    vectorized_cls: Optional[type],
    failure_model: Optional[FailureModel],
    *,
    protocol: str,
    law: str,
    available: Sequence[str] = (),
) -> Optional[str]:
    """Why the across-trials engine cannot run this configuration.

    ``None`` when it can (the :func:`supports_vectorized_backend` rule
    holds); otherwise a human-readable detail naming the obstacle, shared
    by every layer that raises :class:`VectorizedBackendError` so the
    diagnostics cannot drift apart.  The supported-law list is derived from
    the failure-model registry, not hard-coded.
    """
    if vectorized_cls is None:
        return (
            f"protocol {protocol!r} has no vectorized engine "
            f"(available: {sorted(available)})"
        )
    if not supports_vectorized_backend(vectorized_cls, failure_model):
        from repro.core.registry import vectorized_law_names

        detail = f"failure law {law!r}"
        if failure_model is not None:
            detail += f" ({type(failure_model).__name__})"
        return (
            f"{detail} has no vectorized block sampling "
            f"(vectorized laws: {sorted(vectorized_law_names())})"
        )
    return None


def note_backend_fallback(detail: Optional[str]) -> None:
    """Report (once, to stderr) that ``backend='auto'`` chose the event engine.

    ``detail`` is the :func:`vectorized_backend_obstacle` message; ``None``
    is a no-op so call sites can pass the obstacle through unconditionally.
    Deduplicated on the message text via the structured-log helper's shared
    dedupe set (:func:`repro.obs.log`) -- a campaign sweeping hundreds of
    grid points over an unsupported (protocol, law) pair emits a single
    line, not one per point.  Diagnostics go to stderr: stdout stays
    machine-parseable.
    """
    if detail is None:
        return
    _obs.log(
        "note",
        "backend-fallback",
        dedupe=f"backend-fallback:{detail}",
        backend="auto",
        engine="event",
        detail=detail,
    )


def reset_backend_fallback_notes() -> None:
    """Forget reported notes so the next run may report them again.

    Delegates to :func:`repro.obs.reset_log_notes` -- the backend-fallback
    notes share the structured logger's dedupe set with every other
    deduplicated diagnostic, and ``repro.cli.main`` clears them all at
    once on entry.
    """
    _obs.reset_log_notes()


def exponential_mtbf_or_raise(
    failure_model: Optional[FailureModel], default_mtbf: float, *, protocol: str
) -> float:
    """The MTBF to vectorize at, enforcing the exponential-law restriction.

    Historical helper of the exponential-only engine, kept for callers that
    genuinely need a scalar MTBF.  ``None`` (the simulators' default) means
    the paper's exponential law at the platform MTBF; an explicit
    :class:`ExponentialFailureModel` is also accepted.  Anything else --
    including *subclasses* of the exponential model, whose overridden
    sampling the engine could not honour -- raises
    :class:`VectorizedBackendError`.  New code should prefer
    :func:`vectorized_failure_model_or_raise`, which accepts every
    registry-flagged vectorizable law.
    """
    if failure_model is None:
        return float(default_mtbf)
    if type(failure_model) is ExponentialFailureModel:
        return float(failure_model.mtbf)
    raise VectorizedBackendError(
        f"the vectorized backend for {protocol!r} supports only the "
        f"exponential failure law, got {type(failure_model).__name__}; "
        "use backend='event' for non-exponential laws"
    )


def vectorized_failure_model_or_raise(
    failure_model: Optional[FailureModel],
    default_mtbf: float,
    *,
    protocol: str,
) -> FailureModel:
    """The failure model to drive the across-trials engine with.

    ``None`` (the simulators' default) builds the paper's exponential law at
    the platform MTBF; an exact instance of any registry-flagged vectorized
    law (see :func:`repro.core.registry.vectorized_law_names` -- this
    includes trace replay, which batches through per-trial cursors) is
    passed through.  Anything else -- *subclasses* of the flagged classes,
    whose overridden sampling the engine could not honour, or laws never
    flagged vectorized -- raises :class:`VectorizedBackendError` naming the
    supported laws.
    """
    if failure_model is None:
        return ExponentialFailureModel(float(default_mtbf))
    from repro.core.registry import vectorized_law_classes, vectorized_law_names

    if type(failure_model) in vectorized_law_classes():
        return failure_model
    raise VectorizedBackendError(
        f"the vectorized backend for {protocol!r} has no batched sampling "
        f"for {type(failure_model).__name__} (vectorized laws: "
        f"{sorted(vectorized_law_names())}, exact classes only); "
        "use backend='event' for this law"
    )


# --------------------------------------------------------------------- #
# Segment dispatch kinds
# --------------------------------------------------------------------- #
# The segment types (PeriodicSegment / AtomicSegment / AbftSegment) and the
# run-length-compressed Schedule container live in
# :mod:`repro.simulation.schedule`; this module re-exports them for
# compatibility and executes them across trials.

_KIND_PERIODIC = 0
_KIND_ATOMIC = 1
_KIND_ABFT = 2


class VectorizedPhasedSimulator:
    """Across-trials engine for phase-structured protocol schedules.

    Parameters
    ----------
    protocol:
        Protocol name stamped on the resulting :class:`TrialTable`.
    application_time:
        Fault-free duration ``T0`` (the waste baseline), seconds.
    segments:
        The deterministic segment schedule: a compiled
        :class:`~repro.simulation.schedule.Schedule` (the usual case --
        both backends execute the same compiled object) or any iterable of
        :class:`PeriodicSegment` / :class:`AtomicSegment` /
        :class:`AbftSegment`, in execution order.  The schedule may only
        depend on the configuration -- never on the failure draws -- which
        is exactly the property ``compile_schedule()`` functions have.
    failure_model:
        The inter-arrival law driving the failure streams.  Bit-identity
        requires a model whose ``sample_interarrivals`` is a pure function
        of the generator; the protocol adapters enforce the registry's
        vectorized-law rule via :func:`vectorized_failure_model_or_raise`.
    max_makespan:
        Truncation cap, strictly greater than ``application_time`` (i.e.
        ``max_slowdown * T0`` with ``max_slowdown > 1``): trials whose clock
        exceeds it are flagged ``truncated`` with their waste ~1, exactly
        like the event backend's
        :class:`~repro.core.protocols.base.SimulationHorizonExceeded`.
    batch_size:
        Failure-stream block size; must match the event backend's
        (:data:`~repro.failures.timeline.DEFAULT_BATCH_SIZE`) for the
        bit-identical contract to hold.
    """

    def __init__(
        self,
        *,
        protocol: str,
        application_time: float,
        segments: Iterable[Segment],
        failure_model: FailureModel,
        max_makespan: float,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        compile_start = time.perf_counter() if _obs.enabled() else None
        if application_time <= 0:
            raise ValueError(f"application_time must be > 0, got {application_time}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self._protocol = str(protocol)
        self._application_time = float(application_time)
        if not max_makespan > self._application_time:
            raise ValueError(
                "max_makespan must exceed the fault-free application time "
                f"(max_slowdown must be > 1), got {max_makespan} "
                f"for T0={self._application_time}"
            )
        self._max_makespan = float(max_makespan)
        self._model = failure_model
        self._block = int(batch_size)

        # Normalise the schedule, dropping zero-duration segments exactly
        # where the event walk early-returns, and collect per-segment
        # parallel arrays for the gather-based round dispatch.
        kinds: List[int] = []
        works: List[float] = []
        chunks: List[float] = []
        ckpts: List[float] = []
        trailings: List[bool] = []
        durations: List[float] = []
        init_w: List[float] = []
        phis: List[float] = []
        stage_sets: List[Tuple[Tuple[str, float], ...]] = []
        stage_ids: List[int] = []

        def stage_id(stages: RestartStages) -> int:
            normalized = tuple((str(c), float(d)) for c, d in stages)
            for category, duration in normalized:
                if category not in CATEGORIES:
                    raise KeyError(f"unknown restart category {category!r}")
                if duration < 0:
                    raise ValueError(f"restart duration must be >= 0, got {duration}")
            try:
                return stage_sets.index(normalized)
            except ValueError:
                stage_sets.append(normalized)
                return len(stage_sets) - 1

        def append(
            kind: int,
            *,
            work: float = 0.0,
            chunk: float = 0.0,
            ckpt: float = 0.0,
            trailing: bool = False,
            duration: float = 0.0,
            init: float = 0.0,
            phi: float = 1.0,
            stages: RestartStages = (),
        ) -> None:
            kinds.append(kind)
            works.append(work)
            chunks.append(chunk)
            ckpts.append(ckpt)
            trailings.append(trailing)
            durations.append(duration)
            init_w.append(init)
            phis.append(phi)
            stage_ids.append(stage_id(stages))

        def lower(segment: Segment) -> None:
            if isinstance(segment, PeriodicSegment):
                work = float(segment.work)
                ckpt = float(segment.checkpoint_cost)
                if work <= 0.0:
                    # _periodic_section(work <= 0): a lone trailing
                    # checkpoint, or nothing.
                    if segment.trailing and ckpt > 0.0:
                        append(
                            _KIND_ATOMIC,
                            duration=0.0 + ckpt,
                            ckpt=ckpt,
                            stages=segment.stages,
                        )
                    return
                chunk = float(segment.chunk_size)
                if math.isnan(chunk) or chunk <= 0.0:
                    chunk = work
                append(
                    _KIND_PERIODIC,
                    work=work,
                    chunk=chunk,
                    ckpt=ckpt,
                    trailing=bool(segment.trailing),
                    stages=segment.stages,
                )
            elif isinstance(segment, AtomicSegment):
                work = float(segment.work)
                ckpt = float(segment.checkpoint_cost)
                # Same addition as _unprotected_section's ``segment = work
                # + checkpoint_cost``.
                duration = work + ckpt
                if duration <= 0.0:
                    return
                append(
                    _KIND_ATOMIC,
                    work=work,
                    ckpt=ckpt,
                    duration=duration,
                    stages=segment.stages,
                )
            elif isinstance(segment, AbftSegment):
                work = float(segment.work)
                phi = float(segment.phi)
                scaled = work * phi
                if scaled > _WORK_EPSILON:
                    append(
                        _KIND_ABFT,
                        work=work,
                        init=scaled,
                        phi=phi,
                        stages=segment.stages,
                    )
                # The exit partial checkpoint executes atomically with the
                # same restart sequence (run_checkpoint with
                # redo_on_failure), so it lowers to an ATOMIC round with
                # zero work -- the same 0.0 + cost duration sum.
                exit_ckpt = float(segment.exit_checkpoint_cost)
                if exit_ckpt > 0.0:
                    append(
                        _KIND_ATOMIC,
                        duration=0.0 + exit_ckpt,
                        ckpt=exit_ckpt,
                        stages=segment.stages,
                    )
            else:
                raise TypeError(
                    f"unknown segment type {type(segment).__name__}; expected "
                    "PeriodicSegment, AtomicSegment or AbftSegment"
                )

        # Lower each compressed run's segment block ONCE: the per-round
        # arrays are sized by *unique* rounds, and repeated runs execute as
        # a (run, repetition, offset) loop over the compressed block.  A
        # 1000-epoch weak-scaling schedule whose epochs compile identically
        # therefore costs one block of rounds, not thousands.  Plain segment
        # iterables are RLE-compressed here, so both construction styles
        # share the compact layout.
        schedule = (
            segments
            if isinstance(segments, Schedule)
            else Schedule.from_segments(segments)
        )
        run_starts: List[int] = []
        run_lens: List[int] = []
        run_counts: List[int] = []
        for run in schedule.runs:
            start = len(kinds)
            for segment in run.segments:
                lower(segment)
            length = len(kinds) - start
            if length == 0:
                # Every segment of the block was degenerate (the event walk
                # early-returns on all of them); drop the whole run.
                continue
            run_starts.append(start)
            run_lens.append(length)
            run_counts.append(int(run.count))

        self._nseg = len(kinds)
        self._run_start = np.asarray(run_starts, dtype=np.int64)
        self._run_len = np.asarray(run_lens, dtype=np.int64)
        self._run_count = np.asarray(run_counts, dtype=np.int64)
        self._nruns = len(run_starts)
        self._kind = np.asarray(kinds, dtype=np.int8)
        self._work = np.asarray(works, dtype=float)
        self._chunk = np.asarray(chunks, dtype=float)
        self._ckpt = np.asarray(ckpts, dtype=float)
        self._trailing = np.asarray(trailings, dtype=bool)
        self._duration = np.asarray(durations, dtype=float)
        self._init_w = np.asarray(init_w, dtype=float)
        self._phi = np.asarray(phis, dtype=float)
        self._stage_sets = stage_sets
        self._stage_id = np.asarray(stage_ids, dtype=np.int64)
        totals = []
        for stages in stage_sets:
            # Python float summation order matches the event backend's
            # ``sum(duration for _, duration in stages)``.
            total = 0.0
            for _, duration in stages:
                total += duration
            totals.append(total)
        self._stage_total = np.asarray(totals, dtype=float)
        self._has_restart = (
            self._stage_total[self._stage_id] > 0.0
            if self._nseg
            else np.zeros(0, dtype=bool)
        )
        if compile_start is not None:
            # The "compile" engine phase: schedule normalisation + lowering
            # to the parallel round arrays above.
            _obs.catalog.family("repro_engine_phase_seconds_total").inc(
                time.perf_counter() - compile_start,
                phase="compile",
                protocol=self._protocol,
            )

    # ------------------------------------------------------------------ #
    @property
    def protocol(self) -> str:
        """Protocol name stamped on result tables."""
        return self._protocol

    @property
    def segment_count(self) -> int:
        """Number of (non-degenerate) rounds the *expanded* schedule executes.

        Repeated runs count every repetition, matching the historical
        flattened layout; the stored arrays are sized by
        :attr:`unique_round_count` instead.
        """
        return int(np.sum(self._run_len * self._run_count)) if self._nruns else 0

    @property
    def unique_round_count(self) -> int:
        """Number of unique rounds actually stored (the RLE-compressed size).

        Bounded by the compiled schedule's compressed run structure, not by
        the epoch count: a 1000-epoch workload with identical epochs stores
        one epoch's rounds.
        """
        return self._nseg

    def run_trials(self, runs: int, seed: Optional[int] = None) -> TrialTable:
        """Simulate ``runs`` independent trials and return their table.

        Trial ``i`` consumes ``RandomStreams(seed).generator_for_trial(i)``
        exactly as the serial event runner does, so results are reproducible
        and bit-identical to the event backend for any ``runs``.
        """
        if runs <= 0:
            raise ValueError(f"runs must be a positive integer, got {runs}")
        return self.run_trial_range(0, int(runs), seed=seed)

    def run_trial_range(
        self, start: int, stop: int, seed: Optional[int] = None
    ) -> TrialTable:
        """Simulate the contiguous campaign slice ``[start, stop)``.

        Trial generators are derived from the *absolute* trial indices
        (``RandomStreams(seed).generator_for_trial(i)`` for ``i`` in
        ``start..stop-1``), exactly like
        :func:`repro.simulation.runner.simulate_trial_range`, so a campaign
        split into contiguous shards -- at any boundaries -- concatenates to
        the bit-identical serial table.  This is the worker-side entry point
        of :class:`~repro.campaign.executor.ShardedVectorizedExecutor`.
        """
        if start < 0 or stop <= start:
            raise ValueError(
                f"need 0 <= start < stop, got start={start}, stop={stop}"
            )
        n = int(stop) - int(start)
        if not _obs.enabled():
            # The no-op fast path: the disabled-instrumentation overhead is
            # this one flag check (gated at <= 2% by
            # benchmarks/test_bench_obs.py; the observed cost is far below
            # measurement noise).
            return self._run(n, self._trial_rngs(start, stop, seed))
        if _obs.tracing():
            with _obs.span(
                "engine",
                category="engine",
                protocol=self._protocol,
                trials=n,
                start=int(start),
                stop=int(stop),
            ) as engine_span:
                return self._run(
                    n,
                    self._trial_rngs(start, stop, seed),
                    profile=True,
                    span=engine_span,
                )
        return self._run(n, self._trial_rngs(start, stop, seed), profile=True)

    def _trial_rngs(
        self, start: int, stop: int, seed: Optional[int]
    ) -> List[np.random.Generator]:
        """Per-trial generators for the absolute indices ``[start, stop)``."""
        if seed is not None and start == 0:
            # Seeded campaigns reuse the memoised per-trial SeedSequence
            # children: sweeps derive the same (seed, i) children at every
            # grid point, and the derivation used to be ~40% of this
            # engine's wall-clock.  Bit-identical to generator_for_trial.
            return [
                np.random.default_rng(sequence)
                for sequence in trial_seed_sequences(seed, stop)[:stop]
            ]
        streams = RandomStreams(seed)
        return [
            streams.generator_for_trial(i) for i in range(int(start), int(stop))
        ]

    def _run(
        self,
        n: int,
        rngs: Sequence[np.random.Generator],
        profile: bool = False,
        span=None,
    ) -> TrialTable:
        model = self._model

        block = self._block
        tiny = np.finfo(float).tiny
        cap = self._max_makespan
        nseg = self._nseg
        kind_arr = self._kind
        work_arr = self._work
        chunk_arr = self._chunk
        ckpt_arr = self._ckpt
        trailing_arr = self._trailing
        duration_arr = self._duration
        init_w_arr = self._init_w
        phi_arr = self._phi
        stage_id_arr = self._stage_id
        stage_sets = self._stage_sets
        stage_totals = self._stage_total
        has_restart_arr = self._has_restart
        run_start_arr = self._run_start
        run_len_arr = self._run_len
        run_count_arr = self._run_count
        nruns = self._nruns

        # Failure-stream windows: each row holds the current block of
        # absolute failure times; ``base`` is the global index of the row's
        # first entry.  Only the next failure (global cursor ``k``) is ever
        # read, so one block per trial bounds memory at runs x batch_size.
        F = np.empty((n, block), dtype=float)
        base = np.zeros(n, dtype=np.int64)
        last = np.zeros(n, dtype=float)
        filled = np.zeros(n, dtype=bool)

        # The model decides how its per-trial blocks are drawn: stateless
        # laws sample from each trial's generator, trace replay advances
        # per-trial cursors over the shared trace array.  Either way the
        # draws match the event backend's per-trial FailureTimeline stream.
        sampler = model.trial_block_sampler(n)

        def refill(indices: np.ndarray) -> None:
            draws = np.maximum(sampler.sample_blocks(indices, rngs, block), tiny)
            # Row-wise cumsum performs the same float64 additions in the
            # same order as the historical per-trial 1-D cumsum.
            times = last[indices, None] + np.cumsum(draws, axis=1)
            F[indices] = times
            last[indices] = times[:, -1]
            seen = filled[indices]
            if seen.any():
                base[indices[seen]] += block
            filled[indices] = True

        # Phase profiling: only when enabled is ``refill`` wrapped with a
        # timer (accumulating the "sample" phase) -- the disabled path runs
        # the bare closure with zero added per-call work.  The arithmetic of
        # the run is untouched either way: timers never change values.
        sample_seconds = 0.0
        if profile:
            unprofiled_refill = refill

            def refill(indices: np.ndarray) -> None:
                nonlocal sample_seconds
                begin = time.perf_counter()
                unprofiled_refill(indices)
                sample_seconds += time.perf_counter() - begin

        run_begin = time.perf_counter() if profile else 0.0

        # Per-trial state.  The schedule cursor is the triple (run,
        # repetition, offset) over the compressed runs; ``seg`` caches the
        # derived compact round index ``run_start[run] + offset`` that the
        # gather-based dispatch reads every iteration.
        t = np.zeros(n, dtype=float)
        w = np.zeros(n, dtype=float)
        seg = np.zeros(n, dtype=np.int64)
        run_i = np.zeros(n, dtype=np.int64)
        rep = np.zeros(n, dtype=np.int64)
        off = np.zeros(n, dtype=np.int64)
        k = np.zeros(n, dtype=np.int64)
        mode = np.zeros(n, dtype=np.int8)  # 0 = segment body, 1 = restart
        active = np.ones(n, dtype=bool)
        makespan = np.zeros(n, dtype=float)
        truncated = np.zeros(n, dtype=bool)
        failures = np.zeros(n, dtype=np.int64)
        acc = {category: np.zeros(n, dtype=float) for category in CATEGORIES}

        def ensure(indices: np.ndarray) -> None:
            """Materialise the failure at cursor ``k`` for every index."""
            need = indices[k[indices] - base[indices] >= block]
            if need.size:
                refill(need)

        def advance(indices: np.ndarray) -> None:
            """Move ``k`` to the first failure strictly after ``t``."""
            idx = indices
            while idx.size:
                ensure(idx)
                passed = F[idx, k[idx] - base[idx]] <= t[idx]
                idx = idx[passed]
                k[idx] += 1

        def complete(indices: np.ndarray) -> np.ndarray:
            """Finish the current round; returns the trials that go on.

            Advances the (run, repetition, offset) cursor over the
            compressed schedule -- past the block's last round the
            repetition wraps, past the run's last repetition the next run
            starts -- so repeated runs re-execute the same compact rounds.
            Trials past the last run record their makespan and retire; the
            rest enter the next round with its initial progress state.
            """
            off[indices] += 1
            wrapped = indices[off[indices] >= run_len_arr[run_i[indices]]]
            if wrapped.size:
                off[wrapped] = 0
                rep[wrapped] += 1
                advanced = wrapped[rep[wrapped] >= run_count_arr[run_i[wrapped]]]
                if advanced.size:
                    rep[advanced] = 0
                    run_i[advanced] += 1
            ended = run_i[indices] >= nruns
            done = indices[ended]
            if done.size:
                makespan[done] = t[done]
                active[done] = False
            cont = indices[~ended]
            if cont.size:
                seg[cont] = run_start_arr[run_i[cont]] + off[cont]
                w[cont] = init_w_arr[seg[cont]]
                mode[cont] = 0
            return cont

        if nseg == 0:
            active[:] = False
        else:
            w[:] = init_w_arr[0]
            refill(np.arange(n))

        while True:
            idx = np.flatnonzero(active)
            if idx.size == 0:
                break
            # Cap check first, exactly like _check_cap at the top of every
            # event-backend loop iteration (section body or restart alike).
            over = t[idx] > cap
            if over.any():
                hit = idx[over]
                truncated[hit] = True
                makespan[hit] = t[hit]
                active[hit] = False
                idx = idx[~over]
                if idx.size == 0:
                    continue
            ensure(idx)

            in_body = mode[idx] == 0
            body = idx[in_body]
            rst = idx[~in_body]

            if body.size:
                body_kind = kind_arr[seg[body]]

                # ---- periodic sections -------------------------------- #
                per = body[body_kind == _KIND_PERIODIC]
                if per.size:
                    s = seg[per]
                    nf = F[per, k[per] - base[per]]
                    wk = work_arr[s]
                    chunk = np.minimum(chunk_arr[s], wk - w[per])
                    is_last = w[per] + chunk >= wk - _WORK_EPSILON
                    do_ckpt = trailing_arr[s] | ~is_last
                    ckpt = ckpt_arr[s]
                    seg_len = np.where(do_ckpt, chunk + ckpt, chunk)
                    ok = nf >= t[per] + seg_len

                    suc = per[ok]
                    if suc.size:
                        acc["useful_work"][suc] += chunk[ok]
                        cmask = do_ckpt[ok] & (ckpt[ok] > 0.0)
                        if cmask.any():
                            acc["checkpointing"][suc[cmask]] += ckpt[ok][cmask]
                        t[suc] += seg_len[ok]
                        w[suc] += chunk[ok]
                        done = w[suc] >= wk[ok]
                        finished = suc[done]
                        advance(suc[~done])
                        if finished.size:
                            advance(complete(finished))

                    fail = per[~ok]
                    if fail.size:
                        failed_at = nf[~ok]
                        acc["lost_work"][fail] += failed_at - t[fail]
                        failures[fail] += 1
                        t[fail] = failed_at
                        restartable = has_restart_arr[seg[fail]]
                        mode[fail[restartable]] = 1
                        advance(fail)

                # ---- atomic segments ---------------------------------- #
                ato = body[body_kind == _KIND_ATOMIC]
                if ato.size:
                    s = seg[ato]
                    nf = F[ato, k[ato] - base[ato]]
                    dur = duration_arr[s]
                    ok = nf >= t[ato] + dur

                    suc = ato[ok]
                    if suc.size:
                        # The event walk accounts only positive amounts;
                        # adding 0.0 is bit-identical.
                        acc["useful_work"][suc] += work_arr[s][ok]
                        acc["checkpointing"][suc] += ckpt_arr[s][ok]
                        t[suc] += dur[ok]
                        advance(complete(suc))

                    fail = ato[~ok]
                    if fail.size:
                        failed_at = nf[~ok]
                        acc["lost_work"][fail] += failed_at - t[fail]
                        failures[fail] += 1
                        t[fail] = failed_at
                        restartable = has_restart_arr[seg[fail]]
                        mode[fail[restartable]] = 1
                        advance(fail)

                # ---- ABFT sections ------------------------------------ #
                abf = body[body_kind == _KIND_ABFT]
                if abf.size:
                    s = seg[abf]
                    nf = F[abf, k[abf] - base[abf]]
                    rem = w[abf]
                    phi = phi_arr[s]
                    ok = nf >= t[abf] + rem

                    suc = abf[ok]
                    if suc.size:
                        useful = rem[ok] / phi[ok]
                        acc["useful_work"][suc] += useful
                        acc["abft_overhead"][suc] += rem[ok] - useful
                        t[suc] += rem[ok]
                        advance(complete(suc))

                    fail = abf[~ok]
                    if fail.size:
                        elapsed = nf[~ok] - t[fail]
                        useful = elapsed / phi[~ok]
                        acc["useful_work"][fail] += useful
                        acc["abft_overhead"][fail] += elapsed - useful
                        w[fail] = w[fail] - elapsed
                        failures[fail] += 1
                        t[fail] = nf[~ok]
                        restartable = has_restart_arr[seg[fail]]
                        mode[fail[restartable]] = 1
                        # Without a restart sequence the event walk falls
                        # straight back to the loop condition: a residual
                        # below the cutoff ends the section.
                        bare = fail[~restartable]
                        exhausted = (
                            bare[w[bare] <= _WORK_EPSILON]
                            if bare.size
                            else bare
                        )
                        advance(fail)
                        if exhausted.size:
                            advance(complete(exhausted))

            if rst.size:
                rst_sids = stage_id_arr[seg[rst]]
                for sid in np.unique(rst_sids):
                    grp = rst[rst_sids == sid]
                    stages = stage_sets[sid]
                    total = float(stage_totals[sid])
                    nf = F[grp, k[grp] - base[grp]]
                    ok = nf >= t[grp] + total

                    suc = grp[ok]
                    if suc.size:
                        for category, duration in stages:
                            if duration > 0.0:
                                acc[category][suc] += duration
                        t[suc] += total
                        mode[suc] = 0
                        # An ABFT section whose remaining work fell below
                        # the cutoff ends right after its restart, exactly
                        # like the event walk's while-condition re-check.
                        abft_done = suc[
                            (kind_arr[seg[suc]] == _KIND_ABFT)
                            & (w[suc] <= _WORK_EPSILON)
                        ]
                        advance(suc)
                        if abft_done.size:
                            advance(complete(abft_done))

                    fail = grp[~ok]
                    if fail.size:
                        failed_at = nf[~ok]
                        remaining = failed_at - t[fail]
                        for category, duration in stages:
                            spent = np.minimum(remaining, duration)
                            acc[category][fail] += spent
                            remaining = remaining - spent
                        failures[fail] += 1
                        t[fail] = failed_at
                        advance(fail)

        gather_begin = time.perf_counter() if profile else 0.0
        table = TrialTable.empty(
            n, protocol=self._protocol, application_time=self._application_time
        )
        data = table.data
        data["makespan"] = makespan
        if nseg == 0:
            # Degenerate empty schedule: the event walk's makespan is 0 and
            # ExecutionTrace.waste defines the waste as 0 there.
            data["waste"] = 0.0
        else:
            data["waste"] = 1.0 - self._application_time / makespan
        data["failure_count"] = failures
        data["truncated"] = truncated
        for category in CATEGORIES:
            data[category] = acc[category]
        if profile:
            finish = time.perf_counter()
            self._record_run_metrics(
                n,
                span,
                sample=sample_seconds,
                execute=(gather_begin - run_begin) - sample_seconds,
                gather=finish - gather_begin,
            )
        return table

    def _record_run_metrics(
        self, trials: int, span, **phase_seconds: float
    ) -> None:
        """Accumulate one instrumented run into the global registry.

        When an engine span is open (tracing), the phase split also rides
        on the span as arguments -- that is how per-shard phase timings
        from pool workers reach the exported trace, since worker-side
        registries are process-local and never shipped home.
        """
        phases = _obs.catalog.family("repro_engine_phase_seconds_total")
        for phase, seconds in phase_seconds.items():
            phases.inc(max(seconds, 0.0), phase=phase, protocol=self._protocol)
        _obs.catalog.family("repro_engine_runs_total").inc(
            protocol=self._protocol
        )
        _obs.catalog.family("repro_engine_trials_total").inc(
            trials, protocol=self._protocol
        )
        if span is not None:
            span.set_args(
                **{
                    f"{phase}_seconds": round(max(seconds, 0.0), 6)
                    for phase, seconds in phase_seconds.items()
                }
            )


class VectorizedChunkedSimulator:
    """Across-trials engine for chunked periodic protocols.

    The one-segment special case of :class:`VectorizedPhasedSimulator`,
    modelling exactly one :class:`PeriodicSegment` (``NoFT`` is the
    degenerate case ``chunk_size >= work`` with no checkpoint and a
    downtime-only restart).  Kept as the stable construction surface of the
    ``NoFT`` / ``PurePeriodicCkpt`` adapters.

    Parameters
    ----------
    protocol:
        Protocol name stamped on the resulting :class:`TrialTable`.
    application_time:
        Fault-free duration ``T0`` (the waste baseline), seconds.
    work:
        Total work to execute, seconds (equals ``T0`` for these protocols).
    chunk_size:
        Seconds of work per chunk (clamped to the remaining work).
    checkpoint_cost:
        Checkpoint write cost ``C`` appended to every checkpointed chunk.
    restart_stages:
        Ordered ``(category, duration)`` pairs paid after each failure.
    mtbf:
        Exponential MTBF driving the failure streams; mutually exclusive
        with ``failure_model``.
    failure_model:
        Any vectorizable failure model instance (see
        :func:`vectorized_failure_model_or_raise`); overrides ``mtbf``.
    max_makespan:
        Truncation cap, strictly greater than ``application_time``.
    trailing_checkpoint:
        Whether the final chunk is followed by a checkpoint.
    batch_size:
        Failure-stream block size (see :class:`VectorizedPhasedSimulator`).
    """

    def __init__(
        self,
        *,
        protocol: str,
        application_time: float,
        work: float,
        chunk_size: float,
        checkpoint_cost: float,
        restart_stages: RestartStages,
        mtbf: Optional[float] = None,
        failure_model: Optional[FailureModel] = None,
        max_makespan: float,
        trailing_checkpoint: bool = False,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if work <= 0:
            raise ValueError(f"work must be > 0, got {work}")
        if failure_model is None:
            if mtbf is None:
                raise ValueError("one of mtbf or failure_model is required")
            if float(mtbf) <= 0:
                raise ValueError(f"mtbf must be > 0, got {mtbf}")
            failure_model = ExponentialFailureModel(float(mtbf))
        self._engine = VectorizedPhasedSimulator(
            protocol=protocol,
            application_time=application_time,
            segments=(
                PeriodicSegment(
                    work=float(work),
                    chunk_size=float(chunk_size),
                    checkpoint_cost=float(checkpoint_cost),
                    trailing=bool(trailing_checkpoint),
                    stages=tuple(restart_stages),
                ),
            ),
            failure_model=failure_model,
            max_makespan=max_makespan,
            batch_size=batch_size,
        )

    @property
    def protocol(self) -> str:
        """Protocol name stamped on result tables."""
        return self._engine.protocol

    def run_trials(self, runs: int, seed: Optional[int] = None) -> TrialTable:
        """Simulate ``runs`` trials; see :class:`VectorizedPhasedSimulator`."""
        return self._engine.run_trials(runs, seed)

    def run_trial_range(
        self, start: int, stop: int, seed: Optional[int] = None
    ) -> TrialTable:
        """Simulate trials ``[start, stop)`` of a campaign (shard execution)."""
        return self._engine.run_trial_range(start, stop, seed)
