"""Vectorized across-trials Monte-Carlo engine.

The event-driven simulators (:mod:`repro.core.protocols`) walk one trial at
a time through a Python state machine.  For the *chunked periodic* protocols
-- ``NoFT`` (one chunk, no checkpoint) and ``PurePeriodicCkpt`` (fixed-size
chunks, each followed by a checkpoint) -- the walk is simple enough to run
**all trials simultaneously**: the engine keeps one NumPy state vector per
quantity (current time, work done, failure cursor, mode) and advances every
active trial by one state-machine step per round, masking trials in the
run/restart modes separately.

Bit-identical contract
----------------------
The engine is not an approximation: for a given root seed it reproduces the
event backend **trial for trial, bit for bit** -- same makespan, waste,
failure count and per-category waste breakdown.  Two properties make this
possible:

* failure times are drawn in exactly the block pattern of
  :class:`~repro.failures.timeline.FailureTimeline` (``batch_size``
  inter-arrivals per refill, clamped, ``last + cumsum(block)``), from the
  same per-trial generator (``RandomStreams(seed).generator_for_trial(i)``);
* every arithmetic operation of the event walk (segment sums, partial
  restart accounting, cap checks) is replayed with the same IEEE-754
  operations in the same per-trial order, just batched across trials.

The cross-validation tests assert exact ``==`` on every column, and the
sweep cache deliberately uses the same keys for both backends -- entries
are interchangeable.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.failures.base import FailureModel
from repro.failures.exponential import ExponentialFailureModel
from repro.failures.timeline import DEFAULT_BATCH_SIZE
from repro.simulation.rng import RandomStreams, trial_seed_sequences
from repro.simulation.table import TrialTable
from repro.simulation.trace import CATEGORIES

__all__ = [
    "ENGINE_BACKENDS",
    "VectorizedBackendError",
    "VectorizedChunkedSimulator",
    "exponential_mtbf_or_raise",
    "supports_vectorized_backend",
    "vectorized_backend_obstacle",
]

#: Monte-Carlo engine backends selectable in the campaign/scenario layers.
#: ``"event"`` is the per-trial state-machine walk, ``"vectorized"`` the
#: across-trials engine of this module, ``"auto"`` picks the vectorized
#: engine whenever the (protocol, failure law) pair supports it.
ENGINE_BACKENDS = ("event", "vectorized", "auto")

#: Restart sequences, as in the event-driven base simulator.
RestartStages = Sequence[Tuple[str, float]]


class VectorizedBackendError(ValueError):
    """The vectorized backend cannot run the requested configuration.

    Raised with an actionable message naming the unsupported protocol or
    failure law and the supported alternatives, so a scenario author can fix
    the spec (or fall back to ``backend="event"``).
    """


def supports_vectorized_backend(
    vectorized_cls: Optional[type], failure_model: Optional[FailureModel]
) -> bool:
    """Whether the across-trials engine can run this configuration.

    The single source of the eligibility rule every backend-selecting layer
    (sweep runner, period refinement, regime maps) consults: a registered
    vectorized engine class, and the paper's exponential law -- ``None``
    (the simulators' default) or an exact :class:`ExponentialFailureModel`
    (subclasses override the sampling the engine could not honour).
    """
    return vectorized_cls is not None and (
        failure_model is None or type(failure_model) is ExponentialFailureModel
    )


def vectorized_backend_obstacle(
    vectorized_cls: Optional[type],
    failure_model: Optional[FailureModel],
    *,
    protocol: str,
    law: str,
    available: Sequence[str] = (),
) -> Optional[str]:
    """Why the across-trials engine cannot run this configuration.

    ``None`` when it can (the :func:`supports_vectorized_backend` rule
    holds); otherwise a human-readable detail naming the obstacle, shared
    by every layer that raises :class:`VectorizedBackendError` so the
    diagnostics cannot drift apart.
    """
    if vectorized_cls is None:
        return (
            f"protocol {protocol!r} has no vectorized engine "
            f"(available: {sorted(available)})"
        )
    if not supports_vectorized_backend(vectorized_cls, failure_model):
        return f"failure model {law!r} is not the exponential law"
    return None


def exponential_mtbf_or_raise(
    failure_model: Optional[FailureModel], default_mtbf: float, *, protocol: str
) -> float:
    """The MTBF to vectorize at, enforcing the exponential-law restriction.

    ``None`` (the simulators' default) means the paper's exponential law at
    the platform MTBF; an explicit :class:`ExponentialFailureModel` is also
    accepted.  Anything else -- including *subclasses* of the exponential
    model, whose overridden sampling the engine could not honour -- raises
    :class:`VectorizedBackendError`.
    """
    if failure_model is None:
        return float(default_mtbf)
    if type(failure_model) is ExponentialFailureModel:
        return float(failure_model.mtbf)
    raise VectorizedBackendError(
        f"the vectorized backend for {protocol!r} supports only the "
        f"exponential failure law, got {type(failure_model).__name__}; "
        "use backend='event' for non-exponential laws"
    )


class VectorizedChunkedSimulator:
    """Across-trials engine for chunked periodic protocols.

    The protected execution is modelled exactly as
    :meth:`ProtocolSimulator._periodic_section
    <repro.core.protocols.base.ProtocolSimulator>`: work is cut into chunks
    of ``chunk_size`` seconds, each followed by a checkpoint of
    ``checkpoint_cost`` seconds (the last chunk only when
    ``trailing_checkpoint``); a failure loses the un-checkpointed progress
    and pays the ``restart_stages`` sequence, itself restartable.  ``NoFT``
    is the degenerate case ``chunk_size >= work`` with no checkpoint and a
    downtime-only restart.

    Parameters
    ----------
    protocol:
        Protocol name stamped on the resulting :class:`TrialTable`.
    application_time:
        Fault-free duration ``T0`` (the waste baseline), seconds.
    work:
        Total work to execute, seconds (equals ``T0`` for these protocols).
    chunk_size:
        Seconds of work per chunk (clamped to the remaining work).
    checkpoint_cost:
        Checkpoint write cost ``C`` appended to every checkpointed chunk.
    restart_stages:
        Ordered ``(category, duration)`` pairs paid after each failure.
    mtbf:
        Exponential MTBF driving the failure streams (the protocol adapters
        derive it via :func:`exponential_mtbf_or_raise`, which is also where
        non-exponential laws are rejected).
    max_makespan:
        Truncation cap, strictly greater than ``application_time`` (i.e.
        ``max_slowdown * T0`` with ``max_slowdown > 1``): trials whose clock
        exceeds it are flagged ``truncated`` with their waste ~1, exactly
        like the event backend's
        :class:`~repro.core.protocols.base.SimulationHorizonExceeded`.
    trailing_checkpoint:
        Whether the final chunk is followed by a checkpoint.
    batch_size:
        Failure-stream block size; must match the event backend's
        (:data:`~repro.failures.timeline.DEFAULT_BATCH_SIZE`) for the
        bit-identical contract to hold.
    """

    def __init__(
        self,
        *,
        protocol: str,
        application_time: float,
        work: float,
        chunk_size: float,
        checkpoint_cost: float,
        restart_stages: RestartStages,
        mtbf: float,
        max_makespan: float,
        trailing_checkpoint: bool = False,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if application_time <= 0:
            raise ValueError(f"application_time must be > 0, got {application_time}")
        if work <= 0:
            raise ValueError(f"work must be > 0, got {work}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self._protocol = str(protocol)
        self._application_time = float(application_time)
        self._work = float(work)
        # An invalid chunk size (NaN or non-positive) degenerates to a
        # single chunk, mirroring _periodic_section's period handling.
        chunk_size = float(chunk_size)
        if math.isnan(chunk_size) or chunk_size <= 0.0:
            chunk_size = self._work
        self._chunk_size = chunk_size
        self._checkpoint_cost = float(checkpoint_cost)
        self._stages = tuple((str(c), float(d)) for c, d in restart_stages)
        for category, duration in self._stages:
            if category not in CATEGORIES:
                raise KeyError(f"unknown restart category {category!r}")
            if duration < 0:
                raise ValueError(f"restart duration must be >= 0, got {duration}")
        self._mtbf = float(mtbf)
        if self._mtbf <= 0:
            raise ValueError(f"mtbf must be > 0, got {self._mtbf}")
        if not max_makespan > self._application_time:
            raise ValueError(
                "max_makespan must exceed the fault-free application time "
                f"(max_slowdown must be > 1), got {max_makespan} "
                f"for T0={self._application_time}"
            )
        self._max_makespan = float(max_makespan)
        self._trailing = bool(trailing_checkpoint)
        self._block = int(batch_size)

    # ------------------------------------------------------------------ #
    @property
    def protocol(self) -> str:
        """Protocol name stamped on result tables."""
        return self._protocol

    def run_trials(self, runs: int, seed: Optional[int] = None) -> TrialTable:
        """Simulate ``runs`` independent trials and return their table.

        Trial ``i`` consumes ``RandomStreams(seed).generator_for_trial(i)``
        exactly as the serial event runner does, so results are reproducible
        and bit-identical to the event backend for any ``runs``.
        """
        if runs <= 0:
            raise ValueError(f"runs must be a positive integer, got {runs}")
        n = int(runs)
        if seed is None:
            streams = RandomStreams(seed)
            rngs = [streams.generator_for_trial(i) for i in range(n)]
        else:
            # Seeded campaigns reuse the memoised per-trial SeedSequence
            # children: sweeps derive the same (seed, i) children at every
            # grid point, and the derivation used to be ~40% of this
            # engine's wall-clock.  Bit-identical to generator_for_trial.
            rngs = [
                np.random.default_rng(sequence)
                for sequence in trial_seed_sequences(seed, n)[:n]
            ]
        model = ExponentialFailureModel(self._mtbf)

        block = self._block
        tiny = np.finfo(float).tiny
        work = self._work
        chunk_size = self._chunk_size
        ckpt = self._checkpoint_cost
        trailing = self._trailing
        cap = self._max_makespan
        stages = self._stages
        # Python float summation order matches the event backend's
        # ``sum(duration for _, duration in stages)``.
        restart_total = 0.0
        for _, duration in stages:
            restart_total += duration
        has_restart = restart_total > 0.0

        # Failure-stream windows: each row holds the current block of
        # absolute failure times; ``base`` is the global index of the row's
        # first entry.  Only the next failure (global cursor ``k``) is ever
        # read, so one block per trial bounds memory at runs x batch_size.
        F = np.empty((n, block), dtype=float)
        base = np.zeros(n, dtype=np.int64)
        last = np.zeros(n, dtype=float)
        filled = np.zeros(n, dtype=bool)

        def refill(indices: np.ndarray) -> None:
            for i in indices:
                draws = np.maximum(
                    model.sample_interarrivals(rngs[i], block), tiny
                )
                times = last[i] + np.cumsum(draws)
                F[i] = times
                last[i] = times[-1]
                if filled[i]:
                    base[i] += block
                else:
                    filled[i] = True

        # Per-trial state.
        t = np.zeros(n, dtype=float)
        w = np.zeros(n, dtype=float)
        k = np.zeros(n, dtype=np.int64)
        mode = np.zeros(n, dtype=np.int8)  # 0 = run, 1 = restart
        active = np.ones(n, dtype=bool)
        makespan = np.zeros(n, dtype=float)
        truncated = np.zeros(n, dtype=bool)
        failures = np.zeros(n, dtype=np.int64)
        acc = {category: np.zeros(n, dtype=float) for category in CATEGORIES}

        refill(np.arange(n))

        def ensure(indices: np.ndarray) -> None:
            """Materialise the failure at cursor ``k`` for every index."""
            need = indices[k[indices] - base[indices] >= block]
            if need.size:
                refill(need)

        def advance(indices: np.ndarray) -> None:
            """Move ``k`` to the first failure strictly after ``t``."""
            idx = indices
            while idx.size:
                ensure(idx)
                passed = F[idx, k[idx] - base[idx]] <= t[idx]
                idx = idx[passed]
                k[idx] += 1

        while True:
            idx = np.flatnonzero(active)
            if idx.size == 0:
                break
            # Cap check first, exactly like _check_cap at the top of every
            # event-backend loop iteration.
            over = t[idx] > cap
            if over.any():
                hit = idx[over]
                truncated[hit] = True
                makespan[hit] = t[hit]
                active[hit] = False
                idx = idx[~over]
                if idx.size == 0:
                    continue
            ensure(idx)

            in_run = mode[idx] == 0
            run_idx = idx[in_run]
            rst_idx = idx[~in_run]

            if run_idx.size:
                nf = F[run_idx, k[run_idx] - base[run_idx]]
                chunk = np.minimum(chunk_size, work - w[run_idx])
                is_last = w[run_idx] + chunk >= work - 1e-12
                do_ckpt = ~is_last if not trailing else np.ones_like(is_last)
                seg = np.where(do_ckpt, chunk + ckpt, chunk)
                ok = nf >= t[run_idx] + seg

                s = run_idx[ok]
                if s.size:
                    acc["useful_work"][s] += chunk[ok]
                    if ckpt > 0.0:
                        cs = s[do_ckpt[ok]]
                        acc["checkpointing"][cs] += ckpt
                    t[s] += seg[ok]
                    w[s] += chunk[ok]
                    done = w[s] >= work
                    finished = s[done]
                    makespan[finished] = t[finished]
                    active[finished] = False
                    advance(s[~done])

                f = run_idx[~ok]
                if f.size:
                    failed_at = nf[~ok]
                    acc["lost_work"][f] += failed_at - t[f]
                    failures[f] += 1
                    t[f] = failed_at
                    if has_restart:
                        mode[f] = 1
                    advance(f)

            if rst_idx.size:
                nf = F[rst_idx, k[rst_idx] - base[rst_idx]]
                ok = nf >= t[rst_idx] + restart_total

                s = rst_idx[ok]
                if s.size:
                    for category, duration in stages:
                        if duration > 0.0:
                            acc[category][s] += duration
                    t[s] += restart_total
                    mode[s] = 0
                    advance(s)

                f = rst_idx[~ok]
                if f.size:
                    failed_at = nf[~ok]
                    remaining = failed_at - t[f]
                    for category, duration in stages:
                        spent = np.minimum(remaining, duration)
                        acc[category][f] += spent
                        remaining = remaining - spent
                    failures[f] += 1
                    t[f] = failed_at
                    advance(f)

        table = TrialTable.empty(
            n, protocol=self._protocol, application_time=self._application_time
        )
        data = table.data
        data["makespan"] = makespan
        data["waste"] = 1.0 - self._application_time / makespan
        data["failure_count"] = failures
        data["truncated"] = truncated
        for category in CATEGORIES:
            data[category] = acc[category]
        return table
