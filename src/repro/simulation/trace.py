"""Execution traces and time-breakdown accounting.

The simulator's observable output is, for each run, the *makespan* (total
wall-clock time to complete the application) from which the waste
``1 - T0 / T_final`` is computed, plus a breakdown of where the platform time
went.  The breakdown is what makes the simulator debuggable and lets the
tests assert fine-grained invariants (e.g. "no periodic checkpoint was taken
inside an ABFT-protected LIBRARY phase").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional

from repro.simulation.events import Event, EventKind
from repro.utils.validation import require_non_negative, require_positive

__all__ = [
    "CATEGORIES",
    "TimeBreakdown",
    "WasteAccumulator",
    "ExecutionTrace",
    "TraceRecorder",
]

#: The canonical waste categories, in reporting order.  This tuple is shared
#: by :class:`TimeBreakdown`, :class:`WasteAccumulator` and the columnar
#: :class:`~repro.simulation.table.TrialTable`, so the per-category columns
#: line up across the event and vectorized engines.
CATEGORIES = (
    "useful_work",
    "abft_overhead",
    "checkpointing",
    "lost_work",
    "recovery",
    "abft_recovery",
    "downtime",
)


class WasteAccumulator:
    """Slotted per-run accumulator of the waste categories.

    This is the Monte-Carlo hot path: the protocol simulators charge tens to
    hundreds of amounts per trial, so the accumulator skips the per-call
    category validation of :class:`TimeBreakdown` (unknown categories still
    fail, via ``AttributeError`` from ``__slots__``) and stores each category
    in a plain slot.  :meth:`freeze` converts to the public
    :class:`TimeBreakdown` when the trace is assembled.
    """

    __slots__ = CATEGORIES

    def __init__(self) -> None:
        for name in CATEGORIES:
            setattr(self, name, 0.0)

    def add(self, category: str, amount: float) -> None:
        """Accumulate ``amount`` seconds into ``category``."""
        try:
            setattr(self, category, getattr(self, category) + amount)
        except (AttributeError, TypeError):
            # AttributeError: name not in __slots__; TypeError: the name
            # collided with a method (e.g. "add").  Both are unknown
            # categories to the caller.
            raise KeyError(
                f"unknown time category {category!r}; expected one of {CATEGORIES}"
            ) from None

    @property
    def total(self) -> float:
        """Sum of all categories."""
        return sum(getattr(self, name) for name in CATEGORIES)

    def as_dict(self) -> dict[str, float]:
        """The accumulated categories as a plain dictionary."""
        return {name: getattr(self, name) for name in CATEGORIES}

    def freeze(self) -> "TimeBreakdown":
        """Convert into the public :class:`TimeBreakdown`."""
        breakdown = TimeBreakdown()
        for name in CATEGORIES:
            setattr(breakdown, name, getattr(self, name))
        return breakdown


@dataclass
class TimeBreakdown:
    """Where the platform time of one run went, in seconds.

    Attributes
    ----------
    useful_work:
        Time spent making forward progress on the application (excluding any
        ABFT overhead).  In a failure-free, protection-free run this equals
        the application duration ``T0``.
    abft_overhead:
        Extra time spent maintaining ABFT redundancy: ``(phi - 1)`` times the
        protected computation time.
    checkpointing:
        Time spent writing full or partial coordinated checkpoints.
    lost_work:
        Useful work that had to be re-executed because a failure destroyed it
        (rollback to the previous checkpoint or phase start).
    recovery:
        Time spent reloading checkpoints (``R`` or ``R_remainder``).
    abft_recovery:
        Time spent in ABFT reconstruction of the LIBRARY dataset.
    downtime:
        Node reboot / spare swap-in time (``D``).
    """

    useful_work: float = 0.0
    abft_overhead: float = 0.0
    checkpointing: float = 0.0
    lost_work: float = 0.0
    recovery: float = 0.0
    abft_recovery: float = 0.0
    downtime: float = 0.0

    _FIELDS = CATEGORIES

    def add(self, category: str, amount: float) -> None:
        """Accumulate ``amount`` seconds into ``category``."""
        if category not in self._FIELDS:
            raise KeyError(
                f"unknown time category {category!r}; expected one of {self._FIELDS}"
            )
        require_non_negative(amount, "amount")
        setattr(self, category, getattr(self, category) + float(amount))

    @property
    def total(self) -> float:
        """Sum of all categories; equals the makespan of a consistent trace."""
        return sum(getattr(self, name) for name in self._FIELDS)

    @property
    def overhead(self) -> float:
        """Everything that is not useful work."""
        return self.total - self.useful_work

    def as_dict(self) -> dict[str, float]:
        """Return the breakdown as a plain dictionary."""
        return {name: getattr(self, name) for name in self._FIELDS}

    def merge(self, other: "TimeBreakdown") -> "TimeBreakdown":
        """Return a new breakdown summing this one and ``other``."""
        merged = TimeBreakdown()
        for name in self._FIELDS:
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        return merged


@dataclass(frozen=True)
class ExecutionTrace:
    """Immutable record of one simulated protected execution.

    Attributes
    ----------
    protocol:
        Name of the fault-tolerance protocol that produced the trace.
    application_time:
        Fault-free, protection-free duration ``T0`` of the application in
        seconds (the baseline for waste).
    makespan:
        Simulated wall-clock completion time ``T_final`` in seconds.
    failure_count:
        Number of failures that struck during the (protected) execution.
    breakdown:
        The :class:`TimeBreakdown` of the run.
    events:
        Optional chronological list of :class:`Event` records (may be empty
        when event recording is disabled for speed).
    metadata:
        Free-form information attached by the simulator (period used,
        parameters, ...).
    """

    protocol: str
    application_time: float
    makespan: float
    failure_count: int
    breakdown: TimeBreakdown
    events: tuple[Event, ...] = ()
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        require_positive(self.application_time, "application_time")
        require_non_negative(self.makespan, "makespan")
        if self.failure_count < 0:
            raise ValueError("failure_count must be non-negative")

    @property
    def waste(self) -> float:
        """Waste ``1 - T0 / T_final`` (paper Eq. 12)."""
        if self.makespan == 0:
            return 0.0
        return 1.0 - self.application_time / self.makespan

    @property
    def slowdown(self) -> float:
        """Makespan divided by the fault-free, protection-free time."""
        return self.makespan / self.application_time

    def events_of_kind(self, kind: EventKind) -> tuple[Event, ...]:
        """All recorded events of the given kind, in chronological order."""
        return tuple(event for event in self.events if event.kind is kind)

    def count_events(self, kind: EventKind) -> int:
        """Number of recorded events of the given kind."""
        return sum(1 for event in self.events if event.kind is kind)


class TraceRecorder:
    """Mutable builder used by protocol simulators to assemble a trace.

    Parameters
    ----------
    protocol:
        Protocol name stored in the resulting trace.
    application_time:
        Fault-free, protection-free application duration ``T0``.
    record_events:
        When false (the default for large Monte-Carlo campaigns) individual
        events are not stored, only the aggregate breakdown -- this keeps
        memory usage flat.
    """

    def __init__(
        self,
        protocol: str,
        application_time: float,
        *,
        record_events: bool = False,
    ) -> None:
        self._protocol = str(protocol)
        self._application_time = require_positive(application_time, "application_time")
        self._record_events = bool(record_events)
        self._events: list[Event] = []
        self._accumulator = WasteAccumulator()
        self._failures = 0

    # ------------------------------------------------------------------ #
    @property
    def breakdown(self) -> TimeBreakdown:
        """The breakdown accumulated so far (a frozen snapshot)."""
        return self._accumulator.freeze()

    @property
    def accumulator(self) -> WasteAccumulator:
        """The live slotted accumulator backing this recorder."""
        return self._accumulator

    @property
    def failure_count(self) -> int:
        """Failures recorded so far."""
        return self._failures

    @property
    def records_events(self) -> bool:
        """Whether individual events are being stored."""
        return self._record_events

    # ------------------------------------------------------------------ #
    def record(self, time: float, kind: EventKind, **payload: Any) -> None:
        """Record an event (stored only when event recording is enabled)."""
        if kind is EventKind.FAILURE:
            self._failures += 1
        if self._record_events:
            self._events.append(Event(time=time, kind=kind, payload=payload))

    def account(self, category: str, amount: float) -> None:
        """Accumulate ``amount`` seconds of ``category`` into the breakdown."""
        if amount < 0:
            raise ValueError(f"cannot account negative time {amount} to {category}")
        if amount:
            self._accumulator.add(category, amount)

    def account_many(self, amounts: Mapping[str, float]) -> None:
        """Accumulate several categories at once."""
        for category, amount in amounts.items():
            self.account(category, amount)

    # ------------------------------------------------------------------ #
    def finish(
        self,
        makespan: float,
        metadata: Optional[Mapping[str, Any]] = None,
        events: Optional[Iterable[Event]] = None,
    ) -> ExecutionTrace:
        """Freeze into an :class:`ExecutionTrace`."""
        collected = tuple(events) if events is not None else tuple(self._events)
        return ExecutionTrace(
            protocol=self._protocol,
            application_time=self._application_time,
            makespan=float(makespan),
            failure_count=self._failures,
            breakdown=self._accumulator.freeze(),
            events=collected,
            metadata=dict(metadata or {}),
        )
