"""Simulated 2-D block-cyclic process grid.

ScaLAPACK-style dense libraries distribute an ``n x n`` matrix over a
``P x Q`` grid of processes in a block-cyclic fashion: block ``(i, j)`` is
owned by process ``(i mod P, j mod Q)``.  When a process crashes, every block
it owns disappears; ABFT recovery must rebuild exactly that set of blocks.

This class provides the ownership map and the "which blocks did we just
lose?" query used by the fault-injection paths of the ABFT kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["ProcessGrid"]


@dataclass(frozen=True)
class ProcessGrid:
    """A ``rows x cols`` process grid with block-cyclic ownership.

    Parameters
    ----------
    rows / cols:
        Grid dimensions ``P`` and ``Q``.

    Examples
    --------
    >>> grid = ProcessGrid(2, 2)
    >>> grid.owner(0, 0), grid.owner(1, 3)
    ((0, 0), (1, 1))
    >>> sorted(grid.blocks_owned(0, 1, 2, 4))
    [(0, 1), (0, 3)]
    """

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError(
                f"grid dimensions must be positive, got {self.rows}x{self.cols}"
            )

    @property
    def size(self) -> int:
        """Total number of processes."""
        return self.rows * self.cols

    # ------------------------------------------------------------------ #
    def owner(self, block_row: int, block_col: int) -> tuple[int, int]:
        """Grid coordinates of the process owning block ``(block_row, block_col)``."""
        if block_row < 0 or block_col < 0:
            raise ValueError("block indices must be non-negative")
        return (block_row % self.rows, block_col % self.cols)

    def rank_of(self, proc_row: int, proc_col: int) -> int:
        """Linear (row-major) rank of the process at ``(proc_row, proc_col)``."""
        self._check_process(proc_row, proc_col)
        return proc_row * self.cols + proc_col

    def coordinates_of(self, rank: int) -> tuple[int, int]:
        """Grid coordinates of the process with linear rank ``rank``."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range [0, {self.size})")
        return divmod(rank, self.cols)

    def processes(self) -> Iterator[tuple[int, int]]:
        """Iterate over all process coordinates in row-major order."""
        for proc_row in range(self.rows):
            for proc_col in range(self.cols):
                yield (proc_row, proc_col)

    # ------------------------------------------------------------------ #
    def blocks_owned(
        self,
        proc_row: int,
        proc_col: int,
        block_rows: int,
        block_cols: int,
    ) -> list[tuple[int, int]]:
        """Blocks of a ``block_rows x block_cols`` block matrix owned by a process."""
        self._check_process(proc_row, proc_col)
        return [
            (i, j)
            for i in range(proc_row, block_rows, self.rows)
            for j in range(proc_col, block_cols, self.cols)
        ]

    def blocks_per_row(self, block_cols: int) -> int:
        """Maximum number of blocks a single process owns within one block row."""
        return int(np.ceil(block_cols / self.cols))

    def blocks_per_column(self, block_rows: int) -> int:
        """Maximum number of blocks a single process owns within one block column."""
        return int(np.ceil(block_rows / self.rows))

    def required_checksums(self, block_rows: int, block_cols: int) -> int:
        """Checksum multiplicity needed to survive one process failure.

        Recovery solves one small linear system per block row (column
        checksums) or per block column (row checksums); the number of
        unknowns is the number of lost blocks in that row/column, which for a
        block-cyclic layout is at most ``ceil(blocks / grid dimension)``.
        """
        return max(
            self.blocks_per_row(block_cols), self.blocks_per_column(block_rows)
        )

    # ------------------------------------------------------------------ #
    def _check_process(self, proc_row: int, proc_col: int) -> None:
        if not (0 <= proc_row < self.rows and 0 <= proc_col < self.cols):
            raise ValueError(
                f"process ({proc_row}, {proc_col}) outside grid "
                f"{self.rows}x{self.cols}"
            )
