"""Shared engine of the ABFT blocked factorizations (LU and Cholesky).

The engine maintains an *extended* working matrix carrying both row and
column checksum blocks.  At every step of the right-looking blocked
factorization the checksum blocks are updated by the same GEMM as the data,
so the following invariants hold (see :mod:`repro.abft.checksum` for the
algebra):

* the trailing matrix (block rows/columns ``>= k``) keeps valid row *and*
  column checksums over the not-yet-eliminated blocks;
* the already-computed ``L`` panels carry checksum rows equal to ``G @ L``;
* the already-computed ``U`` rows (LU only) carry checksum columns equal to
  ``U @ W``.

A process failure at the beginning of step ``k`` destroys every data block
owned by that process -- in the factored panels *and* in the trailing
matrix.  :meth:`BlockedAbftFactorization.run` rebuilds all of them from the
checksums and resumes the factorization, which is exactly the recovery the
composite protocol of the paper relies on during LIBRARY phases (and whose
cost the model calls ``Recons_ABFT``).

Checksum blocks are assumed to live on dedicated (non-failing) resources, a
common deployment choice that keeps the demonstration focused; the recovery
primitives themselves support any loss pattern within the checksum budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.abft.checksum import checksum_weight_matrix, generator_matrix
from repro.abft.process_grid import ProcessGrid
from repro.abft.recovery import (
    RecoveryError,
    recover_blocks_in_column,
    recover_blocks_in_row,
)

__all__ = ["AbftFactorizationResult", "BlockedAbftFactorization"]


@dataclass(frozen=True)
class AbftFactorizationResult:
    """Outcome of an ABFT-protected factorization.

    Attributes
    ----------
    kernel:
        ``"lu"`` or ``"cholesky"``.
    n / block_size / num_checksums:
        Problem size and protection parameters.
    l_factor:
        The computed ``L`` factor (unit lower triangular for LU, lower
        triangular for Cholesky), data part only.
    u_factor:
        The computed ``U`` factor for LU; ``None`` for Cholesky (use
        ``l_factor.T``).
    residual:
        ``max |A - L U|`` (or ``|A - L L^T|``) normalised by ``max |A|``.
    l_checksum_residual / u_checksum_residual:
        Residuals of the ``G L`` / ``U W`` checksum relations on the final
        factors (``u_checksum_residual`` is 0 for Cholesky).
    lost_blocks:
        Data blocks destroyed by the injected failure (empty if none).
    fail_step:
        Step at which the failure was injected (``None`` if none).
    reconstruction_time:
        Wall-clock seconds spent rebuilding the lost blocks.
    """

    kernel: str
    n: int
    block_size: int
    num_checksums: int
    l_factor: np.ndarray
    u_factor: Optional[np.ndarray]
    residual: float
    l_checksum_residual: float
    u_checksum_residual: float
    lost_blocks: tuple[tuple[int, int], ...] = field(default_factory=tuple)
    fail_step: Optional[int] = None
    reconstruction_time: float = 0.0

    @property
    def protected_recovery_succeeded(self) -> bool:
        """True when the factorization is accurate despite the injected failure."""
        return bool(self.lost_blocks) and self.residual < 1e-6


class BlockedAbftFactorization:
    """Right-looking blocked factorization of a checksum-extended matrix.

    Subclasses provide the panel kernel (:meth:`_factor_panel`) and the name
    of the kernel; everything else -- encoding, failure injection, recovery,
    verification -- is shared.

    Parameters
    ----------
    matrix:
        Square input matrix; its order must be a multiple of ``block_size``.
        LU requires a matrix that is factorizable without pivoting (e.g.
        diagonally dominant); Cholesky requires symmetric positive definite.
    block_size:
        Block size ``b`` of the algorithm and of the checksum encoding.
    num_checksums:
        Number of checksum block rows/columns.  ``None`` derives the minimum
        needed to survive one process failure on ``grid``.
    grid:
        Simulated process grid (default ``1 x 1``).
    """

    kernel = "generic"

    def __init__(
        self,
        matrix: np.ndarray,
        *,
        block_size: int,
        num_checksums: Optional[int] = None,
        grid: Optional[ProcessGrid] = None,
    ) -> None:
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("matrix must be square")
        if block_size <= 0 or matrix.shape[0] % block_size != 0:
            raise ValueError("matrix order must be a positive multiple of block_size")
        self._a = matrix.copy()
        self._n = matrix.shape[0]
        self._b = int(block_size)
        self._nb = self._n // self._b
        self._grid = grid or ProcessGrid(1, 1)
        if num_checksums is None:
            num_checksums = self._grid.required_checksums(self._nb, self._nb)
        if num_checksums <= 0:
            raise ValueError("num_checksums must be positive")
        self._c = int(num_checksums)
        self._generator = generator_matrix(self._nb, self._c)
        self._weights = checksum_weight_matrix(self._generator, self._b)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def matrix(self) -> np.ndarray:
        """The (copied) input matrix."""
        return self._a

    @property
    def block_size(self) -> int:
        """Block size ``b``."""
        return self._b

    @property
    def num_block_rows(self) -> int:
        """Number of data block rows/columns."""
        return self._nb

    @property
    def num_checksums(self) -> int:
        """Number of checksum block rows/columns."""
        return self._c

    @property
    def grid(self) -> ProcessGrid:
        """The simulated process grid."""
        return self._grid

    # ------------------------------------------------------------------ #
    # Subclass hooks
    # ------------------------------------------------------------------ #
    def _factor_panel(self, diag_block: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Factor the diagonal block; return ``(L_kk, U_kk)``."""
        raise NotImplementedError

    @property
    def _stores_u(self) -> bool:
        """Whether the kernel produces a distinct ``U`` factor."""
        return True

    # ------------------------------------------------------------------ #
    # Main driver
    # ------------------------------------------------------------------ #
    def run(
        self,
        *,
        fail_at_step: Optional[int] = None,
        fail_process: Optional[tuple[int, int]] = None,
        lost_blocks: Optional[Sequence[tuple[int, int]]] = None,
    ) -> AbftFactorizationResult:
        """Factor the matrix, optionally injecting and repairing a failure.

        Parameters
        ----------
        fail_at_step:
            Step (block column index) at whose beginning the failure strikes.
        fail_process:
            Grid coordinates of the process that crashes; all its data
            blocks are destroyed.
        lost_blocks:
            Explicit list of data blocks to destroy instead of (or in
            addition to) a process failure.
        """
        b, nb, c = self._b, self._nb, self._c
        n = self._n
        ext = (nb + c) * b

        # Build the fully extended working matrix [[A, AW], [G A, G A W]].
        working = np.empty((ext, ext), dtype=float)
        working[:n, :n] = self._a
        working[:n, n:] = self._a @ self._weights
        working[n:, :n] = self._weights.T @ self._a
        working[n:, n:] = self._weights.T @ self._a @ self._weights

        l_ext = np.zeros((ext, n), dtype=float)
        u_ext = np.zeros((n, ext), dtype=float)

        destroyed: list[tuple[int, int]] = []
        fail_step_used: Optional[int] = None
        reconstruction_time = 0.0

        for k in range(nb):
            if fail_at_step is not None and k == fail_at_step and (
                fail_process is not None or lost_blocks
            ):
                lost = self._lost_data_blocks(fail_process, lost_blocks)
                destroyed = lost
                fail_step_used = k
                start = time.perf_counter()
                self._inject_failure(working, l_ext, u_ext, lost, k)
                self._recover(working, l_ext, u_ext, lost, k)
                reconstruction_time = time.perf_counter() - start

            self._step(working, l_ext, u_ext, k)

        return self._build_result(
            l_ext, u_ext, destroyed, fail_step_used, reconstruction_time
        )

    # ------------------------------------------------------------------ #
    # One factorization step
    # ------------------------------------------------------------------ #
    def _step(
        self, working: np.ndarray, l_ext: np.ndarray, u_ext: np.ndarray, k: int
    ) -> None:
        b = self._b
        start, end = k * b, (k + 1) * b
        l_kk, u_kk = self._factor_panel(working[start:end, start:end])
        l_ext[start:end, start:end] = l_kk
        u_ext[start:end, start:end] = u_kk

        below = working[end:, start:end]
        right = working[start:end, end:]
        # L panel (rows below the diagonal block, checksum rows included):
        # solve X @ U_kk = below  =>  X = below @ inv(U_kk)
        l_panel = np.linalg.solve(u_kk.T, below.T).T
        # U panel (columns right of the diagonal block, checksum cols included):
        # solve L_kk @ X = right
        u_panel = np.linalg.solve(l_kk, right)

        l_ext[end:, start:end] = l_panel
        u_ext[start:end, end:] = u_panel
        working[end:, end:] -= l_panel @ u_panel

    # ------------------------------------------------------------------ #
    # Failure injection and recovery
    # ------------------------------------------------------------------ #
    def _lost_data_blocks(
        self,
        fail_process: Optional[tuple[int, int]],
        lost_blocks: Optional[Sequence[tuple[int, int]]],
    ) -> list[tuple[int, int]]:
        lost: set[tuple[int, int]] = set()
        if lost_blocks:
            lost.update(tuple(block) for block in lost_blocks)
        if fail_process is not None:
            lost.update(
                self._grid.blocks_owned(
                    fail_process[0], fail_process[1], self._nb, self._nb
                )
            )
        for i, j in lost:
            if not (0 <= i < self._nb and 0 <= j < self._nb):
                raise ValueError(f"lost block {(i, j)} outside the data matrix")
        return sorted(lost)

    def _inject_failure(
        self,
        working: np.ndarray,
        l_ext: np.ndarray,
        u_ext: np.ndarray,
        lost: Sequence[tuple[int, int]],
        k: int,
    ) -> None:
        """Destroy every lost data block in the factored and trailing regions."""
        b = self._b
        for i, j in lost:
            rows = slice(i * b, (i + 1) * b)
            cols = slice(j * b, (j + 1) * b)
            if i >= k and j >= k:
                working[rows, cols] = 0.0
            if j < k and i >= j:
                l_ext[rows, cols] = 0.0
            if i < k and j >= i and self._stores_u:
                u_ext[rows, cols] = 0.0

    def _recover(
        self,
        working: np.ndarray,
        l_ext: np.ndarray,
        u_ext: np.ndarray,
        lost: Sequence[tuple[int, int]],
        k: int,
    ) -> None:
        """Rebuild every lost block from the maintained checksums."""
        b, nb = self._b, self._nb
        # --- L panels: column j < k, protected by the G L relation -------- #
        for j in sorted({j for i, j in lost if j < k and i >= j}):
            lost_rows = sorted(i for i, jj in lost if jj == j and i >= j)
            recover_blocks_in_column(
                l_ext,
                slice(j * b, (j + 1) * b),
                lost_rows,
                block_size=b,
                generator=self._generator,
                participating_block_rows=range(j, nb),
                checksum_row_start=nb * b,
            )
        # --- U rows: row i < k, protected by the U W relation ------------- #
        if self._stores_u:
            for i in sorted({i for i, j in lost if i < k and j >= i}):
                lost_cols = sorted(j for ii, j in lost if ii == i and j >= i)
                recover_blocks_in_row(
                    u_ext,
                    slice(i * b, (i + 1) * b),
                    lost_cols,
                    block_size=b,
                    generator=self._generator,
                    participating_block_cols=range(i, nb),
                    checksum_col_start=nb * b,
                )
        # --- Trailing matrix: both directions, iteratively ---------------- #
        remaining = {(i, j) for i, j in lost if i >= k and j >= k}
        participating = list(range(k, nb))
        progress = True
        while remaining and progress:
            progress = False
            for i in sorted({i for i, _ in remaining}):
                lost_cols = sorted(j for ii, j in remaining if ii == i)
                if 0 < len(lost_cols) <= self._c:
                    recover_blocks_in_row(
                        working,
                        slice(i * b, (i + 1) * b),
                        lost_cols,
                        block_size=b,
                        generator=self._generator,
                        participating_block_cols=participating,
                        checksum_col_start=nb * b,
                    )
                    remaining -= {(i, j) for j in lost_cols}
                    progress = True
            for j in sorted({j for _, j in remaining}):
                lost_rows = sorted(i for i, jj in remaining if jj == j)
                if 0 < len(lost_rows) <= self._c:
                    recover_blocks_in_column(
                        working,
                        slice(j * b, (j + 1) * b),
                        lost_rows,
                        block_size=b,
                        generator=self._generator,
                        participating_block_rows=participating,
                        checksum_row_start=nb * b,
                    )
                    remaining -= {(i, j) for i in lost_rows}
                    progress = True
        if remaining:
            raise RecoveryError(
                f"unable to rebuild {len(remaining)} trailing blocks with "
                f"{self._c} checksums: {sorted(remaining)}"
            )

    # ------------------------------------------------------------------ #
    # Result assembly
    # ------------------------------------------------------------------ #
    def _build_result(
        self,
        l_ext: np.ndarray,
        u_ext: np.ndarray,
        destroyed: Sequence[tuple[int, int]],
        fail_step: Optional[int],
        reconstruction_time: float,
    ) -> AbftFactorizationResult:
        n = self._n
        l_data = l_ext[:n, :]
        scale = max(1.0, float(np.abs(self._a).max()))
        if self._stores_u:
            u_data = u_ext[:, :n]
            residual = float(np.abs(self._a - l_data @ u_data).max()) / scale
            u_checksum_residual = (
                float(np.abs(u_ext[:, n:] - u_data @ self._weights).max()) / scale
            )
            u_factor: Optional[np.ndarray] = u_data
        else:
            residual = float(np.abs(self._a - l_data @ l_data.T).max()) / scale
            u_checksum_residual = 0.0
            u_factor = None
        l_checksum_residual = (
            float(np.abs(l_ext[n:, :] - self._weights.T @ l_data).max()) / scale
        )
        return AbftFactorizationResult(
            kernel=self.kernel,
            n=n,
            block_size=self._b,
            num_checksums=self._c,
            l_factor=l_data,
            u_factor=u_factor,
            residual=residual,
            l_checksum_residual=l_checksum_residual,
            u_checksum_residual=u_checksum_residual,
            lost_blocks=tuple(destroyed),
            fail_step=fail_step,
            reconstruction_time=reconstruction_time,
        )
