"""ABFT blocked Cholesky factorization.

``A = L L^T`` for symmetric positive definite ``A``.  The protection scheme
is identical to the LU one (checksum rows protect the computed panels,
row+column checksums protect the trailing matrix); only the panel kernel
changes.  This mirrors the ABFT Cholesky of the dense-linear-algebra
literature the paper builds on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.abft.blocked import BlockedAbftFactorization

__all__ = ["AbftCholesky", "random_spd"]


def random_spd(n: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Random symmetric positive definite matrix of order ``n``."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    rng = rng or np.random.default_rng()
    factor = rng.standard_normal((n, n))
    return factor @ factor.T + n * np.eye(n)


class AbftCholesky(BlockedAbftFactorization):
    """ABFT-protected blocked Cholesky factorization.

    The result's :attr:`~repro.abft.blocked.AbftFactorizationResult.l_factor`
    satisfies ``A ~= L @ L.T``; no separate ``U`` factor is produced.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(3)
    >>> a = random_spd(12, rng)
    >>> result = AbftCholesky(a, block_size=4).run()
    >>> result.residual < 1e-8
    True
    """

    kernel = "cholesky"

    def _factor_panel(self, diag_block: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        lower = np.linalg.cholesky(np.asarray(diag_block, dtype=float))
        return lower, lower.T

    @property
    def _stores_u(self) -> bool:
        return False
