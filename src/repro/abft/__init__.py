"""Algorithm-Based Fault Tolerance (ABFT) dense linear-algebra substrate.

The composite protocol of the paper treats the ABFT library as a black box
characterised by two scalars: the slowdown ``phi`` of the protected
computation and the reconstruction time ``Recons_ABFT`` after a failure.
This package implements the mechanism behind those scalars, in the spirit of
Huang & Abraham's original scheme [7] and of the ABFT dense factorizations
the paper cites ([9], [10]):

* :mod:`repro.abft.process_grid` -- a simulated 2-D block-cyclic process
  grid (the data distribution of ScaLAPACK-like libraries); a process
  failure translates into the loss of every matrix block the process owns.
* :mod:`repro.abft.checksum` -- weighted block-checksum encodings
  (generator matrices, encoding, verification and erasure recovery).
* :mod:`repro.abft.matmul` -- ABFT matrix multiplication: the full-checksum
  product of Huang & Abraham, with fault injection and recovery.
* :mod:`repro.abft.lu` -- ABFT blocked LU factorization (no pivoting):
  checksum columns protect U and the trailing matrix, checksum rows protect
  L; a process failure in the middle of the factorization is repaired and
  the factorization continues, exactly the behaviour the composite protocol
  exploits during LIBRARY phases.
* :mod:`repro.abft.cholesky` -- ABFT blocked Cholesky factorization with the
  same protection scheme.
* :mod:`repro.abft.recovery` -- the erasure-recovery primitives shared by
  the kernels.
* :mod:`repro.abft.overhead` -- empirical measurement of ``phi`` and of the
  reconstruction time, providing model parameters grounded in the substrate.
"""

from repro.abft.process_grid import ProcessGrid
from repro.abft.checksum import (
    BlockChecksumEncoding,
    generator_matrix,
    encode_column_checksums,
    encode_row_checksums,
    verify_column_checksums,
    verify_row_checksums,
)
from repro.abft.recovery import (
    recover_blocks_in_row,
    recover_blocks_in_column,
    RecoveryError,
)
from repro.abft.matmul import AbftMatmulResult, abft_matmul
from repro.abft.lu import AbftLU, AbftFactorizationResult
from repro.abft.cholesky import AbftCholesky
from repro.abft.overhead import MeasuredOverhead, measure_overhead

__all__ = [
    "ProcessGrid",
    "BlockChecksumEncoding",
    "generator_matrix",
    "encode_column_checksums",
    "encode_row_checksums",
    "verify_column_checksums",
    "verify_row_checksums",
    "recover_blocks_in_row",
    "recover_blocks_in_column",
    "RecoveryError",
    "AbftMatmulResult",
    "abft_matmul",
    "AbftLU",
    "AbftCholesky",
    "AbftFactorizationResult",
    "MeasuredOverhead",
    "measure_overhead",
]
