"""Weighted block-checksum encodings (Huang & Abraham style).

A dense matrix is partitioned into ``b x b`` blocks.  A *column-checksum*
encoding appends ``c`` extra block columns, the ``r``-th of which is the
weighted sum ``sum_j g[r, j] * A[:, block j]``; a *row-checksum* encoding
appends extra block rows symmetrically.  With a Vandermonde-style generator
matrix ``g``, any ``c`` lost blocks within a block row (resp. block column)
can be recovered by solving a small linear system -- the erasure-recovery
primitive implemented in :mod:`repro.abft.recovery`.

The key algebraic facts exploited by the ABFT kernels are:

* ``[A, A W] x [B; W' B]`` -- matrix multiplication preserves checksums
  (Huang & Abraham [7]);
* ``[A; G A] = [L; G L] U`` and ``[A, A W] = L [U, U W]`` -- LU factorization
  turns row checksums of ``A`` into row checksums of ``L`` and column
  checksums of ``A`` into column checksums of ``U`` (Du et al. [9]), and the
  invariants hold for the trailing matrix at every step of the blocked
  right-looking algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "generator_matrix",
    "checksum_weight_matrix",
    "encode_column_checksums",
    "encode_row_checksums",
    "verify_column_checksums",
    "verify_row_checksums",
    "BlockChecksumEncoding",
]


def generator_matrix(num_blocks: int, num_checksums: int) -> np.ndarray:
    """Vandermonde-style generator of shape ``(num_checksums, num_blocks)``.

    Row ``r`` holds the weights ``(j + 1) ** r`` for ``j = 0..num_blocks-1``.
    Any square sub-matrix obtained by selecting ``k <= num_checksums`` rows
    and ``k`` distinct columns is non-singular (Vandermonde with distinct
    nodes), which is what makes multi-erasure recovery well-posed.
    """
    if num_blocks <= 0:
        raise ValueError(f"num_blocks must be positive, got {num_blocks}")
    if num_checksums <= 0:
        raise ValueError(f"num_checksums must be positive, got {num_checksums}")
    nodes = np.arange(1, num_blocks + 1, dtype=float)
    powers = np.arange(num_checksums, dtype=float)[:, None]
    return nodes[None, :] ** powers


def checksum_weight_matrix(generator: np.ndarray, block_size: int) -> np.ndarray:
    """Expand a block-level generator into an element-level weight matrix.

    Returns ``W`` of shape ``(num_blocks * block_size, num_checksums *
    block_size)`` such that ``A @ W`` computes the column-checksum blocks and
    ``W.T @ A`` (with the transposed generator) the row-checksum blocks.
    """
    generator = np.asarray(generator, dtype=float)
    if generator.ndim != 2:
        raise ValueError("generator must be a 2-D array")
    return np.kron(generator.T, np.eye(block_size))


def _check_blocking(extent: int, block_size: int, name: str) -> int:
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    if extent % block_size != 0:
        raise ValueError(
            f"{name} ({extent}) must be a multiple of block_size ({block_size})"
        )
    return extent // block_size


def encode_column_checksums(
    matrix: np.ndarray, block_size: int, generator: np.ndarray
) -> np.ndarray:
    """Append column-checksum block columns to ``matrix``.

    ``matrix`` has shape ``(m, nb * block_size)``; the result has
    ``num_checksums`` extra block columns appended on the right.
    """
    matrix = np.asarray(matrix, dtype=float)
    nb = _check_blocking(matrix.shape[1], block_size, "column count")
    generator = np.asarray(generator, dtype=float)
    if generator.shape[1] != nb:
        raise ValueError(
            f"generator has {generator.shape[1]} columns but the matrix has "
            f"{nb} block columns"
        )
    weights = checksum_weight_matrix(generator, block_size)
    return np.hstack([matrix, matrix @ weights])


def encode_row_checksums(
    matrix: np.ndarray, block_size: int, generator: np.ndarray
) -> np.ndarray:
    """Append row-checksum block rows to ``matrix`` (symmetric of columns)."""
    matrix = np.asarray(matrix, dtype=float)
    nb = _check_blocking(matrix.shape[0], block_size, "row count")
    generator = np.asarray(generator, dtype=float)
    if generator.shape[1] != nb:
        raise ValueError(
            f"generator has {generator.shape[1]} columns but the matrix has "
            f"{nb} block rows"
        )
    weights = checksum_weight_matrix(generator, block_size)
    return np.vstack([matrix, weights.T @ matrix])


def verify_column_checksums(
    extended: np.ndarray,
    block_size: int,
    generator: np.ndarray,
    *,
    rtol: float = 1e-8,
) -> float:
    """Residual of the column-checksum invariant, normalised by the matrix norm.

    Returns ``max |A @ W - CS| / max(1, |A|_inf)``; values below ``rtol``
    should be considered "checksums hold".
    """
    extended = np.asarray(extended, dtype=float)
    generator = np.asarray(generator, dtype=float)
    num_checksums = generator.shape[0]
    data_cols = extended.shape[1] - num_checksums * block_size
    if data_cols <= 0:
        raise ValueError("extended matrix has no data columns")
    data = extended[:, :data_cols]
    checksums = extended[:, data_cols:]
    weights = checksum_weight_matrix(generator, block_size)
    residual = np.abs(data @ weights - checksums).max() if checksums.size else 0.0
    scale = max(1.0, np.abs(data).max() if data.size else 1.0)
    del rtol  # kept in the signature for API symmetry with callers
    return float(residual / scale)


def verify_row_checksums(
    extended: np.ndarray,
    block_size: int,
    generator: np.ndarray,
    *,
    rtol: float = 1e-8,
) -> float:
    """Residual of the row-checksum invariant (see :func:`verify_column_checksums`)."""
    return verify_column_checksums(
        np.asarray(extended, dtype=float).T, block_size, generator, rtol=rtol
    )


@dataclass(frozen=True)
class BlockChecksumEncoding:
    """Convenience bundle: a blocking, a generator and both encodings.

    Parameters
    ----------
    block_size:
        Size ``b`` of the square blocks.
    num_block_rows / num_block_cols:
        Block dimensions of the *data* part of the matrix.
    num_checksums:
        Number ``c`` of checksum block rows/columns.

    Examples
    --------
    >>> import numpy as np
    >>> enc = BlockChecksumEncoding(block_size=2, num_block_rows=3,
    ...                             num_block_cols=3, num_checksums=1)
    >>> a = np.arange(36, dtype=float).reshape(6, 6)
    >>> ext = enc.encode_columns(a)
    >>> ext.shape
    (6, 8)
    >>> enc.column_residual(ext) < 1e-12
    True
    """

    block_size: int
    num_block_rows: int
    num_block_cols: int
    num_checksums: int

    def __post_init__(self) -> None:
        for name in ("block_size", "num_block_rows", "num_block_cols", "num_checksums"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def row_generator(self) -> np.ndarray:
        """Generator used for row checksums (over block rows)."""
        return generator_matrix(self.num_block_rows, self.num_checksums)

    @property
    def column_generator(self) -> np.ndarray:
        """Generator used for column checksums (over block columns)."""
        return generator_matrix(self.num_block_cols, self.num_checksums)

    @property
    def data_rows(self) -> int:
        """Number of data rows (elements)."""
        return self.num_block_rows * self.block_size

    @property
    def data_cols(self) -> int:
        """Number of data columns (elements)."""
        return self.num_block_cols * self.block_size

    def encode_columns(self, matrix: np.ndarray) -> np.ndarray:
        """Append column-checksum block columns."""
        return encode_column_checksums(matrix, self.block_size, self.column_generator)

    def encode_rows(self, matrix: np.ndarray) -> np.ndarray:
        """Append row-checksum block rows."""
        return encode_row_checksums(matrix, self.block_size, self.row_generator)

    def encode_full(self, matrix: np.ndarray) -> np.ndarray:
        """Append both row and column checksums (full-checksum matrix)."""
        return self.encode_rows(self.encode_columns_with_extended_generator(matrix))

    def encode_columns_with_extended_generator(self, matrix: np.ndarray) -> np.ndarray:
        """Column encoding used inside :meth:`encode_full` (internal helper)."""
        return encode_column_checksums(matrix, self.block_size, self.column_generator)

    def column_residual(self, extended: np.ndarray) -> float:
        """Residual of the column-checksum invariant on ``extended``."""
        return verify_column_checksums(
            extended, self.block_size, self.column_generator
        )

    def row_residual(self, extended: np.ndarray) -> float:
        """Residual of the row-checksum invariant on ``extended``."""
        return verify_row_checksums(extended, self.block_size, self.row_generator)
