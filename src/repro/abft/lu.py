"""ABFT blocked LU factorization (without pivoting).

``A = L U`` with ``L`` unit lower triangular.  The factorization runs on a
checksum-extended matrix (see :mod:`repro.abft.blocked`), which lets it
survive the loss of every block owned by a crashed process -- in the trailing
matrix *and* in the already computed panels -- and continue where it was.

Pivoting is deliberately omitted: it keeps the checksum algebra exact and is
the standard setting of ABFT LU prototypes; use diagonally dominant matrices
(:func:`random_diagonally_dominant`) as inputs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.abft.blocked import AbftFactorizationResult, BlockedAbftFactorization

__all__ = ["AbftLU", "lu_nopivot", "random_diagonally_dominant", "AbftFactorizationResult"]


def lu_nopivot(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Dense LU factorization without pivoting: ``A = L U``.

    ``L`` is unit lower triangular, ``U`` upper triangular.  Raises
    ``np.linalg.LinAlgError`` on a (near-)zero pivot; intended for small
    diagonal blocks of well-conditioned (e.g. diagonally dominant) matrices.
    """
    a = np.asarray(matrix, dtype=float).copy()
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError("matrix must be square")
    n = a.shape[0]
    lower = np.eye(n)
    for i in range(n):
        pivot = a[i, i]
        if abs(pivot) < 1e-300:
            raise np.linalg.LinAlgError(
                f"zero pivot encountered at index {i}; the matrix is not "
                "factorizable without pivoting"
            )
        multipliers = a[i + 1 :, i] / pivot
        lower[i + 1 :, i] = multipliers
        a[i + 1 :, i:] -= np.outer(multipliers, a[i, i:])
        a[i + 1 :, i] = 0.0
    return lower, np.triu(a)


def random_diagonally_dominant(
    n: int, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Random strictly diagonally dominant matrix (LU-safe without pivoting)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    rng = rng or np.random.default_rng()
    matrix = rng.standard_normal((n, n))
    matrix += np.diag(np.abs(matrix).sum(axis=1) + 1.0)
    return matrix


class AbftLU(BlockedAbftFactorization):
    """ABFT-protected blocked LU factorization.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.abft import ProcessGrid
    >>> rng = np.random.default_rng(7)
    >>> a = random_diagonally_dominant(16, rng)
    >>> lu = AbftLU(a, block_size=4, grid=ProcessGrid(2, 2))
    >>> result = lu.run(fail_at_step=2, fail_process=(0, 1))
    >>> result.residual < 1e-8
    True
    >>> len(result.lost_blocks) > 0
    True
    """

    kernel = "lu"

    def _factor_panel(self, diag_block: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return lu_nopivot(diag_block)

    @property
    def _stores_u(self) -> bool:
        return True
