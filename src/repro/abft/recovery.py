"""Erasure recovery of lost matrix blocks from weighted checksums.

The primitives here rebuild blocks destroyed by a process failure.  They work
one block row (column-checksum recovery) or one block column (row-checksum
recovery) at a time: within that row/column, the surviving data blocks plus
the checksum blocks form a linear system in the lost blocks, with scalar
coefficients taken from the generator matrix.  Up to ``num_checksums`` blocks
per row/column can be recovered.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["RecoveryError", "recover_blocks_in_row", "recover_blocks_in_column"]


class RecoveryError(RuntimeError):
    """Raised when the lost blocks cannot be reconstructed.

    Typical causes: more blocks lost within a block row/column than there are
    checksums, or a (numerically) singular recovery system.
    """


def _solve_erasures(
    generator: np.ndarray,
    participating: Sequence[int],
    lost: Sequence[int],
    surviving_sum_rhs: np.ndarray,
) -> np.ndarray:
    """Solve the per-row/column erasure system.

    Parameters
    ----------
    generator:
        Block-level generator, shape ``(c, num_blocks)``.
    participating:
        Block indices participating in the checksum invariant (e.g. only the
        not-yet-eliminated block columns during a factorization).
    lost:
        Lost block indices (must be a subset of ``participating``).
    surviving_sum_rhs:
        Array of shape ``(c, b, b)`` holding, for each checksum ``r``,
        ``checksum_r - sum_{j surviving} g[r, j] * block_j``.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(len(lost), b, b)`` with the reconstructed blocks,
        ordered like ``lost``.
    """
    lost = list(lost)
    participating_set = set(participating)
    if not lost:
        return np.empty((0,) + surviving_sum_rhs.shape[1:])
    if not set(lost) <= participating_set:
        raise RecoveryError(
            "lost blocks must be part of the participating checksum set"
        )
    num_checksums = generator.shape[0]
    if len(lost) > num_checksums:
        raise RecoveryError(
            f"cannot recover {len(lost)} lost blocks with only "
            f"{num_checksums} checksums"
        )
    coefficients = generator[: len(lost)][:, lost]
    rhs = surviving_sum_rhs[: len(lost)]
    block_shape = rhs.shape[1:]
    try:
        solution = np.linalg.solve(
            coefficients, rhs.reshape(len(lost), -1)
        )
    except np.linalg.LinAlgError as exc:  # pragma: no cover - defensive
        raise RecoveryError("singular erasure-recovery system") from exc
    return solution.reshape((len(lost),) + block_shape)


def recover_blocks_in_row(
    matrix: np.ndarray,
    row_slice: slice,
    lost_block_cols: Sequence[int],
    *,
    block_size: int,
    generator: np.ndarray,
    participating_block_cols: Sequence[int],
    checksum_col_start: int,
) -> None:
    """Rebuild lost blocks of one block row from its column checksums (in place).

    Parameters
    ----------
    matrix:
        The extended working matrix (modified in place).
    row_slice:
        The element rows of the block row being repaired.
    lost_block_cols:
        Data block-column indices whose blocks (restricted to ``row_slice``)
        were lost.
    block_size:
        Block size ``b``.
    generator:
        Block-level generator of shape ``(c, num_data_block_cols)``.
    participating_block_cols:
        Data block columns participating in the invariant for this row
        (all of them for U rows, only the trailing ones during a
        factorization step).
    checksum_col_start:
        Element-column index where the checksum block columns begin.
    """
    lost = list(lost_block_cols)
    if not lost:
        return
    generator = np.asarray(generator, dtype=float)
    num_checksums = generator.shape[0]
    rows = matrix[row_slice]
    surviving = [j for j in participating_block_cols if j not in set(lost)]

    rhs = np.empty((num_checksums, rows.shape[0], block_size), dtype=float)
    for r in range(num_checksums):
        checksum_block = rows[
            :, checksum_col_start + r * block_size : checksum_col_start + (r + 1) * block_size
        ]
        acc = checksum_block.copy()
        for j in surviving:
            acc -= generator[r, j] * rows[:, j * block_size : (j + 1) * block_size]
        rhs[r] = acc

    recovered = _solve_erasures(generator, participating_block_cols, lost, rhs)
    for index, j in enumerate(lost):
        matrix[row_slice, j * block_size : (j + 1) * block_size] = recovered[index]


def recover_blocks_in_column(
    matrix: np.ndarray,
    col_slice: slice,
    lost_block_rows: Sequence[int],
    *,
    block_size: int,
    generator: np.ndarray,
    participating_block_rows: Sequence[int],
    checksum_row_start: int,
) -> None:
    """Rebuild lost blocks of one block column from its row checksums (in place).

    Symmetric counterpart of :func:`recover_blocks_in_row`; used to repair
    lost blocks of the ``L`` factor, which are protected by the checksum
    block *rows*.
    """
    lost = list(lost_block_rows)
    if not lost:
        return
    generator = np.asarray(generator, dtype=float)
    num_checksums = generator.shape[0]
    cols = matrix[:, col_slice]
    surviving = [i for i in participating_block_rows if i not in set(lost)]

    rhs = np.empty((num_checksums, block_size, cols.shape[1]), dtype=float)
    for r in range(num_checksums):
        checksum_block = cols[
            checksum_row_start + r * block_size : checksum_row_start + (r + 1) * block_size, :
        ]
        acc = checksum_block.copy()
        for i in surviving:
            acc -= generator[r, i] * cols[i * block_size : (i + 1) * block_size, :]
        rhs[r] = acc

    recovered = _solve_erasures(generator, participating_block_rows, lost, rhs)
    for index, i in enumerate(lost):
        matrix[i * block_size : (i + 1) * block_size, col_slice] = recovered[index]
