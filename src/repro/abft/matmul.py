"""ABFT matrix multiplication (Huang & Abraham full-checksum product).

Encoding ``A`` with checksum *rows* and ``B`` with checksum *columns* makes
the product carry both: ``[A; G A] @ [B, B W] = [[C, C W], [G C, G C W]]``.
Any block of ``C`` destroyed by a process failure can then be rebuilt from
the surviving blocks of its block row (using the column checksums) or of its
block column (using the row checksums), without recomputing anything.

This is the historical root of ABFT [7] and the simplest place to see the
mechanism end to end, which is why it is the first example of the package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.abft.checksum import (
    encode_column_checksums,
    encode_row_checksums,
    generator_matrix,
    verify_column_checksums,
    verify_row_checksums,
)
from repro.abft.process_grid import ProcessGrid
from repro.abft.recovery import RecoveryError, recover_blocks_in_column, recover_blocks_in_row

__all__ = ["AbftMatmulResult", "abft_matmul"]


@dataclass
class AbftMatmulResult:
    """Outcome of an ABFT-protected matrix multiplication.

    Attributes
    ----------
    product:
        The recovered data part of the product ``C = A @ B``.
    extended:
        The full-checksum product (data + checksum block rows/columns).
    lost_blocks:
        Blocks of ``C`` that were destroyed by the injected failure.
    recovered_blocks:
        Blocks that were rebuilt from checksums (equal to ``lost_blocks`` on
        success).
    column_residual / row_residual:
        Checksum-invariant residuals of the final extended product.
    error:
        ``max |C - A @ B|`` against a straight NumPy reference product.
    """

    product: np.ndarray
    extended: np.ndarray
    lost_blocks: list[tuple[int, int]] = field(default_factory=list)
    recovered_blocks: list[tuple[int, int]] = field(default_factory=list)
    column_residual: float = 0.0
    row_residual: float = 0.0
    error: float = 0.0

    @property
    def recovered(self) -> bool:
        """True when every lost block was rebuilt."""
        return sorted(self.lost_blocks) == sorted(self.recovered_blocks)


def abft_matmul(
    a: np.ndarray,
    b: np.ndarray,
    *,
    block_size: int,
    num_checksums: int = 1,
    grid: Optional[ProcessGrid] = None,
    fail_process: Optional[tuple[int, int]] = None,
    lost_blocks: Optional[Sequence[tuple[int, int]]] = None,
) -> AbftMatmulResult:
    """Multiply ``a @ b`` under ABFT protection, optionally injecting a failure.

    Parameters
    ----------
    a, b:
        Input matrices; every dimension must be a multiple of ``block_size``.
    block_size:
        Block size of the checksum encoding.
    num_checksums:
        Number of checksum block rows/columns (the maximum number of lost
        blocks recoverable per block row/column).
    grid:
        Process grid owning the *result* blocks; required when
        ``fail_process`` is given.
    fail_process:
        Grid coordinates of a process whose result blocks are destroyed after
        the multiplication (simulating a crash before the result could be
        consumed); they are then rebuilt from the checksums.
    lost_blocks:
        Alternatively, an explicit list of result blocks to destroy.

    Raises
    ------
    RecoveryError
        If more blocks are lost in some block row *and* block column than the
        checksums can repair.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("a and b must be 2-D arrays")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} x {b.shape}")
    for extent in (*a.shape, *b.shape):
        if extent % block_size != 0:
            raise ValueError("matrix dimensions must be multiples of block_size")

    block_rows = a.shape[0] // block_size
    block_cols = b.shape[1] // block_size
    row_generator = generator_matrix(block_rows, num_checksums)
    col_generator = generator_matrix(block_cols, num_checksums)

    a_encoded = encode_row_checksums(a, block_size, row_generator)
    b_encoded = encode_column_checksums(b, block_size, col_generator)
    extended = a_encoded @ b_encoded

    reference = a @ b
    data_rows = block_rows * block_size
    data_cols = block_cols * block_size

    to_destroy: list[tuple[int, int]] = []
    if lost_blocks is not None:
        to_destroy.extend(tuple(block) for block in lost_blocks)
    if fail_process is not None:
        if grid is None:
            raise ValueError("a process grid is required to interpret fail_process")
        to_destroy.extend(
            grid.blocks_owned(fail_process[0], fail_process[1], block_rows, block_cols)
        )
    to_destroy = sorted(set(to_destroy))

    for i, j in to_destroy:
        extended[
            i * block_size : (i + 1) * block_size,
            j * block_size : (j + 1) * block_size,
        ] = 0.0

    recovered: list[tuple[int, int]] = []
    if to_destroy:
        recovered = _recover_product_blocks(
            extended,
            to_destroy,
            block_size=block_size,
            block_rows=block_rows,
            block_cols=block_cols,
            num_checksums=num_checksums,
            row_generator=row_generator,
            col_generator=col_generator,
        )

    product = extended[:data_rows, :data_cols]
    return AbftMatmulResult(
        product=product,
        extended=extended,
        lost_blocks=to_destroy,
        recovered_blocks=recovered,
        column_residual=verify_column_checksums(
            extended[:data_rows, :], block_size, col_generator
        ),
        row_residual=verify_row_checksums(
            extended[:, :data_cols], block_size, row_generator
        ),
        error=float(np.abs(product - reference).max()),
    )


def _recover_product_blocks(
    extended: np.ndarray,
    lost: Sequence[tuple[int, int]],
    *,
    block_size: int,
    block_rows: int,
    block_cols: int,
    num_checksums: int,
    row_generator: np.ndarray,
    col_generator: np.ndarray,
) -> list[tuple[int, int]]:
    """Iteratively rebuild lost product blocks using both checksum directions."""
    remaining = set(lost)
    recovered: list[tuple[int, int]] = []
    checksum_col_start = block_cols * block_size
    checksum_row_start = block_rows * block_size

    progress = True
    while remaining and progress:
        progress = False
        # Column-checksum pass: repair block rows with few enough losses.
        for i in sorted({i for i, _ in remaining}):
            lost_cols = sorted(j for r, j in remaining if r == i)
            if 0 < len(lost_cols) <= num_checksums:
                recover_blocks_in_row(
                    extended,
                    slice(i * block_size, (i + 1) * block_size),
                    lost_cols,
                    block_size=block_size,
                    generator=col_generator,
                    participating_block_cols=range(block_cols),
                    checksum_col_start=checksum_col_start,
                )
                for j in lost_cols:
                    remaining.discard((i, j))
                    recovered.append((i, j))
                progress = True
        # Row-checksum pass: repair block columns with few enough losses.
        for j in sorted({j for _, j in remaining}):
            lost_rows = sorted(i for i, c in remaining if c == j)
            if 0 < len(lost_rows) <= num_checksums:
                recover_blocks_in_column(
                    extended,
                    slice(j * block_size, (j + 1) * block_size),
                    lost_rows,
                    block_size=block_size,
                    generator=row_generator,
                    participating_block_rows=range(block_rows),
                    checksum_row_start=checksum_row_start,
                )
                for i in lost_rows:
                    remaining.discard((i, j))
                    recovered.append((i, j))
                progress = True
    if remaining:
        raise RecoveryError(
            f"unable to recover {len(remaining)} lost blocks with "
            f"{num_checksums} checksums: {sorted(remaining)}"
        )
    return recovered
