"""Empirical measurement of the ABFT overhead parameters.

The analytical model consumes two scalars describing the ABFT library:

* ``phi`` -- the slowdown of the protected computation (the paper quotes
  ~1.03 from production ScaLAPACK deployments);
* ``Recons_ABFT`` -- the time to reconstruct the lost data after a failure
  (the paper uses 2 seconds).

This module measures both on the substrate kernels of :mod:`repro.abft`, so
that users can ground the model parameters in an actual implementation
instead of quoting literature values.  The absolute numbers obviously depend
on the host and on NumPy's BLAS, but the *structure* (an overhead that is a
small constant factor, and a reconstruction cost that does not grow with the
amount of work already performed) is exactly what the model assumes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.abft.cholesky import AbftCholesky, random_spd
from repro.abft.lu import AbftLU, lu_nopivot, random_diagonally_dominant
from repro.abft.process_grid import ProcessGrid

__all__ = ["MeasuredOverhead", "measure_overhead"]


@dataclass(frozen=True)
class MeasuredOverhead:
    """Measured ABFT overhead parameters for one kernel and problem size.

    Attributes
    ----------
    kernel:
        ``"lu"`` or ``"cholesky"``.
    n / block_size / num_checksums:
        Problem size and protection parameters.
    unprotected_time:
        Mean wall-clock seconds of the unprotected kernel.
    protected_time:
        Mean wall-clock seconds of the ABFT-protected kernel (no failure).
    reconstruction_time:
        Mean wall-clock seconds of one mid-factorization recovery.
    trials:
        Number of timing repetitions.
    """

    kernel: str
    n: int
    block_size: int
    num_checksums: int
    unprotected_time: float
    protected_time: float
    reconstruction_time: float
    trials: int

    @property
    def phi(self) -> float:
        """Measured slowdown factor ``protected / unprotected``."""
        if self.unprotected_time <= 0:
            return float("nan")
        return self.protected_time / self.unprotected_time


def _time_callable(function, trials: int) -> float:
    durations = []
    for _ in range(trials):
        start = time.perf_counter()
        function()
        durations.append(time.perf_counter() - start)
    return float(np.median(durations))


def measure_overhead(
    kernel: str = "lu",
    *,
    n: int = 128,
    block_size: int = 32,
    trials: int = 3,
    grid: Optional[ProcessGrid] = None,
    rng: Optional[np.random.Generator] = None,
) -> MeasuredOverhead:
    """Measure ``phi`` and the reconstruction time for one ABFT kernel.

    Parameters
    ----------
    kernel:
        ``"lu"`` or ``"cholesky"``.
    n:
        Matrix order (multiple of ``block_size``).
    block_size:
        Block size of the blocked algorithms.
    trials:
        Number of repetitions; the median is reported.
    grid:
        Process grid used for the failure-injection measurement (defaults to
        ``2 x 2``).
    rng:
        Random generator for the input matrix.
    """
    if kernel not in ("lu", "cholesky"):
        raise ValueError(f"unknown kernel {kernel!r}; expected 'lu' or 'cholesky'")
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    rng = rng or np.random.default_rng(2014)
    grid = grid or ProcessGrid(2, 2)

    if kernel == "lu":
        matrix = random_diagonally_dominant(n, rng)

        def unprotected() -> None:
            lu_nopivot(matrix)

        def protected() -> None:
            AbftLU(matrix, block_size=block_size, grid=grid).run()

        def with_failure():
            factorization = AbftLU(matrix, block_size=block_size, grid=grid)
            return factorization.run(
                fail_at_step=max(1, (n // block_size) // 2), fail_process=(0, 0)
            )

    else:
        matrix = random_spd(n, rng)

        def unprotected() -> None:
            np.linalg.cholesky(matrix)

        def protected() -> None:
            AbftCholesky(matrix, block_size=block_size, grid=grid).run()

        def with_failure():
            factorization = AbftCholesky(matrix, block_size=block_size, grid=grid)
            return factorization.run(
                fail_at_step=max(1, (n // block_size) // 2), fail_process=(0, 0)
            )

    unprotected_time = _time_callable(unprotected, trials)
    protected_time = _time_callable(protected, trials)
    reconstruction_times = [with_failure().reconstruction_time for _ in range(trials)]

    sample = with_failure()
    num_checksums = sample.num_checksums

    return MeasuredOverhead(
        kernel=kernel,
        n=n,
        block_size=block_size,
        num_checksums=num_checksums,
        unprotected_time=unprotected_time,
        protected_time=protected_time,
        reconstruction_time=float(np.median(reconstruction_times)),
        trials=trials,
    )
