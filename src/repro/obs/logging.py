"""Structured stderr logging: one helper, one format, one dedupe set.

Diagnostics across the CLI, campaign, and engine layers used to be
hand-rolled ``print(..., file=sys.stderr)`` calls, each guarding its own
module-global dedupe set.  :func:`log` replaces them with a single
structured emitter::

    note: event=backend-fallback backend=auto engine=event detail="..."

The format is ``level: event=<name> key=value ...`` -- stable enough to
grep, structured enough to parse.  String values are JSON-quoted when
they contain anything beyond ``[A-Za-z0-9_./:+-]`` so a field boundary
is always a space.

Every emission (and every suppressed duplicate) also increments the
``repro_log_events_total{level,event}`` counter on the global metrics
registry, so ``repro obs dump`` accounts for diagnostics alongside
engine and campaign metrics.

Dedupe: pass ``dedupe=<key>``; the second call with the same key is
swallowed.  :func:`reset_log_notes` clears the set -- ``repro.cli.main``
calls it on entry so each CLI invocation reports its obstacles afresh
even when several invocations share one process (the test suite does
this constantly).
"""

from __future__ import annotations

import json
import sys
import threading
from typing import Optional, TextIO

from repro.obs import metrics as _metrics

__all__ = ["log", "reset_log_notes", "format_fields"]

_PLAIN_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_./:+-"
)

_lock = threading.Lock()
#: Dedupe keys already emitted; cleared by :func:`reset_log_notes`.
_emitted: set = set()


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value) if isinstance(value, float) else str(value)
    text = str(value)
    if text and all(ch in _PLAIN_CHARS for ch in text):
        return text
    return json.dumps(text)


def format_fields(**fields: object) -> str:
    """Render ``key=value`` pairs in the declared order."""
    return " ".join(f"{key}={_format_value(value)}" for key, value in fields.items())


def log(
    level: str,
    event: str,
    *,
    dedupe: Optional[str] = None,
    stream: Optional[TextIO] = None,
    **fields: object,
) -> bool:
    """Emit one structured diagnostic line to stderr.

    Returns ``True`` when a line was written, ``False`` when it was
    suppressed by ``dedupe``.  The ``repro_log_events_total`` counter is
    incremented either way (suppressed repeats are still events).
    """
    counter = _metrics.global_registry().counter(
        "repro_log_events_total",
        "Structured log events by level and event name.",
        ("level", "event"),
    )
    counter.inc(level=level, event=event)
    if dedupe is not None:
        with _lock:
            if dedupe in _emitted:
                return False
            _emitted.add(dedupe)
    line = f"{level}: event={event}"
    if fields:
        line += " " + format_fields(**fields)
    print(line, file=stream if stream is not None else sys.stderr)
    return True


def reset_log_notes() -> None:
    """Forget every dedupe key so the next run reports its notes afresh."""
    with _lock:
        _emitted.clear()
