"""The declarative catalog of every metric family the stack emits.

Keeping the catalog in one place buys three things:

* ``GET /metrics`` and ``repro obs dump`` show the complete schema --
  every family renders its ``# HELP`` / ``# TYPE`` header even before
  traffic touches it -- so dashboards can be built against an idle
  service.
* The CI ``service-smoke`` job asserts that a live scrape contains every
  cataloged family, which catches a renamed or dropped metric the day it
  happens instead of when a dashboard goes blank.
* EXPERIMENTS.md documents the same names this module registers; a test
  cross-checks the two so the docs cannot silently rot.

Families are split into two scopes: ``global`` families live on the
process-wide registry (engine, campaign, optimizer, CLI), ``service``
families live on each :class:`~repro.service.app.AdvisorService`'s
private registry so concurrent service instances in one test process do
not bleed counters into each other.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry, global_registry

__all__ = ["CATALOG", "MetricSpec", "SCOPE_GLOBAL", "SCOPE_SERVICE",
           "family", "family_names", "preregister"]

SCOPE_GLOBAL = "global"
SCOPE_SERVICE = "service"


class MetricSpec(NamedTuple):
    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    labelnames: Tuple[str, ...]
    scope: str


CATALOG: Tuple[MetricSpec, ...] = (
    # -- engine / campaign / CLI (global registry) --------------------- #
    MetricSpec(
        "repro_engine_runs_total",
        "counter",
        "Vectorized engine invocations (one per run_trial_range call).",
        ("protocol",),
        SCOPE_GLOBAL,
    ),
    MetricSpec(
        "repro_engine_trials_total",
        "counter",
        "Monte-Carlo trials simulated by the vectorized engine.",
        ("protocol",),
        SCOPE_GLOBAL,
    ),
    MetricSpec(
        "repro_engine_phase_seconds_total",
        "counter",
        "Wall-clock seconds per engine phase "
        "(compile, sample, execute, gather); only accumulated while "
        "instrumentation is enabled.",
        ("phase", "protocol"),
        SCOPE_GLOBAL,
    ),
    MetricSpec(
        "repro_campaign_shards_total",
        "counter",
        "Shards dispatched by the sharded vectorized executor.",
        ("backend",),
        SCOPE_GLOBAL,
    ),
    MetricSpec(
        "repro_sweep_points_total",
        "counter",
        "Sweep grid points, by whether the point was computed or "
        "replayed from the campaign cache.",
        ("outcome",),
        SCOPE_GLOBAL,
    ),
    MetricSpec(
        "repro_refine_candidates_total",
        "counter",
        "Candidate periods evaluated by the period refiner, by whether "
        "the simulation was computed or served from the sweep cache.",
        ("outcome",),
        SCOPE_GLOBAL,
    ),
    MetricSpec(
        "repro_log_events_total",
        "counter",
        "Structured log events by level and event name.",
        ("level", "event"),
        SCOPE_GLOBAL,
    ),
    # -- advisor service (per-service registry) ------------------------ #
    MetricSpec(
        "repro_service_requests_total",
        "counter",
        "HTTP requests served, by endpoint.",
        ("endpoint",),
        SCOPE_SERVICE,
    ),
    MetricSpec(
        "repro_service_answers_total",
        "counter",
        "Cacheable answers served, by the tier that produced them.",
        ("tier",),
        SCOPE_SERVICE,
    ),
    MetricSpec(
        "repro_service_request_seconds",
        "histogram",
        "Request service time in seconds, by endpoint and serving tier.",
        ("endpoint", "tier"),
        SCOPE_SERVICE,
    ),
    MetricSpec(
        "repro_service_answer_cache_events_total",
        "counter",
        "Answer-cache events (hit, miss, eviction).",
        ("event",),
        SCOPE_SERVICE,
    ),
    MetricSpec(
        "repro_service_answer_cache_entries",
        "gauge",
        "Entries currently held by the tier-1 answer cache.",
        (),
        SCOPE_SERVICE,
    ),
    MetricSpec(
        "repro_service_jobs_submitted_total",
        "counter",
        "Background Monte-Carlo jobs accepted (deduplicated submissions "
        "count once).",
        (),
        SCOPE_SERVICE,
    ),
    MetricSpec(
        "repro_service_job_transitions_total",
        "counter",
        "Background job state transitions (pending, running, done, "
        "failed).",
        ("state",),
        SCOPE_SERVICE,
    ),
    MetricSpec(
        "repro_service_jobs",
        "gauge",
        "Background jobs currently in each state (sampled at scrape).",
        ("state",),
        SCOPE_SERVICE,
    ),
    MetricSpec(
        "repro_service_uptime_seconds",
        "gauge",
        "Seconds since the service instance was constructed (sampled at "
        "scrape).",
        (),
        SCOPE_SERVICE,
    ),
)


_SPEC_BY_NAME = {spec.name: spec for spec in CATALOG}


def family_names(scope: Optional[str] = None) -> Tuple[str, ...]:
    """Cataloged family names, optionally restricted to one scope."""
    return tuple(
        spec.name
        for spec in CATALOG
        if scope is None or spec.scope == scope
    )


def family(name: str, registry: Optional[MetricsRegistry] = None):
    """The live family for a cataloged name, registered on first use.

    The single way instrumented code obtains a metric handle: the kind,
    help text, and label names come from the catalog entry, so call
    sites cannot drift from the documented schema.  ``registry``
    defaults to the global registry (the right home for every
    ``global``-scope family).
    """
    spec = _SPEC_BY_NAME[name]
    target = registry if registry is not None else global_registry()
    if spec.kind == "counter":
        return target.counter(spec.name, spec.help, spec.labelnames)
    if spec.kind == "gauge":
        return target.gauge(spec.name, spec.help, spec.labelnames)
    if spec.kind == "histogram":
        return target.histogram(spec.name, spec.help, spec.labelnames)
    raise ValueError(f"unknown metric kind {spec.kind!r}")  # pragma: no cover


def preregister(
    registry: MetricsRegistry, scopes: Sequence[str] = (SCOPE_GLOBAL,)
) -> None:
    """Register every cataloged family for ``scopes`` on ``registry``.

    Registration is idempotent, so callers that already hold live family
    handles (the service does) can preregister safely; the point is that
    a scrape of an idle registry still shows the full schema.
    """
    wanted: Iterable[MetricSpec] = (
        spec for spec in CATALOG if spec.scope in scopes
    )
    for spec in wanted:
        family(spec.name, registry)
