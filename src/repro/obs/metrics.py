"""Process-local metrics registry: counters, gauges, histograms.

Zero-dependency observability primitives for the reproduction stack.  A
:class:`MetricsRegistry` holds named metric *families* (a counter, gauge,
or histogram plus its label names); each distinct label-value combination
is a *series*.  Registries render to the Prometheus text exposition
format (``GET /metrics`` on the advisor service) and to deterministic
JSON (``repro obs dump``).

Design constraints, in order:

1. **Correctness under threads.**  The advisor service increments from
   its asyncio loop and from job-manager worker threads; every mutation
   takes the registry lock.  The lock is per-registry, uncontended in
   practice (increments are rare relative to simulated trials).
2. **Determinism.**  Rendering sorts families by name and series by
   label values; JSON dumps round-trip byte-identically for identical
   counter states, matching the repo-wide deterministic-output contract.
3. **No global coupling.**  Anything can own a private registry (each
   ``AdvisorService`` does, so per-instance ``/healthz`` counters stay
   independent across the many services a test process builds); the
   module-level :func:`global_registry` is merely the default home for
   engine/CLI metrics.

Histograms use fixed log-spaced latency buckets (:data:`LATENCY_BUCKETS`,
three per decade from 100 microseconds to 100 seconds) so series from
different runs are always mergeable -- the same reason Prometheus
client libraries fix bucket layouts per family.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "reset_global_registry",
]

#: Fixed log-spaced latency buckets (seconds): three per decade from
#: 100 us to 100 s.  ``+Inf`` is implicit.  Shared by every histogram in
#: the stack unless a family overrides them at registration.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.000215,
    0.000464,
    0.001,
    0.00215,
    0.00464,
    0.01,
    0.0215,
    0.0464,
    0.1,
    0.215,
    0.464,
    1.0,
    2.15,
    4.64,
    10.0,
    21.5,
    46.4,
    100.0,
)


def _format_number(value: float) -> str:
    """Render a sample value the way Prometheus clients do.

    Integral values print without a trailing ``.0`` so counters look
    like counts; everything else uses ``repr`` (shortest round-trip).
    """
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + inner + "}"


class _Family:
    """Base class for one registered metric family."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        lock: threading.RLock,
    ) -> None:
        self.name = name
        self.help = help_text
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._lock = lock
        self._cells: Dict[Tuple[str, ...], object] = {}

    def _key(self, labels: Mapping[str, object]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    # -- rendering hooks (hold the lock when called) ------------------- #
    def _sorted_cells(self) -> List[Tuple[Tuple[str, ...], object]]:
        cells = dict(self._cells)
        if not self.labelnames and () not in cells:
            # An unlabeled family always exposes its single series, so a
            # registered-but-untouched counter renders as 0 rather than
            # vanishing from the scrape.
            cells[()] = self._zero()
        return sorted(cells.items())

    def _zero(self) -> object:
        raise NotImplementedError

    def _render_cell(self, key: Tuple[str, ...], cell: object) -> List[str]:
        raise NotImplementedError

    def _dump_cell(self, key: Tuple[str, ...], cell: object) -> dict:
        raise NotImplementedError

    def render(self) -> List[str]:
        with self._lock:
            lines = [
                f"# HELP {self.name} {self.help}",
                f"# TYPE {self.name} {self.kind}",
            ]
            for key, cell in self._sorted_cells():
                lines.extend(self._render_cell(key, cell))
            return lines

    def dump(self) -> dict:
        with self._lock:
            return {
                "kind": self.kind,
                "help": self.help,
                "labelnames": list(self.labelnames),
                "series": [
                    dict(
                        {"labels": dict(zip(self.labelnames, key))},
                        **self._dump_cell(key, cell),
                    )
                    for key, cell in self._sorted_cells()
                ],
            }


class Counter(_Family):
    """A monotonically increasing sum."""

    kind = "counter"

    def _zero(self) -> float:
        return 0.0

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._cells[key] = float(self._cells.get(key, 0.0)) + amount

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._cells.get(key, 0.0))

    def values(self) -> Dict[Tuple[str, ...], float]:
        """Snapshot of every series, keyed by label-value tuple."""
        with self._lock:
            return {key: float(cell) for key, cell in self._cells.items()}

    def _render_cell(self, key: Tuple[str, ...], cell: object) -> List[str]:
        labels = _render_labels(self.labelnames, key)
        return [f"{self.name}{labels} {_format_number(float(cell))}"]

    def _dump_cell(self, key: Tuple[str, ...], cell: object) -> dict:
        return {"value": float(cell)}


class Gauge(_Family):
    """A value that can go up and down (set wins over inc)."""

    kind = "gauge"

    def _zero(self) -> float:
        return 0.0

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._cells[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._cells[key] = float(self._cells.get(key, 0.0)) + amount

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._cells.get(key, 0.0))

    def _render_cell(self, key: Tuple[str, ...], cell: object) -> List[str]:
        labels = _render_labels(self.labelnames, key)
        return [f"{self.name}{labels} {_format_number(float(cell))}"]

    def _dump_cell(self, key: Tuple[str, ...], cell: object) -> dict:
        return {"value": float(cell)}


class _HistogramCell:
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, nbuckets: int) -> None:
        self.bucket_counts = [0] * nbuckets
        self.sum = 0.0
        self.count = 0


class Histogram(_Family):
    """A distribution over fixed, pre-declared buckets."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        lock: threading.RLock,
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labelnames, lock)
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name!r} buckets must be increasing")
        self.buckets = bounds

    def _zero(self) -> "_HistogramCell":
        return _HistogramCell(len(self.buckets))

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            cell = self._cells.get(key)
            if cell is None:
                cell = self._cells[key] = _HistogramCell(len(self.buckets))
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    cell.bucket_counts[index] += 1
                    break
            cell.sum += value
            cell.count += 1

    def count_value(self, **labels: object) -> int:
        key = self._key(labels)
        with self._lock:
            cell = self._cells.get(key)
            return 0 if cell is None else cell.count

    def sum_value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            cell = self._cells.get(key)
            return 0.0 if cell is None else cell.sum

    def _render_cell(self, key: Tuple[str, ...], cell: object) -> List[str]:
        assert isinstance(cell, _HistogramCell)
        lines: List[str] = []
        cumulative = 0
        for bound, bucket_count in zip(self.buckets, cell.bucket_counts):
            cumulative += bucket_count
            labels = _render_labels(
                self.labelnames + ("le",), key + (_format_number(bound),)
            )
            lines.append(f"{self.name}_bucket{labels} {cumulative}")
        inf_labels = _render_labels(self.labelnames + ("le",), key + ("+Inf",))
        lines.append(f"{self.name}_bucket{inf_labels} {cell.count}")
        plain = _render_labels(self.labelnames, key)
        lines.append(f"{self.name}_sum{plain} {_format_number(cell.sum)}")
        lines.append(f"{self.name}_count{plain} {cell.count}")
        return lines

    def _dump_cell(self, key: Tuple[str, ...], cell: object) -> dict:
        assert isinstance(cell, _HistogramCell)
        buckets = {
            _format_number(bound): count
            for bound, count in zip(self.buckets, cell.bucket_counts)
        }
        return {"buckets": buckets, "sum": cell.sum, "count": cell.count}


class MetricsRegistry:
    """A named collection of metric families.

    Registration is idempotent: re-registering a name with the same kind
    and label names returns the existing family (so any module can say
    ``registry.counter("repro_x_total", ...)`` without coordinating on
    import order); a conflicting re-registration raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: Dict[str, _Family] = {}

    # -- registration -------------------------------------------------- #
    def _register(self, family: _Family) -> _Family:
        with self._lock:
            existing = self._families.get(family.name)
            if existing is None:
                self._families[family.name] = family
                return family
            if (
                existing.kind != family.kind
                or existing.labelnames != family.labelnames
            ):
                raise ValueError(
                    f"metric {family.name!r} already registered as "
                    f"{existing.kind}{existing.labelnames}; cannot "
                    f"re-register as {family.kind}{family.labelnames}"
                )
            return existing

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        family = self._register(Counter(name, help_text, labelnames, self._lock))
        assert isinstance(family, Counter)
        return family

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        family = self._register(Gauge(name, help_text, labelnames, self._lock))
        assert isinstance(family, Gauge)
        return family

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> Histogram:
        family = self._register(
            Histogram(name, help_text, labelnames, self._lock, buckets)
        )
        assert isinstance(family, Histogram)
        return family

    def get(self, name: str) -> Optional[_Family]:
        with self._lock:
            return self._families.get(name)

    def family_names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._families))

    # -- rendering ----------------------------------------------------- #
    def _merged_families(
        self, extra: Iterable["MetricsRegistry"]
    ) -> List[_Family]:
        merged: Dict[str, _Family] = {}
        for registry in (self, *extra):
            with registry._lock:
                families = dict(registry._families)
            for name, family in families.items():
                if name in merged and merged[name] is not family:
                    raise ValueError(
                        f"metric {name!r} registered in two registries; "
                        "refusing to render an ambiguous scrape"
                    )
                merged[name] = family
        return [merged[name] for name in sorted(merged)]

    def render_prometheus(
        self, extra: Iterable["MetricsRegistry"] = ()
    ) -> str:
        """Render the Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for family in self._merged_families(extra):
            lines.extend(family.render())
        return "\n".join(lines) + "\n"

    def dump(self, extra: Iterable["MetricsRegistry"] = ()) -> dict:
        """Deterministic JSON-ready snapshot of every family."""
        return {
            "families": {
                family.name: family.dump()
                for family in self._merged_families(extra)
            }
        }

    def dump_json(self, extra: Iterable["MetricsRegistry"] = ()) -> str:
        return json.dumps(
            self.dump(extra), indent=2, sort_keys=True, allow_nan=False
        )

    def reset(self) -> None:
        """Zero every series; registered families stay registered."""
        with self._lock:
            for family in self._families.values():
                family._cells.clear()


_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The default registry for engine-, campaign-, and CLI-level metrics."""
    return _GLOBAL


def reset_global_registry() -> None:
    _GLOBAL.reset()
