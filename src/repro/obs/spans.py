"""Span tracing with explicit parents and Chrome trace-event export.

A :class:`Span` is a context manager that records one timed interval
(name, wall-clock start, duration, arguments).  Spans nest two ways:

* **Implicitly** -- each thread keeps a current-span stack, so a span
  opened inside another one parents under it with no plumbing.
* **Explicitly** -- pass ``parent=`` (a span, a span id, or a serialized
  record) when the parent lives in another thread or another *process*.
  That is how shard spans survive the process-pool boundary: workers
  trace into their own process-local tracer, :meth:`Tracer.drain` the
  finished records into picklable dicts, and the gathering process
  :meth:`Tracer.ingest`\\ s them, re-parenting each worker's root spans
  under the campaign span.

Timestamps are wall-clock microseconds (``time.time_ns() // 1000``), the
unit of the Chrome trace-event format, so records captured in different
processes land on one consistent timeline.  :meth:`Tracer.chrome_trace`
renders the collected spans as a Chrome/Perfetto-loadable trace: worker
records keep the exporter's pid but use their origin pid as the ``tid``
so each worker gets its own named row, and every event carries
``args.span_id`` / ``args.parent_id`` so the parent chain is asserted
directly by tests rather than inferred from time containment.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

__all__ = ["Span", "SpanRecord", "Tracer", "global_tracer", "reset_global_tracer"]


class SpanRecord:
    """One finished span, picklable via :meth:`to_dict`."""

    __slots__ = (
        "name",
        "category",
        "start_us",
        "duration_us",
        "span_id",
        "parent_id",
        "pid",
        "tid",
        "args",
    )

    def __init__(
        self,
        name: str,
        category: str,
        start_us: int,
        duration_us: int,
        span_id: str,
        parent_id: Optional[str],
        pid: int,
        tid: int,
        args: Dict[str, Any],
    ) -> None:
        self.name = name
        self.category = category
        self.start_us = start_us
        self.duration_us = duration_us
        self.span_id = span_id
        self.parent_id = parent_id
        self.pid = pid
        self.tid = tid
        self.args = args

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "category": self.category,
            "start_us": self.start_us,
            "duration_us": self.duration_us,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "tid": self.tid,
            "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SpanRecord":
        return cls(
            name=str(payload["name"]),
            category=str(payload.get("category", "repro")),
            start_us=int(payload["start_us"]),
            duration_us=int(payload["duration_us"]),
            span_id=str(payload["span_id"]),
            parent_id=(
                None
                if payload.get("parent_id") is None
                else str(payload["parent_id"])
            ),
            pid=int(payload.get("pid", 0)),
            tid=int(payload.get("tid", 0)),
            args=dict(payload.get("args", {})),
        )


ParentLike = Union["Span", SpanRecord, str, None]


def _parent_id(parent: ParentLike) -> Optional[str]:
    if parent is None:
        return None
    if isinstance(parent, str):
        return parent
    return parent.span_id


class Span:
    """Context manager recording one interval into its tracer."""

    __slots__ = (
        "tracer",
        "name",
        "category",
        "span_id",
        "parent_id",
        "args",
        "_start_us",
        "_explicit_parent",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        parent: ParentLike,
        args: Dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.category = category
        self.span_id = tracer._next_id()
        self._explicit_parent = parent is not None
        self.parent_id = _parent_id(parent)
        self.args = args
        self._start_us = 0

    def set_args(self, **args: Any) -> None:
        """Attach or update arguments while the span is open."""
        self.args.update(args)

    def __enter__(self) -> "Span":
        if not self._explicit_parent:
            self.parent_id = self.tracer.current_id()
        self.tracer._push(self.span_id)
        self._start_us = time.time_ns() // 1000
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end_us = time.time_ns() // 1000
        self.tracer._pop(self.span_id)
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        self.tracer._append(
            SpanRecord(
                name=self.name,
                category=self.category,
                start_us=self._start_us,
                duration_us=max(end_us - self._start_us, 1),
                span_id=self.span_id,
                parent_id=self.parent_id,
                pid=os.getpid(),
                tid=threading.get_ident() & 0xFFFFFFFF,
                args=self.args,
            )
        )


class Tracer:
    """Collects finished spans and exports them as a Chrome trace."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        self._serial = 0
        self._local = threading.local()

    # -- span lifecycle ------------------------------------------------ #
    def _next_id(self) -> str:
        with self._lock:
            self._serial += 1
            return f"{os.getpid()}-{self._serial}"

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span_id: str) -> None:
        self._stack().append(span_id)

    def _pop(self, span_id: str) -> None:
        stack = self._stack()
        if stack and stack[-1] == span_id:
            stack.pop()
        elif span_id in stack:  # tolerate out-of-order exits
            stack.remove(span_id)

    def _append(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    def current_id(self) -> Optional[str]:
        """Span id of this thread's innermost open span, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def span(
        self,
        name: str,
        *,
        category: str = "repro",
        parent: ParentLike = None,
        **args: Any,
    ) -> Span:
        """Open a span; without ``parent=`` it nests under the thread's
        current span."""
        return Span(self, name, category, parent, dict(args))

    # -- cross-process plumbing ---------------------------------------- #
    def drain(self) -> List[Dict[str, Any]]:
        """Remove and return all finished records as picklable dicts."""
        with self._lock:
            records, self._records = self._records, []
        return [record.to_dict() for record in records]

    def ingest(
        self,
        payloads: Iterable[Mapping[str, Any]],
        parent: ParentLike = None,
    ) -> int:
        """Adopt serialized records (e.g. from a pool worker).

        Records with no parent -- the worker's root spans -- are
        re-parented under ``parent`` so the cross-process hierarchy is
        explicit in the exported trace.
        """
        adopted_parent = _parent_id(parent)
        count = 0
        for payload in payloads:
            record = SpanRecord.from_dict(payload)
            if record.parent_id is None and adopted_parent is not None:
                record.parent_id = adopted_parent
            self._append(record)
            count += 1
        return count

    # -- inspection and export ----------------------------------------- #
    def records(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._records)

    def reset(self) -> None:
        with self._lock:
            self._records = []

    def chrome_trace(self) -> Dict[str, Any]:
        """Render collected spans as a Chrome trace-event JSON object."""
        records = self.records()
        exporter_pid = os.getpid()
        events: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": exporter_pid,
                "tid": 0,
                "args": {"name": "repro"},
            }
        ]
        worker_rows = set()
        for record in records:
            local = record.pid == exporter_pid
            tid = record.tid if local else record.pid
            if not local and record.pid not in worker_rows:
                worker_rows.add(record.pid)
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": exporter_pid,
                        "tid": tid,
                        "args": {"name": f"worker-{record.pid}"},
                    }
                )
            args = dict(record.args)
            args["span_id"] = record.span_id
            args["parent_id"] = record.parent_id
            if not local:
                args["worker_pid"] = record.pid
            events.append(
                {
                    "name": record.name,
                    "cat": record.category,
                    "ph": "X",
                    "ts": record.start_us,
                    "dur": record.duration_us,
                    "pid": exporter_pid,
                    "tid": tid,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: Union[str, "os.PathLike[str]"]) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle, indent=1, sort_keys=True)
            handle.write("\n")


_GLOBAL = Tracer()


def global_tracer() -> Tracer:
    """The default tracer used by the engine, campaign, and CLI layers."""
    return _GLOBAL


def reset_global_tracer() -> None:
    _GLOBAL.reset()
