"""repro.obs -- metrics, spans, and structured logging for the stack.

The paper this repo reproduces is a *waste accounting* for resilience
protocols; ``repro.obs`` is the same idea turned on ourselves -- it
accounts for where our own wall-clock goes.  Three pillars:

* **Metrics** (:mod:`repro.obs.metrics`) -- counters, gauges, and
  fixed-bucket histograms in a :class:`MetricsRegistry`, rendered as
  Prometheus text (``GET /metrics``) or deterministic JSON
  (``repro obs dump``).  The full schema lives in
  :mod:`repro.obs.catalog`.
* **Spans** (:mod:`repro.obs.spans`) -- a :class:`Span` context manager
  with explicit parent propagation that survives the process-pool
  boundary, exported as Chrome trace-event JSON (``--trace-out``) for
  Perfetto.
* **Structured logs** (:mod:`repro.obs.logging`) -- one
  :func:`log` helper (``level: event=<name> key=value ...``) replacing
  the hand-rolled stderr notes and their per-module dedupe sets.

Instrumentation is **off by default**.  The engine's hot path pays one
:func:`enabled` check per campaign (not per trial); spans additionally
require :func:`tracing`.  Enable programmatically::

    from repro import obs
    obs.configure(metrics=True, trace=True)

or from the environment before the process starts: ``REPRO_OBS=1``
enables phase metrics, ``REPRO_OBS=trace`` (or ``REPRO_OBS_TRACE=1``)
also enables span collection.  ``repro ... --trace-out run.trace.json``
does the equivalent for one CLI invocation.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.obs import catalog
from repro.obs.catalog import (
    CATALOG,
    SCOPE_GLOBAL,
    SCOPE_SERVICE,
    family_names,
    preregister,
)
from repro.obs.logging import format_fields, log, reset_log_notes
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    reset_global_registry,
)
from repro.obs.spans import (
    Span,
    SpanRecord,
    Tracer,
    global_tracer,
    reset_global_tracer,
)

__all__ = [
    "CATALOG",
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SCOPE_GLOBAL",
    "SCOPE_SERVICE",
    "Span",
    "SpanRecord",
    "Tracer",
    "catalog",
    "configure",
    "dump_json",
    "enabled",
    "family_names",
    "format_fields",
    "global_registry",
    "global_tracer",
    "log",
    "preregister",
    "reset",
    "reset_global_registry",
    "reset_global_tracer",
    "reset_log_notes",
    "span",
    "tracing",
]


def _env_flag(value: Optional[str]) -> bool:
    return (value or "").strip().lower() not in ("", "0", "false", "off", "no")


_env_obs = os.environ.get("REPRO_OBS", "")
_tracing: bool = _env_obs.strip().lower() == "trace" or _env_flag(
    os.environ.get("REPRO_OBS_TRACE")
)
_enabled: bool = _tracing or _env_flag(_env_obs)


def enabled() -> bool:
    """True when phase metrics instrumentation is on."""
    return _enabled


def tracing() -> bool:
    """True when span collection is on (implies :func:`enabled`)."""
    return _tracing


def configure(
    *, metrics: Optional[bool] = None, trace: Optional[bool] = None
) -> None:
    """Turn instrumentation on or off for this process.

    ``trace=True`` implies ``metrics=True`` -- a trace without phase
    timings would be hollow.  Workers spawned by the process-pool
    executor call this to mirror the parent's settings.
    """
    global _enabled, _tracing
    if trace is not None:
        _tracing = bool(trace)
        if _tracing:
            _enabled = True
    if metrics is not None:
        _enabled = bool(metrics) or _tracing


def span(name: str, **kwargs):
    """Open a span on the global tracer (see :meth:`Tracer.span`)."""
    return global_tracer().span(name, **kwargs)


def dump_json() -> str:
    """The ``repro obs dump`` payload: the global registry with the full
    global-scope catalog preregistered, as deterministic JSON."""
    registry = global_registry()
    preregister(registry, (SCOPE_GLOBAL,))
    return registry.dump_json()


def reset() -> None:
    """Zero the global registry, tracer, and log-dedupe state.

    Instrumentation on/off flags are left alone; tests use this to
    isolate assertions without re-deriving configuration.
    """
    reset_global_registry()
    reset_global_tracer()
    reset_log_notes()
