"""Application workloads: ordered sequences of epochs plus a dataset split.

A workload is what the protocol simulators execute and what the analytical
models summarise.  Builders cover the scenarios of the paper:

* a **single epoch** of one week split by ``alpha`` (the Figure 7 scenario);
* an **iterative application** of many identical epochs (the 1000-epoch
  weak-scaling scenario of Figures 8-10);
* arbitrary phase lists for custom studies (e.g. heterogeneous epochs or
  library phases lacking an ABFT implementation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.application.dataset import DatasetPartition
from repro.application.epoch import Epoch
from repro.utils.validation import require_fraction, require_positive

__all__ = ["ApplicationWorkload"]


@dataclass(frozen=True)
class ApplicationWorkload:
    """An application: an ordered sequence of epochs and a dataset partition.

    Attributes
    ----------
    epochs:
        The epochs, executed in order.
    dataset:
        The LIBRARY/REMAINDER memory split (``rho``).
    name:
        Optional label used in reports.
    """

    epochs: tuple[Epoch, ...]
    dataset: DatasetPartition
    name: str = field(default="application")

    def __post_init__(self) -> None:
        if not self.epochs:
            raise ValueError("a workload must contain at least one epoch")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def single_epoch(
        cls,
        total_time: float,
        alpha: float,
        *,
        library_fraction: float = 0.8,
        total_memory: float = 0.0,
        abft_capable: bool = True,
        name: str = "single-epoch",
    ) -> "ApplicationWorkload":
        """One epoch of duration ``total_time`` with library ratio ``alpha``.

        This is the Figure 7 scenario: an application that "executes for a
        week when there is neither a fault tolerance mechanism nor any
        failure".
        """
        epoch = Epoch.from_duration(total_time, alpha, abft_capable=abft_capable)
        dataset = DatasetPartition(
            total_memory=total_memory, library_fraction=library_fraction
        )
        return cls(epochs=(epoch,), dataset=dataset, name=name)

    @classmethod
    def iterative(
        cls,
        epoch_count: int,
        epoch_time: float,
        alpha: float,
        *,
        library_fraction: float = 0.8,
        total_memory: float = 0.0,
        abft_capable: bool = True,
        name: str = "iterative",
    ) -> "ApplicationWorkload":
        """``epoch_count`` identical epochs (the weak-scaling scenario)."""
        if epoch_count <= 0 or int(epoch_count) != epoch_count:
            raise ValueError(
                f"epoch_count must be a positive integer, got {epoch_count}"
            )
        epoch_time = require_positive(epoch_time, "epoch_time")
        alpha = require_fraction(alpha, "alpha")
        epoch = Epoch.from_duration(epoch_time, alpha, abft_capable=abft_capable)
        dataset = DatasetPartition(
            total_memory=total_memory, library_fraction=library_fraction
        )
        return cls(epochs=(epoch,) * int(epoch_count), dataset=dataset, name=name)

    @classmethod
    def from_epochs(
        cls,
        epochs: Iterable[Epoch],
        *,
        library_fraction: float = 0.8,
        total_memory: float = 0.0,
        name: str = "custom",
    ) -> "ApplicationWorkload":
        """Build a workload from an explicit epoch sequence."""
        dataset = DatasetPartition(
            total_memory=total_memory, library_fraction=library_fraction
        )
        return cls(epochs=tuple(epochs), dataset=dataset, name=name)

    # ------------------------------------------------------------------ #
    # Aggregate accessors
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[Epoch]:
        return iter(self.epochs)

    def __len__(self) -> int:
        return len(self.epochs)

    @property
    def epoch_count(self) -> int:
        """Number of epochs."""
        return len(self.epochs)

    @property
    def total_time(self) -> float:
        """Fault-free, protection-free application duration ``T0`` (seconds)."""
        return sum(epoch.total_time for epoch in self.epochs)

    @property
    def total_general_time(self) -> float:
        """Sum of GENERAL phase durations across epochs (seconds)."""
        return sum(epoch.general_time for epoch in self.epochs)

    @property
    def total_library_time(self) -> float:
        """Sum of LIBRARY phase durations across epochs (seconds)."""
        return sum(epoch.library_time for epoch in self.epochs)

    @property
    def alpha(self) -> float:
        """Overall fraction of time spent in LIBRARY phases."""
        total = self.total_time
        return self.total_library_time / total if total else 0.0

    @property
    def rho(self) -> float:
        """Fraction of memory touched by LIBRARY phases (dataset split)."""
        return self.dataset.library_fraction

    def is_uniform(self) -> bool:
        """True when every epoch has identical phase durations."""
        first = self.epochs[0]
        return all(
            epoch.general_time == first.general_time
            and epoch.library_time == first.library_time
            for epoch in self.epochs
        )

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def scaled(
        self, general_factor: float, library_factor: float, memory_factor: float = 1.0
    ) -> "ApplicationWorkload":
        """Scale every epoch's phases (and the memory footprint) by factors."""
        return ApplicationWorkload(
            epochs=tuple(
                epoch.scaled(general_factor, library_factor) for epoch in self.epochs
            ),
            dataset=self.dataset.scaled(memory_factor),
            name=self.name,
        )

    def collapse(self) -> "ApplicationWorkload":
        """Merge all epochs into a single aggregate epoch.

        The analytical model of Section IV analyses a single epoch; for
        applications made of many *short* epochs protected by protocols
        without per-epoch forced checkpoints (PurePeriodicCkpt,
        BiPeriodicCkpt), using the aggregate GENERAL and LIBRARY durations is
        the faithful instantiation of the model.
        """
        aggregate = Epoch.from_times(
            self.total_general_time,
            self.total_library_time,
            abft_capable=all(epoch.abft_capable for epoch in self.epochs),
        )
        return ApplicationWorkload(
            epochs=(aggregate,), dataset=self.dataset, name=f"{self.name}:collapsed"
        )

    def phase_sequence(self) -> Sequence[tuple[str, float, bool]]:
        """Flatten into ``(kind, duration, abft_capable)`` tuples.

        Convenience for simulators and tests that iterate over phases rather
        than epochs; GENERAL phases report ``abft_capable = False``.
        """
        sequence: list[tuple[str, float, bool]] = []
        for epoch in self.epochs:
            if epoch.general_time > 0:
                sequence.append(("general", epoch.general_time, False))
            if epoch.library_time > 0:
                sequence.append(("library", epoch.library_time, epoch.abft_capable))
        return sequence
