"""GENERAL and LIBRARY phase descriptors.

A *phase* carries its fault-free, protection-free compute duration.  LIBRARY
phases additionally declare whether an ABFT-protected implementation of the
underlying kernel exists (the paper notes that not every library call has an
ABFT version) -- the composite protocol falls back to checkpointing for
non-ABFT-capable library phases.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.utils.validation import require_non_negative

__all__ = ["PhaseKind", "Phase", "GeneralPhase", "LibraryPhase"]


class PhaseKind(enum.Enum):
    """Kind of application phase."""

    #: Arbitrary application code: whole memory accessed, checkpoint-only.
    GENERAL = "general"
    #: Numerical-library call: LIBRARY dataset accessed, potentially ABFT-capable.
    LIBRARY = "library"


@dataclass(frozen=True)
class Phase:
    """Base phase: a named stretch of fault-free compute time.

    Attributes
    ----------
    duration:
        Fault-free, protection-free compute time of the phase, in seconds.
    kind:
        :class:`PhaseKind` tag.
    name:
        Optional label used in traces and reports.
    """

    duration: float
    kind: PhaseKind
    name: str = ""

    def __post_init__(self) -> None:
        require_non_negative(self.duration, "duration")

    @property
    def is_library(self) -> bool:
        """True when this is a LIBRARY phase."""
        return self.kind is PhaseKind.LIBRARY

    @property
    def is_general(self) -> bool:
        """True when this is a GENERAL phase."""
        return self.kind is PhaseKind.GENERAL


@dataclass(frozen=True)
class GeneralPhase(Phase):
    """A GENERAL phase: only algorithm-agnostic protection applies."""

    kind: PhaseKind = field(default=PhaseKind.GENERAL, init=False)

    def __init__(self, duration: float, name: str = "general") -> None:
        object.__setattr__(self, "duration", float(duration))
        object.__setattr__(self, "kind", PhaseKind.GENERAL)
        object.__setattr__(self, "name", name)
        require_non_negative(self.duration, "duration")


@dataclass(frozen=True)
class LibraryPhase(Phase):
    """A LIBRARY phase: a numerical kernel that may be ABFT-protected.

    Attributes
    ----------
    abft_capable:
        Whether an ABFT-protected implementation of the kernel exists.  When
        false, the composite protocol treats the phase exactly like a GENERAL
        phase (checkpoint-only protection).
    """

    kind: PhaseKind = field(default=PhaseKind.LIBRARY, init=False)
    abft_capable: bool = True

    def __init__(
        self, duration: float, name: str = "library", abft_capable: bool = True
    ) -> None:
        object.__setattr__(self, "duration", float(duration))
        object.__setattr__(self, "kind", PhaseKind.LIBRARY)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "abft_capable", bool(abft_capable))
        require_non_negative(self.duration, "duration")
