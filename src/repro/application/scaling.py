"""Weak-scaling laws of the evaluation section (Section V-C).

The weak-scalability study makes the following assumptions when the node
count grows from a reference ``x_ref`` to ``x``:

* **Memory** follows Gustafson's law: each node keeps a fixed footprint, so
  the total memory grows linearly, ``M(x) = M_ref * x / x_ref``.  For 2-D
  matrix data this means the matrix order grows as ``n ~ sqrt(x)``.
* **Kernel time**: an ``O(n^k)`` kernel running on ``x`` perfectly parallel
  nodes takes time ``n^k / x ~ x^(k/2 - 1)``.  The LIBRARY phase (dense
  factorization) is ``O(n^3)`` hence scales as ``sqrt(x)``; the GENERAL phase
  is either ``O(n^3)`` too (Figure 8) or ``O(n^2)`` hence constant
  (Figures 9-10).
* **Platform MTBF** decreases linearly with the node count,
  ``mu(x) = mu_ref * x_ref / x``.
* **Checkpoint cost** either grows linearly with the total memory (remote
  storage bottleneck, Figures 8-9) or stays constant (scalable buddy/NVRAM
  storage hypothesis, Figure 10).

:class:`WeakScalingScenario` bundles these choices so the experiment
generators of :mod:`repro.experiments` can instantiate every figure from a
handful of reference values.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.utils.validation import require_fraction, require_positive

__all__ = [
    "ScalingMode",
    "KernelScalingLaw",
    "gustafson_parallel_time",
    "WeakScalingScenario",
]


def gustafson_parallel_time(
    reference_time: float,
    node_count: float,
    reference_nodes: float,
    complexity_exponent: float,
) -> float:
    """Parallel completion time of an ``O(n^k)`` kernel under weak scaling.

    With per-node memory fixed, data size grows linearly with the node count
    ``x`` so the problem order satisfies ``n^2 ~ x``.  Assuming perfect
    parallelism the time is ``n^k / x ~ x^(k/2 - 1)``:

    * ``k = 3`` (dense factorization, matrix product): time grows as ``sqrt(x)``;
    * ``k = 2`` (matrix update/assembly): time is constant.

    Parameters
    ----------
    reference_time:
        Kernel time at ``reference_nodes`` nodes, in seconds.
    node_count:
        Target node count ``x``.
    reference_nodes:
        Reference node count ``x_ref``.
    complexity_exponent:
        The exponent ``k`` of the kernel complexity ``O(n^k)``.
    """
    reference_time = require_positive(reference_time, "reference_time")
    node_count = require_positive(node_count, "node_count")
    reference_nodes = require_positive(reference_nodes, "reference_nodes")
    exponent = complexity_exponent / 2.0 - 1.0
    return reference_time * (node_count / reference_nodes) ** exponent


class ScalingMode(enum.Enum):
    """How a platform-level cost scales with the node count."""

    #: The cost is independent of the node count (e.g. buddy checkpointing).
    CONSTANT = "constant"
    #: The cost grows linearly with the node count (total memory through a
    #: fixed-bandwidth bottleneck).
    LINEAR = "linear"
    #: The cost decreases linearly with the node count (platform MTBF).
    INVERSE = "inverse"
    #: The cost grows with the square root of the node count.
    SQRT = "sqrt"

    def factor(self, node_count: float, reference_nodes: float) -> float:
        """Multiplicative factor applied to the reference value."""
        ratio = node_count / reference_nodes
        if self is ScalingMode.CONSTANT:
            return 1.0
        if self is ScalingMode.LINEAR:
            return ratio
        if self is ScalingMode.INVERSE:
            return 1.0 / ratio
        if self is ScalingMode.SQRT:
            return ratio**0.5
        raise AssertionError(f"unhandled scaling mode {self}")  # pragma: no cover


@dataclass(frozen=True)
class KernelScalingLaw:
    """Weak-scaling law for one application phase.

    Attributes
    ----------
    reference_time:
        Phase duration at the reference node count, in seconds.
    complexity_exponent:
        ``k`` such that the kernel costs ``O(n^k)`` flops on an order-``n``
        problem whose memory is ``O(n^2)``.
    """

    reference_time: float
    complexity_exponent: float

    def __post_init__(self) -> None:
        require_positive(self.reference_time, "reference_time")
        require_positive(self.complexity_exponent, "complexity_exponent")

    def time_at(self, node_count: float, reference_nodes: float) -> float:
        """Phase duration at ``node_count`` nodes."""
        return gustafson_parallel_time(
            self.reference_time,
            node_count,
            reference_nodes,
            self.complexity_exponent,
        )


@dataclass(frozen=True)
class WeakScalingScenario:
    """Full description of a weak-scaling experiment (Figures 8, 9, 10).

    All reference values are given at ``reference_nodes`` nodes; the
    ``at(node_count)`` accessors return the scaled quantities.

    Attributes
    ----------
    reference_nodes:
        Node count at which the reference values are quoted (10,000 in the
        paper).
    epoch_count:
        Number of epochs in the application (1000 in the paper).
    general_law / library_law:
        Weak-scaling laws of the two phases.
    reference_checkpoint / reference_recovery:
        Full-memory checkpoint and recovery costs at the reference scale,
        seconds.
    checkpoint_scaling:
        How C and R scale with the node count (LINEAR for Figures 8-9,
        CONSTANT for Figure 10).
    reference_mtbf:
        Platform MTBF at the reference scale, seconds (1 day in the paper).
    mtbf_scaling:
        How the platform MTBF scales (INVERSE in the paper).
    downtime:
        Downtime ``D`` in seconds (node-count independent).
    library_fraction:
        ``rho``: fraction of memory touched by LIBRARY phases.
    abft_overhead:
        ``phi``: ABFT slowdown factor.
    abft_reconstruction:
        ``Recons_ABFT``: ABFT recovery time in seconds (node-count
        independent in the paper).
    """

    reference_nodes: int
    epoch_count: int
    general_law: KernelScalingLaw
    library_law: KernelScalingLaw
    reference_checkpoint: float
    reference_recovery: float
    checkpoint_scaling: ScalingMode
    reference_mtbf: float
    mtbf_scaling: ScalingMode
    downtime: float
    library_fraction: float
    abft_overhead: float
    abft_reconstruction: float

    def __post_init__(self) -> None:
        if self.reference_nodes <= 0:
            raise ValueError("reference_nodes must be positive")
        if self.epoch_count <= 0:
            raise ValueError("epoch_count must be positive")
        require_positive(self.reference_checkpoint, "reference_checkpoint")
        require_positive(self.reference_recovery, "reference_recovery")
        require_positive(self.reference_mtbf, "reference_mtbf")
        require_fraction(self.library_fraction, "library_fraction")
        if self.abft_overhead < 1.0:
            raise ValueError(
                f"abft_overhead (phi) must be >= 1, got {self.abft_overhead}"
            )

    # ------------------------------------------------------------------ #
    # Scaled quantities
    # ------------------------------------------------------------------ #
    def general_time_at(self, node_count: int) -> float:
        """GENERAL phase duration per epoch at ``node_count`` nodes."""
        return self.general_law.time_at(node_count, self.reference_nodes)

    def library_time_at(self, node_count: int) -> float:
        """LIBRARY phase duration per epoch at ``node_count`` nodes."""
        return self.library_law.time_at(node_count, self.reference_nodes)

    def epoch_time_at(self, node_count: int) -> float:
        """Epoch duration (GENERAL + LIBRARY) at ``node_count`` nodes."""
        return self.general_time_at(node_count) + self.library_time_at(node_count)

    def alpha_at(self, node_count: int) -> float:
        """Fraction of time spent in LIBRARY phases at ``node_count`` nodes."""
        epoch = self.epoch_time_at(node_count)
        return self.library_time_at(node_count) / epoch if epoch else 0.0

    def total_time_at(self, node_count: int) -> float:
        """Fault-free application duration at ``node_count`` nodes."""
        return self.epoch_count * self.epoch_time_at(node_count)

    def checkpoint_at(self, node_count: int) -> float:
        """Full-memory checkpoint cost ``C`` at ``node_count`` nodes."""
        return self.reference_checkpoint * self.checkpoint_scaling.factor(
            node_count, self.reference_nodes
        )

    def recovery_at(self, node_count: int) -> float:
        """Full-memory recovery cost ``R`` at ``node_count`` nodes."""
        return self.reference_recovery * self.checkpoint_scaling.factor(
            node_count, self.reference_nodes
        )

    def mtbf_at(self, node_count: int) -> float:
        """Platform MTBF at ``node_count`` nodes."""
        return self.reference_mtbf * self.mtbf_scaling.factor(
            node_count, self.reference_nodes
        )

    # ------------------------------------------------------------------ #
    def with_checkpoint_scaling(self, mode: ScalingMode) -> "WeakScalingScenario":
        """Return a copy using a different checkpoint-cost scaling mode."""
        return replace(self, checkpoint_scaling=mode)

    def with_general_law(self, law: KernelScalingLaw) -> "WeakScalingScenario":
        """Return a copy using a different GENERAL-phase scaling law."""
        return replace(self, general_law=law)
