"""Dataset partition: LIBRARY vs REMAINDER memory.

Section IV-A: the total memory footprint is ``M``; the LIBRARY dataset --
the part passed to (and protected by) the ABFT library call -- has size
``M_L = rho * M`` and the REMAINDER dataset has size ``M_R = (1 - rho) * M``.
Checkpoint costs follow the same split (``C_L = rho * C``), which is how the
figure captions express it (``C_L = 0.8 C`` for ``rho = 0.8``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require_fraction, require_non_negative

__all__ = ["DatasetPartition"]


@dataclass(frozen=True)
class DatasetPartition:
    """Split of the application memory into LIBRARY and REMAINDER datasets.

    Parameters
    ----------
    total_memory:
        Total application footprint ``M`` in bytes.  May be zero when only
        the relative split matters (the analytical model never needs absolute
        sizes, only the ratio and the checkpoint costs derived elsewhere).
    library_fraction:
        ``rho``: fraction of the memory accessed (and ABFT-protected) during
        LIBRARY phases, in ``[0, 1]``.

    Examples
    --------
    >>> part = DatasetPartition(total_memory=1e12, library_fraction=0.8)
    >>> part.library_memory
    800000000000.0
    >>> part.remainder_memory
    200000000000.0
    """

    total_memory: float
    library_fraction: float

    def __post_init__(self) -> None:
        require_non_negative(self.total_memory, "total_memory")
        require_fraction(self.library_fraction, "library_fraction")

    @property
    def rho(self) -> float:
        """Paper notation alias for :attr:`library_fraction`."""
        return self.library_fraction

    @property
    def library_memory(self) -> float:
        """Size of the LIBRARY dataset ``M_L = rho * M`` in bytes."""
        return self.library_fraction * self.total_memory

    @property
    def remainder_memory(self) -> float:
        """Size of the REMAINDER dataset ``M - M_L`` in bytes."""
        return (1.0 - self.library_fraction) * self.total_memory

    def split_cost(self, full_cost: float) -> tuple[float, float]:
        """Split a full-memory cost (checkpoint or recovery) proportionally.

        Returns ``(library_cost, remainder_cost)`` with
        ``library_cost = rho * full_cost``.
        """
        full_cost = require_non_negative(full_cost, "full_cost")
        library = self.library_fraction * full_cost
        return (library, full_cost - library)

    def with_total_memory(self, total_memory: float) -> "DatasetPartition":
        """Return a copy with a different total footprint (same ``rho``)."""
        return DatasetPartition(
            total_memory=total_memory, library_fraction=self.library_fraction
        )

    def scaled(self, factor: float) -> "DatasetPartition":
        """Return a copy whose total memory is multiplied by ``factor``.

        Used by the weak-scaling scenarios where memory grows linearly with
        the node count (Gustafson's law).
        """
        factor = require_non_negative(factor, "factor")
        return DatasetPartition(
            total_memory=self.total_memory * factor,
            library_fraction=self.library_fraction,
        )
