"""Application model: datasets, phases, epochs, workloads and scaling laws.

The paper's application model (Figure 1 and Section IV-A) is an iterative
code whose execution is partitioned into *epochs*; each epoch is a GENERAL
phase (arbitrary code, whole memory accessed, only checkpointing applies)
followed by a LIBRARY phase (an ABFT-capable numerical kernel touching only
the LIBRARY dataset).  This package encodes that structure:

* :mod:`repro.application.dataset` -- the memory footprint ``M`` split into
  the LIBRARY dataset ``M_L = rho * M`` and the REMAINDER dataset.
* :mod:`repro.application.phases` -- GENERAL and LIBRARY phase descriptors.
* :mod:`repro.application.epoch` -- one (GENERAL, LIBRARY) pair with the
  ``T0 = T_G + T_L`` and ``alpha = T_L / T0`` accounting.
* :mod:`repro.application.workload` -- a full application: an ordered list of
  epochs plus the dataset partition.
* :mod:`repro.application.scaling` -- the weak-scaling laws of Section V-C
  (Gustafson scaling of O(n^3) / O(n^2) kernels, checkpoint-cost scaling and
  MTBF scaling with node count).
"""

from repro.application.dataset import DatasetPartition
from repro.application.phases import GeneralPhase, LibraryPhase, Phase, PhaseKind
from repro.application.epoch import Epoch
from repro.application.workload import ApplicationWorkload
from repro.application.scaling import (
    KernelScalingLaw,
    ScalingMode,
    WeakScalingScenario,
    gustafson_parallel_time,
)

__all__ = [
    "DatasetPartition",
    "Phase",
    "PhaseKind",
    "GeneralPhase",
    "LibraryPhase",
    "Epoch",
    "ApplicationWorkload",
    "KernelScalingLaw",
    "ScalingMode",
    "WeakScalingScenario",
    "gustafson_parallel_time",
]
