"""Epoch: one (GENERAL, LIBRARY) pair of phases.

Section IV-A: *"The execution of the application is partitioned into epochs.
Within an epoch, there are two phases ... the total duration of the epoch is
T0 = TG + TL ... Let alpha be the fraction of time spent in a LIBRARY
phase."*
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.application.phases import GeneralPhase, LibraryPhase
from repro.utils.validation import require_fraction, require_positive

__all__ = ["Epoch"]


@dataclass(frozen=True)
class Epoch:
    """One epoch: a GENERAL phase followed by a LIBRARY phase.

    Either phase may have zero duration (``alpha = 0`` degenerates to a pure
    GENERAL application, ``alpha = 1`` to a pure LIBRARY one), but the epoch
    as a whole must have strictly positive duration.

    Examples
    --------
    >>> from repro.utils import HOUR
    >>> epoch = Epoch.from_duration(total=10 * HOUR, alpha=0.8)
    >>> epoch.library_time == 8 * HOUR
    True
    >>> epoch.alpha
    0.8
    """

    general: GeneralPhase
    library: LibraryPhase

    def __post_init__(self) -> None:
        if self.total_time <= 0:
            raise ValueError("epoch must have strictly positive total duration")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_duration(
        cls,
        total: float,
        alpha: float,
        *,
        abft_capable: bool = True,
        name: str = "epoch",
    ) -> "Epoch":
        """Build an epoch from its total duration ``T0`` and ratio ``alpha``."""
        total = require_positive(total, "total")
        alpha = require_fraction(alpha, "alpha")
        library_time = alpha * total
        general_time = total - library_time
        return cls(
            general=GeneralPhase(general_time, name=f"{name}:general"),
            library=LibraryPhase(
                library_time, name=f"{name}:library", abft_capable=abft_capable
            ),
        )

    @classmethod
    def from_times(
        cls,
        general_time: float,
        library_time: float,
        *,
        abft_capable: bool = True,
        name: str = "epoch",
    ) -> "Epoch":
        """Build an epoch from the two phase durations ``(T_G, T_L)``."""
        return cls(
            general=GeneralPhase(general_time, name=f"{name}:general"),
            library=LibraryPhase(
                library_time, name=f"{name}:library", abft_capable=abft_capable
            ),
        )

    # ------------------------------------------------------------------ #
    # Accessors (paper notation)
    # ------------------------------------------------------------------ #
    @property
    def general_time(self) -> float:
        """``T_G``: fault-free duration of the GENERAL phase, seconds."""
        return self.general.duration

    @property
    def library_time(self) -> float:
        """``T_L``: fault-free duration of the LIBRARY phase, seconds."""
        return self.library.duration

    @property
    def total_time(self) -> float:
        """``T0 = T_G + T_L`` in seconds."""
        return self.general.duration + self.library.duration

    @property
    def alpha(self) -> float:
        """``alpha = T_L / T0``: fraction of the epoch spent in the library."""
        return self.library.duration / self.total_time

    @property
    def abft_capable(self) -> bool:
        """Whether the LIBRARY phase of this epoch can be ABFT-protected."""
        return self.library.abft_capable

    def scaled(self, general_factor: float, library_factor: float) -> "Epoch":
        """Return a copy with each phase duration multiplied by its factor.

        The weak-scaling scenarios of Section V-C scale the two phases
        differently (O(n^3) library vs O(n^2) general work).
        """
        return Epoch.from_times(
            self.general.duration * general_factor,
            self.library.duration * library_factor,
            abft_capable=self.library.abft_capable,
        )
