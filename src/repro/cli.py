"""Command-line interface: regenerate the paper's figures from a terminal.

Examples
--------
Print the Figure 7 model heatmap series on a reduced grid::

    python -m repro.cli figure7 --reduced

Full Figure 7 including the simulation validation (slower)::

    python -m repro.cli figure7 --validate --runs 1000 --csv figure7.csv

Weak-scaling figures::

    python -m repro.cli figure8
    python -m repro.cli figure9 --mtbf-scaling constant
    python -m repro.cli figure10 --csv figure10.csv

Resumable, parallel sweep campaign over the (MTBF, alpha) plane::

    python -m repro.cli campaign --reduced --validate --runs 100 \
        --workers 4 --cache-dir ./campaign-cache
    # interrupted? rerun with --resume to skip completed grid points:
    python -m repro.cli campaign --reduced --validate --runs 100 \
        --workers 4 --cache-dir ./campaign-cache --resume

Declarative scenarios (see EXPERIMENTS.md for the file format)::

    # What protocols and failure models can a scenario name?
    python -m repro.cli scenario list
    # Check a spec without running anything (exit 2 on problems):
    python -m repro.cli scenario validate examples/custom_scenario.json
    # Run a JSON scenario end-to-end (any registered failure model):
    python -m repro.cli scenario run examples/custom_scenario.json
    # Same grid through the vectorized across-trials engine:
    python -m repro.cli scenario run spec.json --backend auto
    python -m repro.cli scenario run spec.json --validate --runs 100 \
        --workers 4 --cache-dir ./scenario-cache --csv out.csv

Strategy advisor: numeric period optimization and regime maps::

    # Numerically optimal period of one protocol (vs the Eq. 11 closed form):
    python -m repro.cli optimize period --protocol PurePeriodicCkpt \
        --mtbf 7200 --checkpoint 600
    # ... refined against the Monte-Carlo engine:
    python -m repro.cli optimize period --protocol PurePeriodicCkpt \
        --refine --runs 200 --backend auto --workers 4
    # Rank every protocol at its own optimal period over a scenario grid:
    python -m repro.cli optimize compare --spec examples/custom_scenario.json
    # Regime map over (nodes x per-node MTBF x checkpoint x phi), resumable:
    python -m repro.cli optimize map --nodes 1000 100000 \
        --node-mtbf-years 5 50 --workers 2 --cache-dir ./regime-cache \
        --resume --json regime.json
    # Storage axis instead of scalar C: compare named checkpoint-storage
    # stacks (inline JSON trees or @file.json), lowered per cell:
    python -m repro.cli optimize map --nodes 1000 100000 \
        --memory-per-node 64e9 \
        --storage 'pfs={"kind": "remote-pfs", "params": {"write_bandwidth": 1e11}}' \
        --storage 'buddy={"kind": "buddy", "params": {"link_bandwidth": 1e10}}'

Advisor service: the optimizer behind an HTTP API (stdlib only)::

    # Serve /optimize, /compare, /simulate, /protocols, /healthz, /jobs/<id>;
    # tier 2 interpolates a precomputed regime map, background jobs share
    # --cache-dir with CLI sweeps:
    python -m repro.cli serve --port 8080 \
        --regime-map regime.json --cache-dir ./advisor-cache --workers 2

ABFT substrate demonstration::

    python -m repro.cli abft --kernel lu --n 128 --block-size 32
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import repro.obs as _obs
from repro.application.scaling import ScalingMode
from repro.experiments import (
    paper_figure7_config,
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
)
from repro.utils.units import MINUTE

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    """argparse type for flags that must be strictly positive (--runs)."""
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _workers_arg(text: str):
    """argparse type for ``--workers``: a positive integer or ``auto``."""
    if text.strip().lower() == "auto":
        return "auto"
    try:
        return _positive_int(text)
    except (ValueError, argparse.ArgumentTypeError):
        raise argparse.ArgumentTypeError(
            f"must be a positive integer or 'auto', got {text!r}"
        ) from None


def _resolve_workers(workers, runs: int) -> int:
    """Resolve ``--workers`` against the campaign size, with one stderr note."""
    import math

    from repro.campaign import resolve_worker_count

    resolved = resolve_worker_count(workers, runs)
    shard = math.ceil(runs / resolved)
    _obs.log(
        "note",
        "workers-resolved",
        workers=resolved,
        shard_trials=shard,
        runs=runs,
    )
    return resolved


def _note(message: str) -> None:
    """Print a diagnostic (warning, progress note, cache info) to stderr.

    Results -- tables, series, figures, rankings -- go to stdout so users
    can pipe and redirect them; everything that merely narrates the run goes
    through here, keeping stdout machine-parseable.
    """
    print(message, file=sys.stderr)


def _add_trace_flag(parser: argparse.ArgumentParser) -> None:
    """Add ``--trace-out`` to a subcommand that runs campaigns."""
    parser.add_argument(
        "--trace-out",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "profile this run: write a Chrome trace-event JSON file of the "
            "campaign/sweep/shard/engine spans (open in Perfetto or "
            "chrome://tracing)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the figures of 'Assessing the Impact of ABFT and "
            "Checkpoint Composite Strategies' (IPDPSW 2014)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig7 = sub.add_parser("figure7", help="waste heatmaps + model validation")
    fig7.add_argument(
        "--validate",
        action="store_true",
        help="also run the Monte-Carlo simulation at every grid point",
    )
    fig7.add_argument(
        "--runs",
        type=_positive_int,
        default=200,
        help="simulated executions per grid point",
    )
    fig7.add_argument(
        "--reduced",
        action="store_true",
        help="use a coarser (faster) grid than the paper's",
    )
    fig7.add_argument("--seed", type=int, default=2014, help="simulation seed")
    fig7.add_argument("--csv", type=str, default=None, help="write the series to CSV")
    fig7.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="worker processes for the Monte-Carlo trials (default: serial)",
    )

    campaign = sub.add_parser(
        "campaign",
        help="resumable (MTBF, alpha) sweep campaign with an on-disk cache",
    )
    campaign.add_argument(
        "--validate",
        action="store_true",
        help="also run the Monte-Carlo simulation at every grid point",
    )
    campaign.add_argument(
        "--runs",
        type=_positive_int,
        default=200,
        help="simulated executions per grid point",
    )
    campaign.add_argument(
        "--reduced",
        action="store_true",
        help="use a coarser (faster) grid than the paper's",
    )
    campaign.add_argument("--seed", type=int, default=2014, help="simulation seed")
    campaign.add_argument(
        "--backend",
        choices=["event", "vectorized", "auto"],
        default="auto",
        help=(
            "Monte-Carlo engine for validated points: 'auto' (default) "
            "vectorizes wherever the (protocol, failure law) pair supports "
            "it; both engines are bit-identical, so cache entries are "
            "interchangeable"
        ),
    )
    campaign.add_argument(
        "--workers",
        type=_workers_arg,
        default="auto",
        help="worker processes for the Monte-Carlo campaigns (a count, or "
        "'auto' for the machine's cores capped by --runs; default: auto)",
    )
    campaign.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help="directory for the per-point result cache (enables caching)",
    )
    campaign.add_argument(
        "--resume",
        action="store_true",
        help="reuse completed points from --cache-dir instead of recomputing",
    )
    campaign.add_argument(
        "--csv", type=str, default=None, help="write the series to CSV"
    )
    _add_trace_flag(campaign)

    for name in ("figure8", "figure9", "figure10"):
        fig = sub.add_parser(name, help=f"weak-scaling study ({name})")
        fig.add_argument(
            "--mtbf-scaling",
            choices=["inverse", "constant"],
            default="inverse",
            help=(
                "platform-MTBF scaling with the node count: 'inverse' is the "
                "paper text's literal reading, 'constant' matches the figures "
                "(see EXPERIMENTS.md)"
            ),
        )
        fig.add_argument(
            "--nodes",
            type=int,
            nargs="+",
            default=None,
            help="node counts to evaluate (default: 1k 10k 100k 1M)",
        )
        fig.add_argument("--csv", type=str, default=None, help="write the series to CSV")

    scenario = sub.add_parser(
        "scenario",
        help="run or inspect declarative scenario specs (JSON files)",
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)
    scenario_run = scenario_sub.add_parser(
        "run", help="run a scenario spec end-to-end from a JSON file"
    )
    scenario_run.add_argument("spec", type=str, help="path to the scenario JSON file")
    scenario_run.add_argument(
        "--validate",
        action="store_true",
        default=None,
        help="force Monte-Carlo validation on (overrides the spec)",
    )
    scenario_run.add_argument(
        "--runs",
        type=_positive_int,
        default=None,
        help="simulated executions per grid point (overrides the spec)",
    )
    scenario_run.add_argument(
        "--seed", type=int, default=None, help="root seed (overrides the spec)"
    )
    scenario_run.add_argument(
        "--backend",
        choices=["event", "vectorized", "auto"],
        default=None,
        help=(
            "Monte-Carlo engine (overrides the spec): 'event' walks one "
            "trial at a time, 'vectorized' runs all trials as NumPy arrays "
            "(bit-identical where supported), 'auto' picks per protocol"
        ),
    )
    scenario_run.add_argument(
        "--workers",
        type=_workers_arg,
        default="auto",
        help="worker processes for the Monte-Carlo campaigns (a count, or "
        "'auto' for the machine's cores capped by the campaign size; "
        "default: auto)",
    )
    scenario_run.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help="directory for the per-point result cache (enables caching)",
    )
    scenario_run.add_argument(
        "--resume",
        action="store_true",
        help="reuse completed points from --cache-dir instead of recomputing",
    )
    scenario_run.add_argument(
        "--csv", type=str, default=None, help="write the series to CSV"
    )
    _add_trace_flag(scenario_run)
    scenario_validate = scenario_sub.add_parser(
        "validate",
        help=(
            "schema-check a scenario file and dry-run its registry "
            "resolution without simulating anything (exit 2 on problems)"
        ),
    )
    scenario_validate.add_argument(
        "spec", type=str, help="path to the scenario JSON file"
    )
    scenario_list = scenario_sub.add_parser(
        "list", help="list registered protocols and failure models"
    )
    scenario_list.add_argument(
        "--json",
        action="store_true",
        help="emit the registry catalog as JSON (the /protocols payload)",
    )

    optimize = sub.add_parser(
        "optimize",
        help="numeric period optimization and protocol regime maps",
    )
    optimize_sub = optimize.add_subparsers(dest="optimize_command", required=True)

    def add_platform_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--spec",
            type=str,
            default=None,
            help="scenario JSON file providing platform/workload (overrides flags)",
        )
        p.add_argument("--mtbf", type=float, default=7200.0, help="platform MTBF, s")
        p.add_argument(
            "--checkpoint", type=float, default=600.0, help="checkpoint cost C, s"
        )
        p.add_argument(
            "--recovery",
            type=float,
            default=None,
            help="recovery cost R, s (default: C)",
        )
        p.add_argument("--downtime", type=float, default=60.0, help="downtime D, s")
        p.add_argument(
            "--t0", type=float, default=604800.0, help="application time T0, s"
        )
        p.add_argument("--alpha", type=float, default=0.8, help="LIBRARY time fraction")
        p.add_argument("--rho", type=float, default=0.8, help="LIBRARY memory fraction")
        p.add_argument("--phi", type=float, default=1.03, help="ABFT slowdown >= 1")

    def add_campaign_flags(p: argparse.ArgumentParser, *, runs: int) -> None:
        p.add_argument(
            "--runs", type=_positive_int, default=runs, help="simulated runs"
        )
        p.add_argument("--seed", type=int, default=2014, help="campaign root seed")
        p.add_argument(
            "--backend",
            choices=["event", "vectorized", "auto"],
            default="auto",
            help="Monte-Carlo engine (both engines are bit-identical)",
        )
        p.add_argument(
            "--workers",
            type=_workers_arg,
            default="auto",
            help="worker processes for the Monte-Carlo campaigns (a count, "
            "or 'auto' for the machine's cores capped by --runs; "
            "default: auto)",
        )
        p.add_argument(
            "--cache-dir",
            type=str,
            default=None,
            help="directory for the per-point result cache (enables caching)",
        )
        p.add_argument(
            "--resume",
            action="store_true",
            help="reuse completed points from --cache-dir instead of recomputing",
        )
        _add_trace_flag(p)

    optimize_period = optimize_sub.add_parser(
        "period",
        help="numerically optimal period of one protocol (vs Eq. 11)",
    )
    optimize_period.add_argument(
        "--protocol",
        type=str,
        default="PurePeriodicCkpt",
        help="registered protocol name or alias",
    )
    add_platform_flags(optimize_period)
    optimize_period.add_argument(
        "--refine",
        action="store_true",
        help="also re-optimize against the Monte-Carlo engine",
    )
    add_campaign_flags(optimize_period, runs=200)

    optimize_compare = optimize_sub.add_parser(
        "compare",
        help="rank every protocol at its own optimal period over a grid",
    )
    add_platform_flags(optimize_compare)
    optimize_compare.add_argument(
        "--protocols",
        type=str,
        nargs="+",
        default=None,
        help="protocols to compare (default: NoFT + the paper's three)",
    )
    optimize_compare.add_argument(
        "--csv", type=str, default=None, help="write the series to CSV"
    )
    optimize_compare.add_argument(
        "--json",
        action="store_true",
        help="emit the ranking as JSON on stdout instead of a table",
    )

    optimize_map = optimize_sub.add_parser(
        "map",
        help="regime map: winning protocol per (nodes, MTBF, C, phi) cell",
    )
    optimize_map.add_argument(
        "--nodes",
        type=_positive_int,
        nargs="+",
        default=[1000, 10000, 100000],
        help="platform sizes (node counts)",
    )
    optimize_map.add_argument(
        "--node-mtbf-years",
        type=float,
        nargs="+",
        default=[5.0, 25.0, 125.0],
        help="per-node MTBFs in years (platform MTBF = node MTBF / nodes)",
    )
    optimize_map.add_argument(
        "--checkpoint",
        type=float,
        nargs="+",
        default=[600.0],
        help="checkpoint costs C in seconds (R = C)",
    )
    optimize_map.add_argument(
        "--phi",
        type=float,
        nargs="+",
        default=[1.03],
        help="ABFT slowdown factors",
    )
    optimize_map.add_argument(
        "--storage",
        action="append",
        default=None,
        metavar="LABEL=TREE",
        help=(
            "add a named checkpoint-storage stack as the third axis instead "
            "of --checkpoint: LABEL={\"kind\": ..., \"params\": {...}} "
            "(inline JSON) or LABEL=@file.json; repeatable, each label "
            "becomes one axis value, lowered into effective (C, R) per cell"
        ),
    )
    optimize_map.add_argument(
        "--memory-per-node",
        type=float,
        default=0.0,
        metavar="BYTES",
        help=(
            "checkpointed bytes per node for --storage cells (total data "
            "scales weakly: memory_per_node x nodes)"
        ),
    )
    optimize_map.add_argument(
        "--protocols",
        type=str,
        nargs="+",
        default=None,
        help="protocols to compare (default: NoFT + the paper's three)",
    )
    optimize_map.add_argument(
        "--t0", type=float, default=86400.0, help="application time T0, s"
    )
    optimize_map.add_argument(
        "--alpha", type=float, default=0.8, help="LIBRARY time fraction"
    )
    optimize_map.add_argument(
        "--rho", type=float, default=0.8, help="LIBRARY memory fraction"
    )
    optimize_map.add_argument(
        "--downtime", type=float, default=60.0, help="downtime D, s"
    )
    optimize_map.add_argument(
        "--simulate",
        action="store_true",
        help="validate each cell's ranking with Monte-Carlo campaigns",
    )
    add_campaign_flags(optimize_map, runs=100)
    optimize_map.add_argument(
        "--json", type=str, default=None, help="write the map as JSON"
    )
    optimize_map.add_argument(
        "--csv", type=str, default=None, help="write the long-format table as CSV"
    )

    serve = sub.add_parser(
        "serve",
        help="run the tiered advisor service (HTTP, stdlib asyncio)",
        description=(
            "Serve 'which protocol, what period?' over HTTP.  Answers flow "
            "through three tiers: an in-process content-addressed answer "
            "cache, bilinear interpolation over a precomputed regime map "
            "(--regime-map), and the inline analytical optimizer; "
            "Monte-Carlo refinement runs as background jobs polled via "
            "GET /jobs/<id>.  See EXPERIMENTS.md for the endpoint reference."
        ),
    )
    serve.add_argument("--host", type=str, default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8080, help="TCP port (0 picks an ephemeral one)"
    )
    serve.add_argument(
        "--regime-map",
        type=str,
        default=None,
        help="precomputed regime-map JSON ('optimize map --json') for tier 2",
    )
    serve.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help="SweepCache directory shared by background simulation jobs",
    )
    serve.add_argument(
        "--workers",
        type=_positive_int,
        default=2,
        help="concurrent background simulation jobs (default 2)",
    )
    serve.add_argument(
        "--mc-workers",
        type=_workers_arg,
        default=1,
        help="shard-pool width of each vectorized Monte-Carlo campaign "
        "(a count, or 'auto' for the machine's cores; default 1 = serial)",
    )
    serve.add_argument(
        "--answer-cache-size",
        type=_positive_int,
        default=4096,
        help="entries kept in the in-process answer cache (LRU, default 4096)",
    )

    obs_cmd = sub.add_parser(
        "obs",
        help="observability: inspect the in-process metrics registry",
        description=(
            "Dump the global metrics registry (see repro.obs).  Every "
            "cataloged family renders even at zero, so the output doubles "
            "as the metric schema; the live advisor service exposes the "
            "same families at GET /metrics."
        ),
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    obs_dump = obs_sub.add_parser(
        "dump", help="print the metrics registry (deterministic JSON)"
    )
    obs_dump.add_argument(
        "--prometheus",
        action="store_true",
        help="render the Prometheus text exposition format instead of JSON",
    )

    abft = sub.add_parser("abft", help="ABFT kernel demonstration and overhead")
    abft.add_argument("--kernel", choices=["lu", "cholesky"], default="lu")
    abft.add_argument("--n", type=int, default=128, help="matrix order")
    abft.add_argument("--block-size", type=int, default=32)
    abft.add_argument("--trials", type=int, default=3)
    return parser


def _run_figure7(args: argparse.Namespace) -> int:
    config = paper_figure7_config()
    if args.reduced:
        config = config.reduced()
    result = run_figure7(
        config,
        validate=args.validate,
        simulation_runs=args.runs,
        seed=args.seed,
        workers=args.workers,
    )
    print(result.to_table().to_text())
    if args.validate:
        for protocol in ("PurePeriodicCkpt", "BiPeriodicCkpt", "ABFT&PeriodicCkpt"):
            print(
                f"max |WASTE_simul - WASTE_model| for {protocol}: "
                f"{result.max_difference(protocol):.4f}"
            )
    if args.csv:
        path = result.write_csv(args.csv)
        _note(f"series written to {path}")
    return 0


def _run_weak_scaling(args: argparse.Namespace, which: str) -> int:
    mtbf_scaling = (
        ScalingMode.INVERSE if args.mtbf_scaling == "inverse" else ScalingMode.CONSTANT
    )
    runner = {"figure8": run_figure8, "figure9": run_figure9, "figure10": run_figure10}[
        which
    ]
    kwargs = {"mtbf_scaling": mtbf_scaling}
    if args.nodes:
        kwargs["node_counts"] = tuple(args.nodes)
    result = runner(**kwargs)
    print(result.to_table().to_text())
    crossover = result.crossover_node_count()
    if crossover is not None:
        print(
            "ABFT&PeriodicCkpt wastes less than PurePeriodicCkpt from "
            f"{crossover} nodes on"
        )
    if args.csv:
        path = result.write_csv(args.csv)
        _note(f"series written to {path}")
    return 0


def _run_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import SweepJob, SweepRunner
    from repro.utils.tables import Table

    config = paper_figure7_config()
    if args.reduced:
        config = config.reduced()
    job = SweepJob(
        parameters=config.parameters(config.mtbf_values[0]),
        application_time=config.application_time,
        mtbf_values=tuple(config.mtbf_values),
        alpha_values=tuple(config.alpha_values),
        library_fraction=config.library_fraction,
        simulate=args.validate,
        simulation_runs=args.runs,
        seed=args.seed,
        backend=args.backend,
    )
    workers = _resolve_workers(args.workers, args.runs) if args.validate else None
    runner = SweepRunner(
        cache_dir=args.cache_dir,
        resume=args.resume,
        workers=workers,
    )
    result = runner.run(job)

    headers = ["mtbf_minutes", "alpha"]
    headers.extend(f"model_waste[{name}]" for name in job.protocols)
    if args.validate:
        headers.extend(f"sim_waste[{name}]" for name in job.protocols)
    table = Table(headers, title="Campaign: waste vs (MTBF, alpha)")
    for point in result.points:
        cells: list = [point.mtbf / MINUTE, point.alpha]
        cells.extend(point.model_waste[name] for name in job.protocols)
        if args.validate:
            cells.extend(
                point.simulated_waste.get(name, float("nan"))
                for name in job.protocols
            )
        table.add_row(cells)
    print(table.to_text())
    _note(
        f"grid points: {len(result.points)} "
        f"(computed {result.computed_points}, "
        f"reused {result.cached_points} cached)"
    )
    if args.cache_dir:
        _note(f"cache directory: {args.cache_dir}")
    if args.csv:
        path = table.write(args.csv)
        _note(f"series written to {path}")
    return 0


def _run_scenario_list(*, as_json: bool = False) -> int:
    from repro.core.registry import (
        failure_model_names,
        registry_catalog,
        resolve_failure_model,
        resolve_protocol,
        resolve_storage,
        protocol_names,
        storage_names,
        vectorized_law_names,
        vectorized_protocol_names,
    )
    from repro.simulation.vectorized import ENGINE_BACKENDS

    if as_json:
        # The exact payload the advisor service's GET /protocols serves
        # (same serializer), so scripts can consume either interchangeably.
        import json

        print(json.dumps(registry_catalog(), indent=2, sort_keys=True))
        return 0

    print("registered protocols:")
    for name in protocol_names():
        entry = resolve_protocol(name)
        aliases = f" (aliases: {', '.join(entry.aliases)})" if entry.aliases else ""
        backends = "event+vectorized" if entry.has_vectorized else "event"
        storage = "any registered stack" if entry.storage else "none"
        print(f"  {name}{aliases} [backends: {backends}; storage: {storage}]")
    print("registered storage stacks (scenario 'storage.kind'):")
    for name in storage_names():
        entry = resolve_storage(name)
        aliases = f" (aliases: {', '.join(entry.aliases)})" if entry.aliases else ""
        nested = (
            f" [nested media: {', '.join(entry.nested)}]" if entry.nested else ""
        )
        lowering = "" if entry.analytical else " [MTBF-sensitive lowering]"
        print(f"  {name}{aliases}{nested}{lowering}")
    print("registered failure models:")
    for name in failure_model_names():
        entry = resolve_failure_model(name)
        aliases = f" (aliases: {', '.join(entry.aliases)})" if entry.aliases else ""
        backends = "event+vectorized" if entry.vectorized else "event"
        print(f"  {name}{aliases} [backends: {backends}]")
    vectorized = ", ".join(vectorized_protocol_names())
    laws = ", ".join(vectorized_law_names())
    print(f"engine backends (scenario 'simulation.backend'): {', '.join(ENGINE_BACKENDS)}")
    print(
        f"  backend='vectorized' needs a protocol with a vectorized engine "
        f"({vectorized}) and a vectorized failure law ({laws}); "
        "'auto' falls back to 'event' elsewhere"
    )
    return 0


def _validate_scenario(args: argparse.Namespace) -> int:
    """Schema check + registry-resolution dry-run; no simulation at all."""
    from repro.core.registry import UnknownFailureModelError, UnknownProtocolError
    from repro.scenario import ScenarioError, ScenarioSpec
    from repro.scenario.runner import scenario_sweep_job

    try:
        spec = ScenarioSpec.load(args.spec)
    except (ScenarioError, UnknownProtocolError, UnknownFailureModelError) as exc:
        print(f"error: invalid scenario file {args.spec!r}: {exc}", file=sys.stderr)
        return 2
    try:
        # Lower the spec onto the campaign job exactly as a run would --
        # SweepJob.__post_init__ performs the full protocol / failure-model
        # / backend resolution, with no simulation at construction -- then
        # probe every per-point construction a run performs: parameters and
        # failure model at each swept MTBF, workload at each swept alpha.
        scenario_sweep_job(spec)
        for mtbf in spec.mtbf_axis:
            spec.parameters(mtbf)
            spec.failure_model(mtbf)
        for alpha in spec.alpha_axis:
            spec.application_workload(alpha)
    except (
        ScenarioError,
        UnknownProtocolError,
        UnknownFailureModelError,
        ValueError,
    ) as exc:
        print(
            f"error: scenario file {args.spec!r} does not resolve: {exc}",
            file=sys.stderr,
        )
        return 2
    print(f"scenario file {args.spec!r} is valid")
    print(spec.describe())
    grid_points = len(spec.mtbf_axis) * len(spec.alpha_axis)
    print(
        f"would evaluate {grid_points} grid point(s) with "
        f"backend {spec.simulation.backend!r}"
    )
    return 0


def _run_scenario(args: argparse.Namespace) -> int:
    from repro.core.registry import UnknownFailureModelError, UnknownProtocolError
    from repro.scenario import ScenarioError, ScenarioSpec, run_scenario
    from repro.simulation.vectorized import VectorizedBackendError

    if args.scenario_command == "list":
        return _run_scenario_list(as_json=args.json)
    if args.scenario_command == "validate":
        return _validate_scenario(args)

    try:
        spec = ScenarioSpec.load(args.spec)
    except (ScenarioError, UnknownProtocolError, UnknownFailureModelError) as exc:
        print(f"error: invalid scenario file {args.spec!r}: {exc}", file=sys.stderr)
        return 2
    _note(spec.describe())
    validating = (
        spec.simulation.validate if args.validate is None else args.validate
    )
    workers = None
    if validating:
        runs = args.runs if args.runs is not None else spec.simulation.runs
        workers = _resolve_workers(args.workers, runs)
    try:
        result = run_scenario(
            spec,
            validate=args.validate,
            runs=args.runs,
            seed=args.seed,
            backend=args.backend,
            workers=workers,
            cache_dir=args.cache_dir,
            resume=args.resume,
        )
    except (
        ScenarioError,
        UnknownProtocolError,
        UnknownFailureModelError,
        VectorizedBackendError,
    ) as exc:
        print(f"error: scenario {spec.name!r} failed: {exc}", file=sys.stderr)
        return 2
    table = result.to_table()
    print(table.to_text())
    _note(
        f"grid points: {len(result.points)} "
        f"(computed {result.sweep.computed_points}, "
        f"reused {result.sweep.cached_points} cached)"
    )
    if result.truncated_trials:
        _note(
            f"warning: {result.truncated_trials} simulated trial(s) hit the "
            "max_slowdown cap and were truncated (waste ~1)"
        )
    if args.cache_dir:
        _note(f"cache directory: {args.cache_dir}")
    if args.csv:
        path = result.write_csv(args.csv)
        _note(f"series written to {path}")
    return 0


def _optimize_spec(args: argparse.Namespace):
    """The scenario spec behind ``optimize period`` / ``optimize compare``.

    ``--spec`` wins; otherwise the platform/workload flags are assembled
    into an equivalent in-memory spec, so both entry styles flow through
    the same :func:`repro.scenario.optimize_scenario` machinery.
    """
    from repro.scenario import PlatformSpec, ScenarioSpec, WorkloadSpec

    if args.spec:
        return ScenarioSpec.load(args.spec)
    return ScenarioSpec(
        name="cli-optimize",
        platform=PlatformSpec(
            mtbf=args.mtbf,
            checkpoint=args.checkpoint,
            recovery=args.recovery,
            downtime=args.downtime,
            library_fraction=args.rho,
            abft_overhead=args.phi,
        ),
        workload=WorkloadSpec(total_time=args.t0, alpha=args.alpha),
    )


def _print_period_optimum(optimum) -> None:
    from repro.utils.units import MINUTE

    if not optimum.periods:
        print("tunable periods       : none (protocol has no period knob)")
    for keyword in sorted(optimum.periods):
        value = optimum.periods[keyword]
        reference = optimum.closed_form.get(keyword, float("nan"))
        line = f"{keyword:<22}: "
        if value != value:  # NaN: infeasible regime
            line += "n/a (infeasible regime)"
        else:
            line += f"{value:.6g} s ({value / MINUTE:.4g} min)"
        print(line)
        if reference == reference:
            error = optimum.relative_error(keyword)
            print(
                f"  closed form (Eq. 11): {reference:.6g} s; "
                f"relative error {error:.2e}"
            )
    print(f"minimal model waste   : {optimum.waste:.6f}")
    print(f"model evaluations     : {optimum.evaluations}")
    if optimum.flat:
        _note("note: the waste does not depend on the period here "
              "(zero checkpoint cost)")
    if not optimum.feasible:
        _note("note: no period makes progress in this regime (waste = 1)")


def _run_optimize(args: argparse.Namespace) -> int:
    from repro.core.registry import UnknownFailureModelError, UnknownProtocolError
    from repro.scenario import ScenarioError
    from repro.simulation.vectorized import VectorizedBackendError

    try:
        if args.optimize_command == "period":
            return _run_optimize_period(args)
        if args.optimize_command == "compare":
            return _run_optimize_compare(args)
        return _run_optimize_map(args)
    except (
        ScenarioError,
        UnknownProtocolError,
        UnknownFailureModelError,
        VectorizedBackendError,
        ValueError,
    ) as exc:
        print(f"error: optimize {args.optimize_command} failed: {exc}", file=sys.stderr)
        return 2


def _run_optimize_period(args: argparse.Namespace) -> int:
    from repro.optimize import optimize_period, refine_period

    spec = _optimize_spec(args)
    parameters = spec.parameters()
    workload = spec.application_workload()
    optimum = optimize_period(
        args.protocol,
        parameters,
        workload,
        model_kwargs=spec.model_kwargs_for(args.protocol),
    )
    print(f"protocol              : {optimum.protocol}")
    _print_period_optimum(optimum)
    if args.refine:
        refined = refine_period(
            optimum.protocol,
            parameters,
            workload,
            runs=args.runs,
            seed=args.seed,
            backend=args.backend,
            workers=_resolve_workers(args.workers, args.runs),
            cache_dir=args.cache_dir,
            resume=args.resume,
            model_kwargs=spec.model_kwargs_for(args.protocol),
            analytical=optimum,
        )
        if refined.best is None:
            print("refinement            : skipped (nothing to simulate)")
        else:
            print(
                f"refined periods       : "
                + ", ".join(
                    f"{k} = {v:.6g} s"
                    for k, v in sorted(refined.best.periods.items())
                )
                + f" (scale {refined.shift:.4g}x the analytical optimum)"
            )
            print(
                f"simulated waste       : {refined.best.waste_mean:.6f} "
                f"({refined.runs} runs, seed {refined.seed}; "
                f"{refined.computed} campaigns computed, "
                f"{refined.cached} cached)"
            )
    return 0


def _run_optimize_compare(args: argparse.Namespace) -> int:
    from repro.optimize.regime import DEFAULT_REGIME_PROTOCOLS
    from repro.scenario import optimize_scenario

    spec = _optimize_spec(args)
    protocols = args.protocols
    if protocols is None and not args.spec:
        protocols = list(DEFAULT_REGIME_PROTOCOLS)
    result = optimize_scenario(
        spec, protocols=tuple(protocols) if protocols is not None else None
    )
    if args.json:
        # Machine-readable ranking: the same shape the advisor service's
        # POST /compare returns (ScenarioOptimizationResult.to_dict).
        import json

        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(result.to_table().to_text())
        winners = sorted({point.winner for point in result.points})
        print(f"winning protocol(s) over the grid: {', '.join(winners)}")
    if args.csv:
        path = result.write_csv(args.csv)
        _note(f"series written to {path}")
    return 0


def _parse_storage_stacks(entries: Sequence[str]):
    """Parse repeated ``--storage LABEL=TREE`` flags into (label, tree) pairs.

    ``TREE`` is an inline JSON ``{"kind", "params"}`` object, or ``@path``
    naming a JSON file holding one (the scenario-file storage section
    verbatim, so stacks move freely between scenario specs and maps).
    """
    import json

    stacks = []
    for entry in entries:
        label, sep, tree_text = entry.partition("=")
        if not sep or not label:
            raise ValueError(
                f"--storage expects LABEL=TREE, got {entry!r}"
            )
        tree_text = tree_text.strip()
        if tree_text.startswith("@"):
            from pathlib import Path

            tree_text = Path(tree_text[1:]).read_text(encoding="utf-8")
        try:
            tree = json.loads(tree_text)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"--storage {label}: tree is not valid JSON ({exc})"
            ) from None
        stacks.append((label.strip(), tree))
    return stacks


def _run_optimize_map(args: argparse.Namespace) -> int:
    from repro.optimize import RegimeMapSpec, compute_regime_map
    from repro.utils.units import YEAR

    kwargs = {}
    if args.protocols is not None:
        kwargs["protocols"] = tuple(args.protocols)
    if args.storage:
        kwargs["storage_stacks"] = _parse_storage_stacks(args.storage)
        kwargs["memory_per_node"] = args.memory_per_node
    spec = RegimeMapSpec(
        node_counts=tuple(args.nodes),
        node_mtbf_values=tuple(y * YEAR for y in args.node_mtbf_years),
        checkpoint_costs=tuple(args.checkpoint),
        abft_overheads=tuple(args.phi),
        application_time=args.t0,
        alpha=args.alpha,
        library_fraction=args.rho,
        downtime=args.downtime,
        simulate=args.simulate,
        simulation_runs=args.runs,
        seed=args.seed,
        backend=args.backend,
        **kwargs,
    )
    workers = _resolve_workers(args.workers, args.runs) if args.simulate else None
    regime_map = compute_regime_map(
        spec,
        workers=workers,
        cache_dir=args.cache_dir,
        resume=args.resume,
    )
    print(regime_map.to_ascii())
    counts = regime_map.winner_counts()
    print(
        "cells won: "
        + ", ".join(f"{name}: {counts[name]}" for name in spec.protocols)
    )
    _note(
        f"cells: {len(regime_map.cells)} "
        f"(computed {regime_map.computed_cells}, "
        f"reused {regime_map.cached_cells} cached)"
    )
    if args.cache_dir:
        _note(f"cache directory: {args.cache_dir}")
    if args.json:
        path = regime_map.save(args.json)
        _note(f"map written to {path}")
    if args.csv:
        path = regime_map.write_csv(args.csv)
        _note(f"series written to {path}")
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import create_app, serve_forever

    try:
        service = create_app(
            regime_map=args.regime_map,
            cache_dir=args.cache_dir,
            workers=args.workers,
            mc_workers=args.mc_workers,
            answer_cache_entries=args.answer_cache_size,
        )
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot start advisor service: {exc}", file=sys.stderr)
        return 2
    if service.surface is not None:
        described = service.surface.describe()
        _note(
            f"regime map loaded from {args.regime_map}: "
            f"{described['cells']} cells, "
            f"protocols {', '.join(described['protocols'])}"
        )
    if args.cache_dir:
        _note(f"background jobs cache to {args.cache_dir}")

    def ready(host: str, port: int) -> None:
        _note(f"advisor service listening on http://{host}:{port}")

    try:
        asyncio.run(serve_forever(service, args.host, args.port, ready=ready))
    except KeyboardInterrupt:
        _note("advisor service stopped")
    return 0


def _run_obs(args: argparse.Namespace) -> int:
    if args.prometheus:
        registry = _obs.global_registry()
        _obs.preregister(registry, (_obs.SCOPE_GLOBAL,))
        print(registry.render_prometheus(), end="")
    else:
        print(_obs.dump_json())
    return 0


def _run_abft(args: argparse.Namespace) -> int:
    from repro.abft import measure_overhead

    measurement = measure_overhead(
        args.kernel, n=args.n, block_size=args.block_size, trials=args.trials
    )
    print(f"kernel                : {measurement.kernel}")
    print(f"matrix order          : {measurement.n}")
    print(f"block size            : {measurement.block_size}")
    print(f"checksums             : {measurement.num_checksums}")
    print(f"unprotected time      : {measurement.unprotected_time:.4f} s")
    print(f"ABFT-protected time   : {measurement.protected_time:.4f} s")
    print(f"measured phi          : {measurement.phi:.3f}")
    print(f"reconstruction time   : {measurement.reconstruction_time * 1e3:.3f} ms")
    return 0


def _dispatch(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    if args.command == "figure7":
        return _run_figure7(args)
    if args.command in ("figure8", "figure9", "figure10"):
        return _run_weak_scaling(args, args.command)
    if args.command == "campaign":
        return _run_campaign(args)
    if args.command == "scenario":
        return _run_scenario(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "optimize":
        return _run_optimize(args)
    if args.command == "obs":
        return _run_obs(args)
    if args.command == "abft":
        return _run_abft(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    from repro.simulation.vectorized import reset_backend_fallback_notes

    # Stderr notes dedupe through module state; a fresh CLI invocation is a
    # fresh run, so clear it (repeated in-process calls -- tests, the
    # service -- must not silently swallow later notes).
    reset_backend_fallback_notes()
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_out = getattr(args, "trace_out", None)
    if not trace_out:
        return _dispatch(args, parser)
    # --trace-out turns span collection on for exactly this invocation:
    # collect from a clean tracer, write the Chrome trace even when the
    # command fails (a partial profile of a failed run is still useful),
    # and restore the prior instrumentation flags for in-process callers.
    was_enabled, was_tracing = _obs.enabled(), _obs.tracing()
    _obs.global_tracer().reset()
    _obs.configure(trace=True)
    try:
        return _dispatch(args, parser)
    finally:
        _obs.global_tracer().write_chrome_trace(trace_out)
        _obs.configure(trace=was_tracing, metrics=was_enabled)
        _obs.log(
            "note",
            "trace-written",
            path=trace_out,
            spans=len(_obs.global_tracer().records()),
        )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
