"""Test/bench harness: run an :class:`AdvisorService` in a daemon thread.

The service is asyncio-based but the test suite and the load benchmark are
synchronous, so :class:`ServiceThread` boots the event loop in a background
thread, binds to an ephemeral port, and exposes a small synchronous
``request()`` helper built on :mod:`http.client`.  Used by the unit tests,
the service benchmark and nothing in production paths.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.service.app import AdvisorService, serve_forever

__all__ = ["ServiceThread", "ServiceReply"]


@dataclass(frozen=True)
class ServiceReply:
    """One synchronous response: status, raw body and selected headers."""

    status: int
    body: bytes
    headers: Mapping[str, str]

    def json(self) -> Any:
        """The body parsed as JSON."""
        return json.loads(self.body.decode("utf-8"))

    @property
    def tier(self) -> Optional[str]:
        return self.headers.get("x-repro-tier")

    @property
    def cache(self) -> Optional[str]:
        return self.headers.get("x-repro-cache")


class ServiceThread:
    """A live advisor service on ``127.0.0.1:<ephemeral>``, thread-hosted.

    Use as a context manager::

        with ServiceThread(create_app()) as svc:
            reply = svc.request("GET", "/healthz")
    """

    def __init__(self, service: AdvisorService) -> None:
        self.service = service
        self.host = "127.0.0.1"
        self.port: Optional[int] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        asyncio.run(self._serve())

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()

        def on_ready(host: str, port: int) -> None:
            self.host = host
            self.port = port
            self._ready.set()

        try:
            await serve_forever(self.service, self.host, 0, ready=on_ready)
        except asyncio.CancelledError:
            pass

    def start(self) -> "ServiceThread":
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("advisor service failed to start within 10s")
        return self

    def stop(self) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            for task in asyncio.all_tasks(loop=loop):
                loop.call_soon_threadsafe(task.cancel)
        self._thread.join(timeout=10.0)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, Any]] = None,
        *,
        raw_body: Optional[bytes] = None,
        timeout: float = 30.0,
    ) -> ServiceReply:
        """One synchronous HTTP round-trip against the live service."""
        assert self.port is not None, "service not started"
        connection = http.client.HTTPConnection(self.host, self.port, timeout=timeout)
        try:
            body: Optional[bytes] = raw_body
            headers: Dict[str, str] = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
            if body is not None:
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            raw = connection.getresponse()
            return ServiceReply(
                status=raw.status,
                body=raw.read(),
                headers={k.lower(): v for k, v in raw.getheaders()},
            )
        finally:
            connection.close()

    def wait_for_job(
        self, job_id: str, *, timeout: float = 60.0, poll: float = 0.05
    ) -> Dict[str, Any]:
        """Poll ``/jobs/<id>`` until the job reaches a terminal state."""
        import time

        deadline = time.monotonic() + timeout
        while True:
            reply = self.request("GET", f"/jobs/{job_id}")
            if reply.status != 200:
                raise RuntimeError(f"job poll failed: {reply.status} {reply.body!r}")
            snapshot = reply.json()
            if snapshot["state"] in ("done", "failed"):
                return snapshot
            if time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} still {snapshot['state']!r}")
            time.sleep(poll)

    def healthz(self) -> Dict[str, Any]:
        """Shortcut: the parsed ``/healthz`` payload."""
        return self.request("GET", "/healthz").json()
