"""The advisor service: tier routing, provenance and counters.

:class:`AdvisorService` answers "which protocol, what period?" over HTTP at
interactive latency.  Requests are frozen-``ScenarioSpec``-shaped JSON and
every answer flows through a three-tier path:

1. **answer cache** (:mod:`repro.service.cache`): a content-addressed map
   from the canonical request to the exact bytes previously served --
   identical questions are free, and hits are byte-identical to their
   misses by construction;
2. **regime-map surface** (:mod:`repro.service.tiers`): bilinear/log-linear
   interpolation over a precomputed :class:`~repro.optimize.regime.RegimeMap`
   loaded at startup -- instant approximate answers inside the map's hull;
3. **analytical optimizer**: the Brent search of
   :func:`repro.optimize.period.optimize_period`, ~ms per protocol,
   computed inline on miss; heavy Monte-Carlo refinement is never computed
   inline but dispatched as a background job (:mod:`repro.service.jobs`)
   and polled via ``GET /jobs/<id>``.

Provenance rides on every response: the body's ``tier`` field names the
tier that *computed* the answer, and the ``X-Repro-Tier`` /
``X-Repro-Cache`` headers name how *this* request was served (``hit``
answers re-serve stored bytes, so their bodies stay byte-identical while
the headers flip to ``answer-cache``/``hit``).  ``GET /healthz`` exposes
per-tier and per-endpoint counters.

Endpoints
---------
``POST /optimize``
    Best protocol + optimal periods for one scenario point.
``POST /compare``
    Full per-protocol ranking over the scenario's sweep grid.
``POST /simulate``
    Monte-Carlo refinement/validation as a background job (``202``).
``GET /jobs/<id>``
    Poll one background job.
``GET /protocols``
    The registry catalog (same serializer as ``scenario list --json``).
``GET /healthz``
    Liveness plus tier/cache/job counters.
"""

from __future__ import annotations

import asyncio
import math
import time
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

import repro.obs as _obs
from repro.campaign.cache import SweepCache, canonical_digest
from repro.campaign.executor import (
    ParallelMonteCarloExecutor,
    ShardedVectorizedExecutor,
)
from repro.core.registry import (
    UnknownFailureModelError,
    UnknownProtocolError,
    registry_catalog,
    resolve_protocol,
)
from repro.optimize.refine import refine_period, simulate_at_periods
from repro.scenario.runner import optimize_scenario
from repro.scenario.spec import ScenarioError, ScenarioSpec
from repro.service.cache import AnswerCache, CachedAnswer, answer_key
from repro.service.http import HTTPError, HTTPServer, Request, Response, Router
from repro.service.jobs import JobManager
from repro.service.tiers import (
    TIER_ANALYTICAL,
    TIER_BACKGROUND,
    TIER_CACHE,
    TIER_CATALOG,
    TIER_MAP,
    RegimeSurface,
    SurfaceMismatch,
    analytical_answer,
)

__all__ = ["AdvisorService", "create_app", "serve_forever"]

#: Accepted values of the request's ``tier`` routing hint.
TIER_CHOICES = ("auto", "map", "analytical")


def _require_object(payload: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(payload, Mapping):
        raise HTTPError(400, f"{what} must be a JSON object, got {type(payload).__name__}")
    return payload


def _check_fields(payload: Mapping[str, Any], allowed: Sequence[str], what: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise HTTPError(
            400,
            f"unknown {what} field(s) {unknown}; allowed fields: {sorted(allowed)}",
        )


def _parse_scenario(payload: Mapping[str, Any]) -> ScenarioSpec:
    """The request's ``scenario`` section as a validated spec (400 on error)."""
    if "scenario" not in payload:
        raise HTTPError(400, "missing required field 'scenario'")
    scenario = _require_object(payload["scenario"], "'scenario'")
    try:
        return ScenarioSpec.from_dict(scenario)
    except (ScenarioError, UnknownProtocolError, UnknownFailureModelError) as exc:
        raise HTTPError(400, f"invalid scenario: {exc}") from exc


def _parse_protocols(
    payload: Mapping[str, Any], spec: ScenarioSpec
) -> Tuple[str, ...]:
    """The canonical protocol list a request asks about.

    ``protocol`` (one name) and ``protocols`` (a list) are mutually
    exclusive conveniences; both resolve aliases through the registry and
    default to the scenario's own protocol set.
    """
    if "protocol" in payload and "protocols" in payload:
        raise HTTPError(400, "give either 'protocol' or 'protocols', not both")
    names: Sequence[str]
    if "protocol" in payload:
        if not isinstance(payload["protocol"], str):
            raise HTTPError(400, "'protocol' must be a string")
        names = [payload["protocol"]]
    elif "protocols" in payload:
        raw = payload["protocols"]
        if not isinstance(raw, (list, tuple)) or not all(
            isinstance(name, str) for name in raw
        ):
            raise HTTPError(400, "'protocols' must be a list of strings")
        if not raw:
            raise HTTPError(400, "'protocols' must name at least one protocol")
        names = raw
    else:
        names = spec.protocols
    try:
        return tuple(resolve_protocol(name).name for name in names)
    except UnknownProtocolError as exc:
        raise HTTPError(400, str(exc)) from exc


def _optional_number(payload: Mapping[str, Any], key: str) -> Optional[float]:
    value = payload.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise HTTPError(400, f"'{key}' must be a number, got {value!r}")
    value = float(value)
    if not math.isfinite(value) or value <= 0:
        raise HTTPError(400, f"'{key}' must be a positive finite number")
    return value


def _positive_int(payload: Mapping[str, Any], key: str, default: int) -> int:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int) or value <= 0:
        raise HTTPError(400, f"'{key}' must be a positive integer, got {value!r}")
    return value


class AdvisorService:
    """Routes, tiers and counters of the advisor HTTP API."""

    def __init__(
        self,
        *,
        surface: Optional[RegimeSurface] = None,
        cache_dir: "str | None" = None,
        workers: int = 2,
        mc_workers: "int | str | None" = 1,
        answer_cache_entries: int = 4096,
    ) -> None:
        self.surface = surface
        self.cache_dir = cache_dir
        self._started = time.monotonic()
        # Per-service registry: concurrent service instances in one test
        # process must not bleed counters into each other.  The full
        # service-scope schema is preregistered so an idle /metrics scrape
        # still shows every family.
        self.metrics = _obs.MetricsRegistry()
        _obs.preregister(self.metrics, (_obs.SCOPE_SERVICE,))
        self._requests_metric = _obs.catalog.family(
            "repro_service_requests_total", self.metrics
        )
        self._answers_metric = _obs.catalog.family(
            "repro_service_answers_total", self.metrics
        )
        self._latency_metric = _obs.catalog.family(
            "repro_service_request_seconds", self.metrics
        )
        self.answers = AnswerCache(answer_cache_entries, registry=self.metrics)
        self.jobs = JobManager(workers, registry=self.metrics)
        self._mc_workers_requested = mc_workers
        # Executors shared by every background campaign.  The event-walk
        # one stays serial -- process pools do not belong inside executor
        # threads for that rarely-taken fallback -- while the vectorized
        # shard pool (where MC jobs spend their time) is sized by
        # ``mc_workers``: 1 keeps campaigns serial in the job thread,
        # "auto" fans each one across the machine's cores.
        self._mc_executor = ParallelMonteCarloExecutor(workers=1)
        self._vector_executor = ShardedVectorizedExecutor(
            workers=mc_workers,
            backend="serial" if mc_workers == 1 else "process",
        )
        self.router = Router()
        self.router.add("POST", "/optimize", self._handle_optimize)
        self.router.add("POST", "/compare", self._handle_compare)
        self.router.add("POST", "/simulate", self._handle_simulate)
        self.router.add("GET", "/protocols", self._handle_protocols)
        self.router.add("GET", "/healthz", self._handle_healthz)
        self.router.add("GET", "/metrics", self._handle_metrics)
        self.router.add("GET", "/jobs/{job_id}", self._handle_job)
        self.server = HTTPServer(self.router)

    # ------------------------------------------------------------------ #
    # Bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def tier_counts(self) -> Dict[str, int]:
        """Answers served, by tier (a view over the metrics registry)."""
        return {
            key[0]: int(count)
            for key, count in self._answers_metric.values().items()
        }

    @property
    def endpoint_counts(self) -> Dict[str, int]:
        """Requests served, by endpoint (a view over the metrics registry)."""
        return {
            key[0]: int(count)
            for key, count in self._requests_metric.values().items()
        }

    def _answer(
        self,
        endpoint: str,
        request_payload: Mapping[str, Any],
        compute: Callable[[], Tuple[Dict[str, Any], int, str]],
    ) -> Response:
        """Serve one cacheable answer through the tier-1 cache.

        ``compute`` returns ``(body payload, status, tier)`` and only runs
        on a miss; its rendered bytes are stored so a later hit re-serves
        them verbatim (the byte-identity contract).
        """
        began = time.perf_counter()
        self._requests_metric.inc(endpoint=endpoint)
        key = answer_key(endpoint, request_payload)
        cached = self.answers.get(key)
        if cached is not None:
            self._answers_metric.inc(tier=TIER_CACHE)
            self._latency_metric.observe(
                time.perf_counter() - began, endpoint=endpoint, tier=TIER_CACHE
            )
            return Response(
                status=cached.status,
                body=cached.body,
                headers=(
                    ("X-Repro-Tier", TIER_CACHE),
                    ("X-Repro-Cache", "hit"),
                    ("X-Repro-Computed-Tier", cached.tier),
                ),
            )
        payload, status, tier = compute()
        self._answers_metric.inc(tier=tier)
        rendered = Response.json(
            payload,
            status=status,
            headers=(
                ("X-Repro-Tier", tier),
                ("X-Repro-Cache", "miss"),
                ("X-Repro-Computed-Tier", tier),
            ),
        )
        self.answers.put(
            key, CachedAnswer(body=rendered.body, status=status, tier=tier)
        )
        self._latency_metric.observe(
            time.perf_counter() - began, endpoint=endpoint, tier=tier
        )
        return rendered

    def _dynamic(self, endpoint: str, payload: Any, *, status: int = 200, tier: str) -> Response:
        """An uncached (dynamic) answer -- health, job polling.

        Dynamic endpoints count toward the per-endpoint request metric and
        latency histogram but *not* the per-tier answer counter: ``tiers``
        in ``/healthz`` keeps meaning "cacheable answers by producing
        tier", exactly as before.
        """
        began = time.perf_counter()
        self._requests_metric.inc(endpoint=endpoint)
        response = Response.json(
            payload,
            status=status,
            headers=(("X-Repro-Tier", tier), ("X-Repro-Cache", "bypass")),
        )
        self._latency_metric.observe(
            time.perf_counter() - began, endpoint=endpoint, tier=tier
        )
        return response

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    async def _handle_optimize(self, request: Request) -> Response:
        payload = _require_object(request.json(), "the request body")
        _check_fields(
            payload,
            ("scenario", "protocol", "protocols", "nodes", "node_mtbf", "tier"),
            "/optimize",
        )
        spec = _parse_scenario(payload)
        protocols = _parse_protocols(payload, spec)
        nodes = _optional_number(payload, "nodes")
        node_mtbf = _optional_number(payload, "node_mtbf")
        tier_hint = payload.get("tier", "auto")
        if tier_hint not in TIER_CHOICES:
            raise HTTPError(
                400, f"'tier' must be one of {list(TIER_CHOICES)}, got {tier_hint!r}"
            )
        canonical = {
            "scenario": spec.to_dict(),
            "protocols": list(protocols),
            "nodes": nodes,
            "node_mtbf": node_mtbf,
            "tier": tier_hint,
        }

        def compute() -> Tuple[Dict[str, Any], int, str]:
            scenario_ref = {
                "name": spec.name,
                "content_hash": spec.content_hash(),
            }
            fallback: Optional[str] = None
            if tier_hint in ("auto", "map"):
                if self.surface is None:
                    if tier_hint == "map":
                        raise HTTPError(
                            400, "tier 'map' requested but no regime map is loaded"
                        )
                    fallback = "no regime map loaded"
                else:
                    try:
                        answer = self.surface.interpolate(
                            spec, protocols, nodes=nodes, node_mtbf=node_mtbf
                        )
                        body = {
                            "tier": TIER_MAP,
                            "scenario": scenario_ref,
                            **answer,
                        }
                        return body, 200, TIER_MAP
                    except SurfaceMismatch as exc:
                        if tier_hint == "map":
                            raise HTTPError(
                                400,
                                f"tier 'map' cannot answer this request: "
                                f"{exc.reason}",
                            ) from exc
                        fallback = exc.reason
            answer = analytical_answer(spec, protocols)
            body = {"tier": TIER_ANALYTICAL, "scenario": scenario_ref, **answer}
            if fallback is not None:
                body["fallback"] = fallback
            return body, 200, TIER_ANALYTICAL

        return self._answer("/optimize", canonical, compute)

    async def _handle_compare(self, request: Request) -> Response:
        payload = _require_object(request.json(), "the request body")
        _check_fields(payload, ("scenario", "protocol", "protocols"), "/compare")
        spec = _parse_scenario(payload)
        protocols = _parse_protocols(payload, spec)
        canonical = {"scenario": spec.to_dict(), "protocols": list(protocols)}

        def compute() -> Tuple[Dict[str, Any], int, str]:
            result = optimize_scenario(spec, protocols=protocols)
            body = {"tier": TIER_ANALYTICAL, **result.to_dict()}
            return body, 200, TIER_ANALYTICAL

        return self._answer("/compare", canonical, compute)

    async def _handle_simulate(self, request: Request) -> Response:
        payload = _require_object(request.json(), "the request body")
        _check_fields(
            payload,
            ("scenario", "protocol", "periods", "runs", "seed", "backend"),
            "/simulate",
        )
        spec = _parse_scenario(payload)
        protocols = _parse_protocols(payload, spec)
        if len(protocols) != 1:
            raise HTTPError(
                400,
                "/simulate refines one protocol; give 'protocol' or a "
                "single-protocol scenario",
            )
        protocol = protocols[0]
        periods = payload.get("periods")
        if periods is not None:
            periods = _require_object(periods, "'periods'")
            parsed: Dict[str, float] = {}
            for keyword, value in periods.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise HTTPError(
                        400, f"periods.{keyword} must be a number, got {value!r}"
                    )
                parsed[str(keyword)] = float(value)
            periods = parsed
        runs = _positive_int(payload, "runs", spec.simulation.runs)
        seed = payload.get("seed", spec.simulation.seed)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise HTTPError(400, f"'seed' must be an integer, got {seed!r}")
        backend = payload.get("backend", "auto")
        if backend not in ("event", "vectorized", "auto"):
            raise HTTPError(
                400,
                f"'backend' must be 'event', 'vectorized' or 'auto', got {backend!r}",
            )
        canonical = {
            "scenario": spec.to_dict(),
            "protocol": protocol,
            "periods": periods,
            "runs": runs,
            "seed": seed,
            "backend": backend,
        }
        digest = canonical_digest(canonical)
        fn = self._simulation_job(spec, protocol, periods, runs, seed, backend, digest)

        def compute() -> Tuple[Dict[str, Any], int, str]:
            job = self.jobs.submit("simulate", digest, canonical, fn)
            body = {
                "tier": TIER_BACKGROUND,
                "scenario": {
                    "name": spec.name,
                    "content_hash": spec.content_hash(),
                },
                "job": {"id": job.id, "kind": job.kind},
                "poll": f"/jobs/{job.id}",
            }
            return body, 202, TIER_BACKGROUND

        return self._answer("/simulate", canonical, compute)

    def _simulation_job(
        self,
        spec: ScenarioSpec,
        protocol: str,
        periods: Optional[Mapping[str, float]],
        runs: int,
        seed: int,
        backend: str,
        digest: str,
    ) -> Callable[[], Dict[str, Any]]:
        """The blocking campaign behind one ``/simulate`` job.

        Explicit ``periods`` run a single campaign at those periods (cached
        under the request digest in the shared :class:`SweepCache`); without
        periods the full :func:`refine_period` fan runs, reusing the
        campaign layer's own candidate cache in the same directory -- the
        shared-directory case the atomic point writes exist for.
        """
        parameters = spec.parameters()
        workload = spec.application_workload()
        law = spec.failures.model
        law_params = spec.failures.params_dict
        model_kwargs = spec.model_kwargs_for(protocol)
        cache_dir = self.cache_dir
        executor = self._mc_executor
        vector_executor = self._vector_executor

        def run_explicit() -> Dict[str, Any]:
            cache = SweepCache(cache_dir) if cache_dir is not None else None
            key = {"service": "simulate-at-periods", "digest": digest}
            summary = cache.load(key) if cache is not None else None
            cached = summary is not None
            if summary is None:
                summary = dict(
                    simulate_at_periods(
                        protocol,
                        parameters,
                        workload,
                        dict(periods or {}),
                        runs=runs,
                        seed=seed,
                        backend=backend,
                        executor=executor,
                        vector_executor=vector_executor,
                        failure_model=law,
                        failure_params=law_params,
                    )
                )
                if cache is not None:
                    cache.store(key, summary)
            return {
                "protocol": protocol,
                "periods": dict(periods or {}),
                "summary": summary,
                "cached": cached,
            }

        def run_refine() -> Dict[str, Any]:
            refined = refine_period(
                protocol,
                parameters,
                workload,
                runs=runs,
                seed=seed,
                backend=backend,
                cache_dir=cache_dir,
                failure_model=law,
                failure_params=law_params,
                model_kwargs=model_kwargs,
                executor=executor,
                vector_executor=vector_executor,
            )
            result: Dict[str, Any] = {
                "protocol": refined.protocol,
                "analytical": refined.analytical.to_dict(),
                "computed": refined.computed,
                "cached": refined.cached,
                "runs": refined.runs,
                "seed": refined.seed,
            }
            if refined.best is None:
                result["best"] = None
            else:
                result["best"] = {
                    "periods": dict(refined.best.periods),
                    "scale": refined.shift,
                    "waste_mean": refined.best.waste_mean,
                    "summary": dict(refined.best.summary),
                }
            return result

        return run_explicit if periods is not None else run_refine

    async def _handle_protocols(self, request: Request) -> Response:
        def compute() -> Tuple[Dict[str, Any], int, str]:
            return {"tier": TIER_CATALOG, **registry_catalog()}, 200, TIER_CATALOG

        return self._answer("/protocols", {"catalog": True}, compute)

    async def _handle_healthz(self, request: Request) -> Response:
        payload = {
            "status": "ok",
            "tiers": dict(sorted(self.tier_counts.items())),
            "endpoints": dict(sorted(self.endpoint_counts.items())),
            "answer_cache": self.answers.counters(),
            "jobs": self.jobs.counters(),
            "regime_map": (
                None if self.surface is None else self.surface.describe()
            ),
            "cache_dir": self.cache_dir,
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "config": {
                "workers": self.jobs.workers,
                "mc_workers": {
                    "requested": self._mc_workers_requested,
                    "resolved": self._vector_executor.workers,
                    "backend": self._vector_executor.backend,
                },
                "answer_cache_entries": self.answers.max_entries,
            },
        }
        return self._dynamic("/healthz", payload, tier="health")

    async def _handle_metrics(self, request: Request) -> Response:
        """Prometheus text exposition of the service + global registries.

        The sampled gauges (job states, uptime) are refreshed at scrape
        time -- they describe "now", not an event stream.
        """
        began = time.perf_counter()
        self._requests_metric.inc(endpoint="/metrics")
        job_counts = self.jobs.counters()
        jobs_gauge = _obs.catalog.family("repro_service_jobs", self.metrics)
        for state in ("pending", "running", "done", "failed"):
            jobs_gauge.set(job_counts[state], state=state)
        _obs.catalog.family("repro_service_uptime_seconds", self.metrics).set(
            time.monotonic() - self._started
        )
        _obs.preregister(_obs.global_registry(), (_obs.SCOPE_GLOBAL,))
        text = self.metrics.render_prometheus(extra=(_obs.global_registry(),))
        self._latency_metric.observe(
            time.perf_counter() - began, endpoint="/metrics", tier="metrics"
        )
        return Response(
            status=200,
            body=text.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
            headers=(("X-Repro-Tier", "metrics"), ("X-Repro-Cache", "bypass")),
        )

    async def _handle_job(self, request: Request) -> Response:
        job = self.jobs.get(request.params["job_id"])
        if job is None:
            raise HTTPError(404, f"no such job: {request.params['job_id']}")
        return self._dynamic("/jobs", job.to_dict(), tier=TIER_BACKGROUND)

    # ------------------------------------------------------------------ #
    async def start(self, host: str, port: int) -> asyncio.AbstractServer:
        """Bind the HTTP server; returns the listening asyncio server."""
        return await self.server.start(host, port)


def create_app(
    *,
    regime_map: "str | None" = None,
    surface: Optional[RegimeSurface] = None,
    cache_dir: "str | None" = None,
    workers: int = 2,
    mc_workers: "int | str | None" = 1,
    answer_cache_entries: int = 4096,
) -> AdvisorService:
    """Build an :class:`AdvisorService`, loading the tier-2 map if given.

    ``regime_map`` is a path to a serialized :class:`RegimeMap` (the
    ``optimize map --json`` output); ``surface`` injects a prebuilt
    :class:`RegimeSurface` directly (tests).  ``workers`` bounds the
    concurrent background MC *jobs*; ``mc_workers`` is the shard-pool
    width of each vectorized campaign (default 1 = serial in the job
    thread; ``"auto"`` fans each campaign across the machine's cores).
    """
    if regime_map is not None and surface is not None:
        raise ValueError("give either regime_map (a path) or surface, not both")
    if regime_map is not None:
        surface = RegimeSurface.load(regime_map)
    return AdvisorService(
        surface=surface,
        cache_dir=cache_dir,
        workers=workers,
        mc_workers=mc_workers,
        answer_cache_entries=answer_cache_entries,
    )


async def serve_forever(
    service: AdvisorService,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    ready: Optional[Callable[[str, int], None]] = None,
) -> None:
    """Run the service until cancelled (the ``repro serve`` event loop).

    ``ready`` is called with the bound ``(host, port)`` once listening --
    the CLI prints its stderr note there, and tests use it to learn the
    ephemeral port of ``--port 0``.
    """
    server = await service.start(host, port)
    bound = server.sockets[0].getsockname()
    if ready is not None:
        ready(bound[0], bound[1])
    async with server:
        await server.serve_forever()
