"""Tiers 2 and 3 of the advisor's answer path.

Tier 2 (:class:`RegimeSurface`) serves *instant approximate* answers from a
precomputed :class:`~repro.optimize.regime.RegimeMap` (the PR 4 JSON
format): per-protocol optimal waste and period surfaces interpolated over
the map's grid -- bilinearly over ``(log nodes, log node-MTBF)`` when the
request names platform coordinates, linearly over ``log platform-MTBF``
when it only gives the platform MTBF (the analytical model depends on the
platform MTBF alone, so the two-axis grid collapses onto that line).
Geometry is interpolated in log space because both the axes and the
Equation 11 optimum ``sqrt(2 C (mu - D - R))`` live on ratio scales.

A surface answers only questions it was computed for: the scenario's
workload scalars must match the map spec, the checkpoint cost and phi must
sit on grid lines, and the query point must fall inside the grid hull.
Everything else -- including scenarios that checkpoint on a storage stack,
and maps whose third axis is storage stacks rather than scalar costs --
raises :class:`SurfaceMismatch`, which the application
layer treats as "fall through to tier 3" -- the exact analytical optimizer
(:func:`repro.optimize.period.optimize_period`, ~ms per protocol), wrapped
here as :func:`analytical_answer` so both tiers return one result shape.

The agreement between the two tiers is pinned by tests: on a dense map,
interpolated tier-2 waste stays within :data:`INTERPOLATION_WASTE_RTOL` of
the tier-3 optimum (periods within :data:`INTERPOLATION_PERIOD_RTOL`).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.optimize.period import optimize_period
from repro.optimize.regime import RegimeCell, RegimeMap
from repro.scenario.spec import ScenarioSpec

__all__ = [
    "SurfaceMismatch",
    "RegimeSurface",
    "analytical_answer",
    "TIER_CACHE",
    "TIER_MAP",
    "TIER_ANALYTICAL",
    "TIER_BACKGROUND",
    "TIER_CATALOG",
    "INTERPOLATION_WASTE_RTOL",
    "INTERPOLATION_PERIOD_RTOL",
]

#: Tier labels used in answer bodies, provenance headers and counters.
TIER_CACHE = "answer-cache"
TIER_MAP = "map"
TIER_ANALYTICAL = "analytical"
TIER_BACKGROUND = "background"
TIER_CATALOG = "catalog"

#: Documented tier-2 accuracy contract on a dense map (grid ratio <= 2
#: between adjacent MTBF lines): interpolated waste within 5% relative (or
#: 0.005 absolute near zero) of the tier-3 optimum, periods within 10%.
#: Pinned by tests/unit/test_service_tiers.py.
INTERPOLATION_WASTE_RTOL = 0.05
INTERPOLATION_WASTE_ATOL = 0.005
INTERPOLATION_PERIOD_RTOL = 0.10

#: Relative tolerance for matching request scalars to map grid values.
_MATCH_RTOL = 1e-9

#: Waste this close to 1.0 counts as infeasible in interpolated answers.
_FEASIBLE_MARGIN = 1e-6


class SurfaceMismatch(Exception):
    """The loaded regime map cannot answer this request.

    The ``reason`` names what failed (off-grid checkpoint, point outside
    the hull, mismatched workload, ...); the service reports it in the
    answer's ``fallback`` field when it drops to tier 3.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=_MATCH_RTOL, abs_tol=1e-12)


def _match_axis(value: float, axis: Sequence[float], name: str) -> float:
    for grid_value in axis:
        if _close(value, grid_value):
            return grid_value
    raise SurfaceMismatch(
        f"{name} {value:g} is not on the map grid {[float(v) for v in axis]}"
    )


def _bracket(
    value: float, axis: Sequence[float], name: str
) -> Tuple[float, float, float]:
    """Bracketing grid values and the log-space weight of ``value``.

    Returns ``(lo, hi, t)`` with ``value = lo**(1-t) * hi**t``; ``lo == hi``
    (and ``t = 0``) when ``value`` sits exactly on a grid line.  Raises
    :class:`SurfaceMismatch` outside ``[axis[0], axis[-1]]`` -- the hull
    check that sends out-of-range queries to tier 3.
    """
    if not axis:
        raise SurfaceMismatch(f"the map has no {name} axis")
    lo_edge, hi_edge = axis[0], axis[-1]
    if value < lo_edge and not _close(value, lo_edge):
        raise SurfaceMismatch(
            f"{name} {value:g} below the map hull [{lo_edge:g}, {hi_edge:g}]"
        )
    if value > hi_edge and not _close(value, hi_edge):
        raise SurfaceMismatch(
            f"{name} {value:g} above the map hull [{lo_edge:g}, {hi_edge:g}]"
        )
    index = bisect_left(axis, value)
    if index < len(axis) and _close(value, axis[index]):
        return axis[index], axis[index], 0.0
    if index > 0 and _close(value, axis[index - 1]):
        return axis[index - 1], axis[index - 1], 0.0
    lo, hi = axis[index - 1], axis[index]
    t = (math.log(value) - math.log(lo)) / (math.log(hi) - math.log(lo))
    return lo, hi, t


def _blend(values: Sequence[Optional[float]], weights: Sequence[float]) -> Optional[float]:
    """Weighted combination; ``None`` (infeasible corner) poisons the result."""
    total = 0.0
    for value, weight in zip(values, weights):
        if weight == 0.0:
            continue
        if value is None or not math.isfinite(value):
            return None
        total += value * weight
    return total


class RegimeSurface:
    """Interpolation over one loaded :class:`RegimeMap` (tier 2)."""

    def __init__(self, regime_map: RegimeMap) -> None:
        self.map = regime_map
        self.spec = regime_map.spec
        self._cells = regime_map.cell_index()
        self._node_axis: Tuple[float, ...] = tuple(
            sorted(float(n) for n in self.spec.node_counts)
        )
        self._node_mtbf_axis: Tuple[float, ...] = tuple(
            sorted(self.spec.node_mtbf_values)
        )
        # Collapsed platform-MTBF line per (checkpoint, phi) slice: the
        # analytical results of a cell depend on node count only through
        # platform_mtbf = node_mtbf / nodes, so cells sharing that ratio are
        # interchangeable and the 2-D grid dedupes onto a 1-D axis.
        self._mtbf_slices: Dict[
            Tuple[float, float], List[Tuple[float, RegimeCell]]
        ] = {}
        for cell in regime_map.cells:
            slice_key = (cell.checkpoint, cell.abft_overhead)
            points = self._mtbf_slices.setdefault(slice_key, [])
            if not any(_close(cell.platform_mtbf, mu) for mu, _ in points):
                points.append((cell.platform_mtbf, cell))
        for points in self._mtbf_slices.values():
            points.sort(key=lambda pair: pair[0])

    @classmethod
    def load(cls, path: "str | Path") -> "RegimeSurface":
        """Load a surface from a serialized regime map (PR 4 JSON)."""
        return cls(RegimeMap.load(path))

    # ------------------------------------------------------------------ #
    def describe(self) -> Dict[str, Any]:
        """Summary for ``/healthz``: axes sizes and protocol coverage."""
        return {
            "cells": len(self.map.cells),
            "node_counts": [int(n) for n in self.spec.node_counts],
            "node_mtbf_values": list(self.spec.node_mtbf_values),
            "checkpoint_costs": list(self.spec.checkpoint_costs),
            "abft_overheads": list(self.spec.abft_overheads),
            "protocols": list(self.spec.protocols),
            "simulated": bool(self.spec.simulate),
        }

    def check_compatible(
        self, scenario: ScenarioSpec, protocols: Sequence[str]
    ) -> None:
        """Raise :class:`SurfaceMismatch` unless the map answers this spec.

        The map fixed every scalar it did not sweep; a request is tier-2
        eligible only when those scalars agree, the failure law is the
        map's (exponential, parameter-free), and the requested protocols
        were part of the comparison.
        """
        spec = self.spec
        if getattr(spec, "storage_mode", False):
            raise SurfaceMismatch(
                "the loaded map sweeps storage stacks, not scalar checkpoint "
                "costs; storage-axis maps are not interpolable"
            )
        if scenario.storage is not None:
            raise SurfaceMismatch(
                "the map was computed for scalar checkpoint costs; the "
                f"request checkpoints on {scenario.storage.kind!r} storage"
            )
        missing = [name for name in protocols if name not in spec.protocols]
        if missing:
            raise SurfaceMismatch(
                f"protocols {missing} are not on the map "
                f"(map compares {list(spec.protocols)})"
            )
        if not scenario.failures.is_exponential or scenario.failures.params:
            raise SurfaceMismatch(
                "the map was computed under parameter-free exponential "
                f"failures, not {scenario.failures.model!r}"
            )
        if scenario.model_params:
            raise SurfaceMismatch(
                "the map was computed with default model options; the "
                "request sets model_params"
            )
        if scenario.workload.epochs != 1:
            raise SurfaceMismatch(
                "the map was computed for a single-epoch workload, the "
                f"request has {scenario.workload.epochs} epochs"
            )
        scalars = [
            ("workload.total_time", scenario.workload.total_time, spec.application_time),
            ("workload.alpha", scenario.workload.alpha, spec.alpha),
            (
                "platform.library_fraction",
                scenario.platform.library_fraction,
                spec.library_fraction,
            ),
            ("platform.downtime", scenario.platform.downtime, spec.downtime),
            (
                "platform.abft_reconstruction",
                scenario.platform.abft_reconstruction,
                spec.abft_reconstruction,
            ),
        ]
        for name, requested, fixed in scalars:
            if not _close(requested, fixed):
                raise SurfaceMismatch(
                    f"{name} {requested:g} differs from the map's {fixed:g}"
                )
        # Recovery semantics: None means R = C on both sides, so only the
        # resolved convention must agree.
        requested_recovery = scenario.platform.recovery
        map_recovery = spec.recovery
        if (requested_recovery is None) != (map_recovery is None):
            raise SurfaceMismatch(
                "recovery-cost convention differs from the map's "
                "(one side uses R = C, the other an explicit R)"
            )
        if requested_recovery is not None and not _close(
            requested_recovery, map_recovery
        ):
            raise SurfaceMismatch(
                f"platform.recovery {requested_recovery:g} differs from the "
                f"map's {map_recovery:g}"
            )
        if scenario.platform.remainder_recovery is not None:
            raise SurfaceMismatch(
                "the map was computed with the default remainder-recovery "
                "convention; the request overrides it"
            )

    # ------------------------------------------------------------------ #
    def interpolate(
        self,
        scenario: ScenarioSpec,
        protocols: Sequence[str],
        *,
        nodes: Optional[float] = None,
        node_mtbf: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Tier-2 answer for one scenario, or :class:`SurfaceMismatch`.

        With ``nodes`` and ``node_mtbf`` given, interpolates bilinearly over
        the map's native ``(nodes, node-MTBF)`` grid (their ratio must agree
        with the scenario's platform MTBF); otherwise interpolates along the
        collapsed platform-MTBF line of the matching (checkpoint, phi)
        slice.
        """
        self.check_compatible(scenario, protocols)
        checkpoint = _match_axis(
            scenario.platform.checkpoint, self.spec.checkpoint_costs, "checkpoint"
        )
        phi = _match_axis(
            scenario.platform.abft_overhead, self.spec.abft_overheads, "phi"
        )
        if (nodes is None) != (node_mtbf is None):
            raise SurfaceMismatch(
                "bilinear queries need both 'nodes' and 'node_mtbf'"
            )
        if nodes is not None and node_mtbf is not None:
            implied = node_mtbf / nodes
            if not math.isclose(
                implied, scenario.platform.mtbf, rel_tol=1e-6, abs_tol=1e-9
            ):
                raise SurfaceMismatch(
                    f"node_mtbf/nodes = {implied:g} contradicts the "
                    f"scenario's platform MTBF {scenario.platform.mtbf:g}"
                )
            corners, weights, geometry = self._bilinear_corners(
                float(nodes), float(node_mtbf), checkpoint, phi
            )
        else:
            corners, weights, geometry = self._line_corners(
                scenario.platform.mtbf, checkpoint, phi
            )
        results: Dict[str, Dict[str, Any]] = {}
        for name in protocols:
            entries = [corner.results[name] for corner in corners]
            waste = _blend([float(e["waste"]) for e in entries], weights)
            if waste is None:  # pragma: no cover - waste is always finite
                raise SurfaceMismatch(f"non-finite waste at a corner for {name!r}")
            keywords = sorted(
                {key for entry in entries for key in (entry.get("periods") or {})}
            )
            periods = {
                keyword: _blend(
                    [
                        (entry.get("periods") or {}).get(keyword)
                        for entry in entries
                    ],
                    weights,
                )
                for keyword in keywords
            }
            results[name] = {
                "waste": waste,
                "periods": periods,
                "feasible": waste < 1.0 - _FEASIBLE_MARGIN,
                "interpolated": True,
            }
        winner = min(
            protocols, key=lambda name: (results[name]["waste"], protocols.index(name))
        )
        others = sorted(
            results[name]["waste"] for name in protocols if name != winner
        )
        return {
            "winner": winner,
            "margin": (others[0] - results[winner]["waste"]) if others else None,
            "results": results,
            "interpolation": geometry,
        }

    # ------------------------------------------------------------------ #
    def _cell(
        self, nodes: float, node_mtbf: float, checkpoint: float, phi: float
    ) -> RegimeCell:
        cell = self._cells.get((int(nodes), node_mtbf, checkpoint, phi))
        if cell is None:  # pragma: no cover - axes guarantee presence
            raise SurfaceMismatch(
                f"missing map cell at nodes={nodes:g}, node_mtbf={node_mtbf:g}"
            )
        return cell

    def _bilinear_corners(
        self, nodes: float, node_mtbf: float, checkpoint: float, phi: float
    ) -> Tuple[List[RegimeCell], List[float], Dict[str, Any]]:
        n_lo, n_hi, u = _bracket(nodes, self._node_axis, "nodes")
        m_lo, m_hi, v = _bracket(node_mtbf, self._node_mtbf_axis, "node_mtbf")
        corners = [
            self._cell(n_lo, m_lo, checkpoint, phi),
            self._cell(n_hi, m_lo, checkpoint, phi),
            self._cell(n_lo, m_hi, checkpoint, phi),
            self._cell(n_hi, m_hi, checkpoint, phi),
        ]
        weights = [
            (1.0 - u) * (1.0 - v),
            u * (1.0 - v),
            (1.0 - u) * v,
            u * v,
        ]
        geometry = {
            "mode": "bilinear",
            "nodes": nodes,
            "node_mtbf": node_mtbf,
            "node_bracket": [n_lo, n_hi],
            "node_mtbf_bracket": [m_lo, m_hi],
            "checkpoint": checkpoint,
            "phi": phi,
        }
        return corners, weights, geometry

    def _line_corners(
        self, platform_mtbf: float, checkpoint: float, phi: float
    ) -> Tuple[List[RegimeCell], List[float], Dict[str, Any]]:
        points = self._mtbf_slices.get((checkpoint, phi))
        if not points:  # pragma: no cover - axis matching guarantees a slice
            raise SurfaceMismatch(
                f"no map slice at checkpoint={checkpoint:g}, phi={phi:g}"
            )
        axis = [mu for mu, _ in points]
        mu_lo, mu_hi, t = _bracket(platform_mtbf, axis, "platform MTBF")
        lo_cell = points[axis.index(mu_lo)][1]
        hi_cell = points[axis.index(mu_hi)][1]
        geometry = {
            "mode": "platform-mtbf",
            "platform_mtbf": platform_mtbf,
            "platform_mtbf_bracket": [mu_lo, mu_hi],
            "checkpoint": checkpoint,
            "phi": phi,
        }
        return [lo_cell, hi_cell], [1.0 - t, t], geometry


# ---------------------------------------------------------------------- #
# Tier 3: the exact analytical optimizer
# ---------------------------------------------------------------------- #
def analytical_answer(
    scenario: ScenarioSpec, protocols: Sequence[str]
) -> Dict[str, Any]:
    """Tier-3 answer: every protocol optimized exactly at this point.

    Runs :func:`repro.optimize.period.optimize_period` (bracketing scan +
    Brent refinement, ~ms per protocol) at the scenario's point parameters,
    honouring its ``model_params``, and names the winner with the same
    result shape tier 2 produces -- plus the optimizer's extra provenance
    (closed forms, evaluation counts, convergence flags).
    """
    parameters = scenario.parameters()
    workload = scenario.application_workload()
    results: Dict[str, Dict[str, Any]] = {}
    for name in protocols:
        optimum = optimize_period(
            name,
            parameters,
            workload,
            model_kwargs=scenario.model_kwargs_for(name),
        )
        entry = optimum.to_dict()
        del entry["protocol"]
        entry["interpolated"] = False
        results[name] = entry
    winner = min(
        protocols,
        key=lambda name: (results[name]["waste"], protocols.index(name)),
    )
    others = sorted(results[name]["waste"] for name in protocols if name != winner)
    return {
        "winner": winner,
        "margin": (others[0] - results[winner]["waste"]) if others else None,
        "results": results,
    }
