"""Background jobs: the heavy (Monte-Carlo) tier of the advisor.

Monte-Carlo refinement takes seconds to minutes -- far beyond an
interactive latency budget -- so ``POST /simulate`` never blocks the
request: it registers a job, returns ``202`` with a job id immediately, and
the campaign runs on a bounded pool of executor threads behind an
``asyncio.Semaphore``.  ``GET /jobs/<id>`` polls the state machine
(``pending -> running -> done | failed``).

Jobs are *content-addressed*, exactly like answers: the job id embeds the
canonical digest of the request, and re-submitting an identical request
returns the existing job instead of burning the budget twice.  Combined
with the campaign-level :class:`~repro.campaign.cache.SweepCache` (which
the job functions share with CLI sweeps -- hence the atomic point writes),
repeated heavy questions converge to cache reads at every layer.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, Mapping, Optional

import repro.obs as _obs

__all__ = ["Job", "JobManager", "JOB_STATES"]

#: The job lifecycle, in order.
JOB_STATES = ("pending", "running", "done", "failed")


class Job:
    """One background computation and its observable state."""

    def __init__(self, job_id: str, kind: str, request: Mapping[str, Any]) -> None:
        self.id = job_id
        self.kind = kind
        self.request = dict(request)
        self.state = "pending"
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible snapshot for ``/jobs/<id>``."""
        payload: Dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "request": self.request,
        }
        if self.result is not None:
            payload["result"] = self.result
        if self.error is not None:
            payload["error"] = self.error
        return payload


class JobManager:
    """A bounded, content-addressed pool of background jobs.

    ``workers`` caps how many jobs compute concurrently (each runs in the
    event loop's default thread executor, so the asyncio request path never
    blocks on NumPy work); submissions beyond the cap queue on the
    semaphore in arrival order.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        registry: Optional[_obs.MetricsRegistry] = None,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = workers
        self._jobs: Dict[str, Job] = {}
        self._by_digest: Dict[str, Job] = {}
        self._tasks: Dict[str, "asyncio.Task[None]"] = {}
        self._counter = 0
        self._registry = registry if registry is not None else _obs.MetricsRegistry()
        self._submitted_metric = _obs.catalog.family(
            "repro_service_jobs_submitted_total", self._registry
        )
        self._transitions_metric = _obs.catalog.family(
            "repro_service_job_transitions_total", self._registry
        )
        # Created lazily inside the running loop: the manager is often
        # constructed before asyncio.run() starts (CLI, test threads).
        self._semaphore: Optional[asyncio.Semaphore] = None

    # ------------------------------------------------------------------ #
    def get(self, job_id: str) -> Optional[Job]:
        """The job with this id, if any."""
        return self._jobs.get(job_id)

    def counters(self) -> Dict[str, int]:
        """Per-state job counts for ``/healthz``."""
        counts = {state: 0 for state in JOB_STATES}
        for job in self._jobs.values():
            counts[job.state] += 1
        counts["submitted"] = len(self._jobs)
        counts["workers"] = self.workers
        return counts

    def submit(
        self,
        kind: str,
        digest: str,
        request: Mapping[str, Any],
        fn: Callable[[], Dict[str, Any]],
    ) -> Job:
        """Register (or find) the job for one canonicalized request.

        ``digest`` is the request's content hash; an identical in-flight or
        finished job is returned as-is, so the job id a cached ``/simulate``
        answer names always resolves.  ``fn`` is the blocking computation;
        it runs on the default executor and must return plain JSON data.
        """
        existing = self._by_digest.get(digest)
        if existing is not None:
            return existing
        self._counter += 1
        job = Job(f"job-{self._counter:06d}-{digest[:12]}", kind, request)
        self._jobs[job.id] = job
        self._by_digest[digest] = job
        self._submitted_metric.inc()
        self._transitions_metric.inc(state="pending")
        task = asyncio.get_running_loop().create_task(self._run(job, fn))
        self._tasks[job.id] = task
        return job

    async def _run(self, job: Job, fn: Callable[[], Dict[str, Any]]) -> None:
        if self._semaphore is None:
            self._semaphore = asyncio.Semaphore(self.workers)
        async with self._semaphore:
            job.state = "running"
            self._transitions_metric.inc(state="running")
            try:
                job.result = await asyncio.get_running_loop().run_in_executor(
                    None, fn
                )
                job.state = "done"
            except Exception as exc:  # noqa: BLE001 - surfaced via /jobs/<id>
                job.error = f"{type(exc).__name__}: {exc}"
                job.state = "failed"
            self._transitions_metric.inc(state=job.state)

    async def drain(self) -> None:
        """Wait for every submitted job to finish (tests and shutdown)."""
        tasks = list(self._tasks.values())
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
