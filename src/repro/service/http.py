"""Minimal HTTP/1.1 layer for the advisor service (stdlib asyncio only).

The repository's tier-1 test suite deliberately depends on NumPy alone, so
the service cannot pull in an HTTP framework.  This module implements the
small slice of HTTP/1.1 the advisor actually needs on top of
``asyncio.start_server``:

* request parsing -- request line, headers, ``Content-Length`` body, with
  hard limits on line and body sizes so a misbehaving client cannot balloon
  memory;
* keep-alive connections (HTTP/1.1 default; ``Connection: close`` honoured),
  which is what makes the answer-cache tier's sub-millisecond latency
  visible to a load generator instead of being drowned in TCP handshakes;
* a tiny router with ``{param}`` path segments (``/jobs/{job_id}``);
* deterministic response encoding -- the advisor's cache-hit contract is
  *byte-identical bodies*, so the encoder never injects dates or other
  varying headers into the body path.

Everything protocol-shaped lives here; everything advisor-shaped lives in
:mod:`repro.service.app`.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Awaitable,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
)
from urllib.parse import parse_qsl, unquote

__all__ = [
    "HTTPError",
    "Request",
    "Response",
    "Router",
    "HTTPServer",
    "REASON_PHRASES",
]

#: Reason phrases for the status codes the service emits.
REASON_PHRASES = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}

#: Upper bounds on request framing; requests beyond them are rejected with
#: 400/413 instead of being buffered.
MAX_REQUEST_LINE = 8192
MAX_HEADER_COUNT = 100
MAX_BODY_BYTES = 1 << 20


class HTTPError(Exception):
    """An error that maps directly onto an HTTP error response."""

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail

    def response(self) -> "Response":
        """The JSON error body for this failure."""
        return Response.json(
            {"error": {"status": self.status, "detail": self.detail}},
            status=self.status,
        )


@dataclass(frozen=True)
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Mapping[str, str]
    headers: Mapping[str, str]
    body: bytes
    #: Path parameters bound by the router (``/jobs/{job_id}``).
    params: Mapping[str, str] = field(default_factory=dict)

    def json(self) -> Any:
        """The request body parsed as JSON (400 on syntax errors)."""
        if not self.body:
            raise HTTPError(400, "request body must be a JSON object")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HTTPError(400, f"invalid JSON body: {exc}") from exc

    def with_params(self, params: Mapping[str, str]) -> "Request":
        """A copy with the router's path parameters bound."""
        return Request(
            method=self.method,
            path=self.path,
            query=self.query,
            headers=self.headers,
            body=self.body,
            params=dict(params),
        )


@dataclass(frozen=True)
class Response:
    """One HTTP response: status, body bytes and extra headers.

    ``headers`` carries the service's provenance headers (``X-Repro-Tier``,
    ``X-Repro-Cache``); framing headers (``Content-Length``, ``Connection``)
    are added by :meth:`encode`.
    """

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Tuple[Tuple[str, str], ...] = ()

    @classmethod
    def json(
        cls,
        payload: Any,
        *,
        status: int = 200,
        headers: Tuple[Tuple[str, str], ...] = (),
    ) -> "Response":
        """A response with a deterministic JSON body.

        Sorted keys, compact separators and ``allow_nan=False``: two calls
        with equal payloads produce equal bytes, and a non-finite float
        (which would serialize as invalid JSON) fails loudly instead.
        """
        body = json.dumps(
            payload, sort_keys=True, separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
        return cls(status=status, body=body, headers=headers)

    def encode(self, *, keep_alive: bool) -> bytes:
        """Serialize the full response, framing headers included."""
        reason = REASON_PHRASES.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        lines.extend(f"{name}: {value}" for name, value in self.headers)
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body


Handler = Callable[[Request], Awaitable[Response]]


class Router:
    """Method + path-pattern dispatch with ``{param}`` segments."""

    def __init__(self) -> None:
        self._routes: List[Tuple[str, Tuple[str, ...], Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        """Register ``handler`` for ``method`` on ``pattern``.

        Patterns are literal paths whose ``{name}`` segments match any
        single non-empty segment and bind it as ``request.params[name]``.
        """
        segments = tuple(s for s in pattern.strip("/").split("/") if s)
        self._routes.append((method.upper(), segments, handler))

    def dispatch(self, request: Request) -> Tuple[Handler, Dict[str, str]]:
        """The handler and bound path parameters for one request.

        Raises :class:`HTTPError` 404 when no pattern matches the path and
        405 when a pattern matches but not the method.
        """
        segments = tuple(s for s in request.path.strip("/").split("/") if s)
        path_matched = False
        for method, pattern, handler in self._routes:
            params = _match(pattern, segments)
            if params is None:
                continue
            path_matched = True
            if method == request.method:
                return handler, params
        if path_matched:
            raise HTTPError(405, f"method {request.method} not allowed on {request.path}")
        raise HTTPError(404, f"no such endpoint: {request.path}")


def _match(
    pattern: Tuple[str, ...], segments: Tuple[str, ...]
) -> Optional[Dict[str, str]]:
    if len(pattern) != len(segments):
        return None
    params: Dict[str, str] = {}
    for expected, actual in zip(pattern, segments):
        if expected.startswith("{") and expected.endswith("}"):
            params[expected[1:-1]] = actual
        elif expected != actual:
            return None
    return params


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request from the stream; ``None`` on a clean EOF.

    Raises :class:`HTTPError` on malformed framing (bad request line,
    oversized headers or body, non-integer ``Content-Length``).
    """
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError) as exc:
        raise HTTPError(400, f"request line too long: {exc}") from exc
    if not line:
        return None
    if len(line) > MAX_REQUEST_LINE:
        raise HTTPError(400, "request line too long")
    try:
        method, target, version = line.decode("latin-1").split()
    except ValueError as exc:
        raise HTTPError(400, f"malformed request line: {line!r}") from exc
    if not version.startswith("HTTP/1."):
        raise HTTPError(400, f"unsupported protocol version {version!r}")
    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADER_COUNT):
        header_line = await reader.readline()
        if header_line in (b"\r\n", b"\n", b""):
            break
        name, separator, value = header_line.decode("latin-1").partition(":")
        if not separator:
            raise HTTPError(400, f"malformed header line: {header_line!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HTTPError(400, "too many headers")
    raw_length = headers.get("content-length", "0") or "0"
    try:
        length = int(raw_length)
    except ValueError as exc:
        raise HTTPError(400, f"invalid Content-Length: {raw_length!r}") from exc
    if length < 0 or length > MAX_BODY_BYTES:
        raise HTTPError(413, f"body of {length} bytes exceeds {MAX_BODY_BYTES}")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HTTPError(400, "body shorter than Content-Length") from exc
    path, _, query_string = target.partition("?")
    return Request(
        method=method.upper(),
        path=unquote(path),
        query=dict(parse_qsl(query_string)),
        headers=headers,
        body=body,
    )


class HTTPServer:
    """An asyncio TCP server speaking just enough HTTP/1.1 for the advisor.

    ``dispatch`` is an async callable mapping a routed :class:`Request` to a
    :class:`Response`; routing errors and handler exceptions are converted
    to JSON error responses here, so one buggy request never tears down the
    connection loop for well-formed ones.
    """

    def __init__(self, router: Router) -> None:
        self.router = router

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve requests on one connection until EOF or ``close``."""
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HTTPError as exc:
                    writer.write(exc.response().encode(keep_alive=False))
                    await writer.drain()
                    return
                if request is None:
                    return
                keep_alive = (
                    request.headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                response = await self._respond(request)
                writer.write(response.encode(keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            return
        except asyncio.CancelledError:
            # Server shutdown cancels in-flight connection tasks; finishing
            # normally keeps asyncio's stream callbacks from logging it.
            return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):  # pragma: no cover
                pass

    async def _respond(self, request: Request) -> Response:
        try:
            handler, params = self.router.dispatch(request)
            return await handler(request.with_params(params))
        except HTTPError as exc:
            return exc.response()
        except Exception as exc:  # noqa: BLE001 - boundary of the server
            return Response.json(
                {
                    "error": {
                        "status": 500,
                        "detail": f"{type(exc).__name__}: {exc}",
                    }
                },
                status=500,
            )

    async def start(self, host: str, port: int) -> asyncio.AbstractServer:
        """Bind and start serving; returns the listening server object."""
        return await asyncio.start_server(self.handle_connection, host, port)
