"""The advisor service: "which protocol, what period?" over HTTP.

A pure-stdlib asyncio HTTP server answering protocol-selection and
period-optimization questions through three tiers -- content-addressed
answer cache, precomputed regime-map interpolation, inline analytical
optimization -- with Monte-Carlo refinement as content-addressed
background jobs.  Start it with ``repro-experiments serve`` or embed it
via :func:`create_app` / :func:`serve_forever`.
"""

from repro.service.app import AdvisorService, create_app, serve_forever
from repro.service.cache import AnswerCache, CachedAnswer, answer_key
from repro.service.http import HTTPError, HTTPServer, Request, Response, Router
from repro.service.jobs import Job, JobManager
from repro.service.tiers import (
    TIER_ANALYTICAL,
    TIER_BACKGROUND,
    TIER_CACHE,
    TIER_CATALOG,
    TIER_MAP,
    RegimeSurface,
    SurfaceMismatch,
    analytical_answer,
)

__all__ = [
    "AdvisorService",
    "AnswerCache",
    "CachedAnswer",
    "HTTPError",
    "HTTPServer",
    "Job",
    "JobManager",
    "RegimeSurface",
    "Request",
    "Response",
    "Router",
    "SurfaceMismatch",
    "TIER_ANALYTICAL",
    "TIER_BACKGROUND",
    "TIER_CACHE",
    "TIER_CATALOG",
    "TIER_MAP",
    "analytical_answer",
    "answer_key",
    "create_app",
    "serve_forever",
]
