"""Tier 1: the in-process, content-addressed answer cache.

Identical questions are what millions-of-users traffic looks like, so the
cheapest tier is a dictionary from the *content hash of the canonical
request* to the exact response bytes previously served.  Keys go through
:func:`repro.campaign.cache.canonical_digest` -- the same digest behind
:meth:`ScenarioSpec.content_hash <repro.scenario.spec.ScenarioSpec.content_hash>`
and the on-disk :class:`~repro.campaign.cache.SweepCache` point keys -- so
"the same request" means the same thing at every caching layer: two JSON
bodies that differ only in field order or whitespace share one entry.

The cache stores rendered body *bytes*, not result objects: a hit is
re-served verbatim, which is what makes the service's byte-identical
hit/miss contract (asserted by the CI load test) trivially true rather than
a property of careful re-serialization.

Eviction is plain LRU with a bounded entry count; the answers are small
JSON documents, so a few thousand entries cost single-digit megabytes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

import repro.obs as _obs
from repro.campaign.cache import canonical_digest

__all__ = ["AnswerCache", "CachedAnswer", "answer_key"]

#: Bump when the request canonicalization or answer layout changes
#: incompatibly (mirrors the SweepCache schema convention).
ANSWER_SCHEMA_VERSION = 1


def answer_key(endpoint: str, request: Mapping[str, Any]) -> str:
    """Content address of one canonicalized request to one endpoint.

    ``request`` must already be canonical plain data (e.g. a
    ``ScenarioSpec.to_dict()`` plus normalized option fields); the digest
    then covers the endpoint, a schema version and the request, nothing
    else -- no timestamps, no insertion order.
    """
    return canonical_digest(
        {
            "service": endpoint,
            "schema": ANSWER_SCHEMA_VERSION,
            "request": dict(request),
        }
    )


@dataclass(frozen=True)
class CachedAnswer:
    """One stored answer: the response bytes plus its provenance."""

    body: bytes
    status: int
    tier: str


class AnswerCache:
    """Bounded LRU mapping of request content hashes to response bytes.

    Hit/miss/eviction counts live on a metrics registry
    (``repro_service_answer_cache_events_total``) rather than bespoke
    integers; ``counters()`` reads them back so the ``/healthz`` payload
    shape is unchanged.  ``registry`` is normally the owning service's
    private registry; standalone caches get a private one so counting
    never bleeds between instances.
    """

    def __init__(
        self,
        max_entries: int = 4096,
        *,
        registry: Optional[_obs.MetricsRegistry] = None,
    ) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, CachedAnswer]" = OrderedDict()
        self._registry = registry if registry is not None else _obs.MetricsRegistry()
        self._events = _obs.catalog.family(
            "repro_service_answer_cache_events_total", self._registry
        )
        self._entries_gauge = _obs.catalog.family(
            "repro_service_answer_cache_entries", self._registry
        )

    def __len__(self) -> int:
        return len(self._entries)

    def _event_count(self, event: str) -> int:
        return int(self._events.value(event=event))

    @property
    def hits(self) -> int:
        return self._event_count("hit")

    @property
    def misses(self) -> int:
        return self._event_count("miss")

    @property
    def evictions(self) -> int:
        return self._event_count("eviction")

    def get(self, key: str) -> Optional[CachedAnswer]:
        """The cached answer for ``key``, counting the hit/miss."""
        answer = self._entries.get(key)
        if answer is None:
            self._events.inc(event="miss")
            return None
        self._entries.move_to_end(key)
        self._events.inc(event="hit")
        return answer

    def put(self, key: str, answer: CachedAnswer) -> None:
        """Store ``answer`` under ``key``, evicting the LRU entry if full."""
        self._entries[key] = answer
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._events.inc(event="eviction")
        self._entries_gauge.set(len(self._entries))

    def counters(self) -> Dict[str, int]:
        """Hit/miss/eviction counters plus the current entry count."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "max_entries": self.max_entries,
        }
