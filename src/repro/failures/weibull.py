"""Weibull failure model.

Field studies of HPC failure logs (e.g. Schroeder & Gibson's analysis cited
by the paper as [1]) report that inter-arrival times are often better fit by
a Weibull distribution with shape ``k < 1`` (failures are bursty: a failure
makes another failure more likely soon after).  The paper's analytical model
assumes exponential failures; this model lets the simulator quantify how far
the conclusions carry over to a non-memoryless law -- one of the ablations
listed in DESIGN.md.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.registry import register_failure_model
from repro.failures.base import FailureModel
from repro.utils.validation import require_positive

__all__ = ["WeibullFailureModel"]


@register_failure_model("weibull", aliases=("wbl",), vectorized=True)
class WeibullFailureModel(FailureModel):
    """Weibull-distributed failure inter-arrival times.

    Parameters
    ----------
    mtbf:
        Desired mean of the distribution, in seconds.  The scale parameter is
        derived from it: ``scale = mtbf / Gamma(1 + 1/shape)``.
    shape:
        Weibull shape parameter ``k``.  ``k = 1`` degenerates to the
        exponential law; ``k < 1`` yields bursty failures (decreasing hazard
        rate); ``k > 1`` models wear-out (increasing hazard rate).
    """

    __slots__ = ("_mtbf", "_shape", "_scale")

    def __init__(self, mtbf: float, shape: float = 0.7) -> None:
        self._mtbf = require_positive(mtbf, "mtbf")
        self._shape = require_positive(shape, "shape")
        self._scale = self._mtbf / math.gamma(1.0 + 1.0 / self._shape)

    @property
    def mtbf(self) -> float:
        return self._mtbf

    @property
    def shape(self) -> float:
        """Weibull shape parameter ``k``."""
        return self._shape

    @property
    def scale(self) -> float:
        """Weibull scale parameter ``lambda`` derived from the MTBF."""
        return self._scale

    def sample_interarrival(self, rng: np.random.Generator) -> float:
        return float(self._scale * rng.weibull(self._shape))

    def sample_interarrivals(self, rng: np.random.Generator, count: int) -> np.ndarray:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return self._scale * rng.weibull(self._shape, size=count)

    def scaled(self, factor: float) -> "WeibullFailureModel":
        factor = require_positive(factor, "factor")
        return WeibullFailureModel(self._mtbf * factor, self._shape)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, WeibullFailureModel)
            and other._mtbf == self._mtbf
            and other._shape == self._shape
        )

    def __hash__(self) -> int:
        return hash(("WeibullFailureModel", self._mtbf, self._shape))
