"""Abstract interface shared by every failure model."""

from __future__ import annotations

import abc
import copy
from typing import Iterator, Sequence

import numpy as np

__all__ = ["FailureModel", "TrialBlockSampler"]


class TrialBlockSampler:
    """Per-campaign block sampler driving the vectorized engine's refills.

    The across-trials engine
    (:class:`~repro.simulation.vectorized.VectorizedPhasedSimulator`)
    requests one sampler per campaign via
    :meth:`FailureModel.trial_block_sampler` and asks it for blocks of
    inter-arrival draws, one row per trial.  This default implementation
    reproduces the event backend exactly by construction: each trial gets
    its own :meth:`FailureModel.spawn`-ed model (free for stateless laws,
    a rewound clone for stateful ones) whose
    :meth:`FailureModel.sample_interarrivals` consumes that trial's
    generator -- the very calls the event backend's
    :class:`~repro.failures.timeline.FailureTimeline` makes.

    Stateful models can subclass this to batch across trials; see the
    trace-replay sampler in :mod:`repro.failures.trace_based`.
    """

    def __init__(self, model: "FailureModel", trials: int) -> None:
        if trials <= 0:
            raise ValueError(f"trials must be positive, got {trials}")
        self._models = [model.spawn() for _ in range(int(trials))]

    def sample_blocks(
        self,
        indices: np.ndarray,
        rngs: Sequence[np.random.Generator],
        count: int,
    ) -> np.ndarray:
        """Draw ``count`` inter-arrivals for every trial in ``indices``.

        Returns a ``(len(indices), count)`` float array whose row ``j``
        holds trial ``indices[j]``'s next block, bit-identical to the
        per-trial stream the event backend consumes.
        """
        out = np.empty((len(indices), int(count)), dtype=float)
        for j, i in enumerate(indices):
            out[j] = self._models[i].sample_interarrivals(rngs[i], count)
        return out


class FailureModel(abc.ABC):
    """A stochastic process generating failure inter-arrival times.

    Concrete models implement :meth:`sample_interarrival`, which draws the
    time until the *next* failure.  All models expose their theoretical MTBF
    (mean of the inter-arrival distribution) through :attr:`mtbf`, which is
    the single scalar the analytical model of the paper consumes.

    Times are expressed in seconds (see :mod:`repro.utils.units`).
    """

    @property
    @abc.abstractmethod
    def mtbf(self) -> float:
        """Theoretical mean time between failures, in seconds."""

    @abc.abstractmethod
    def sample_interarrival(self, rng: np.random.Generator) -> float:
        """Draw the time until the next failure (strictly positive seconds)."""

    # ------------------------------------------------------------------ #
    # Convenience helpers shared by all models
    # ------------------------------------------------------------------ #
    def sample_interarrivals(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` independent inter-arrival times as a NumPy array.

        The default implementation loops over :meth:`sample_interarrival`;
        models that can vectorize the draw override this for speed.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return np.array(
            [self.sample_interarrival(rng) for _ in range(count)], dtype=float
        )

    def failure_times(
        self, rng: np.random.Generator, horizon: float
    ) -> np.ndarray:
        """Absolute failure times in ``[0, horizon)`` as an increasing array."""
        if horizon < 0:
            raise ValueError(f"horizon must be non-negative, got {horizon}")
        times: list[float] = []
        current = 0.0
        while True:
            current += self.sample_interarrival(rng)
            if current >= horizon:
                break
            times.append(current)
        return np.asarray(times, dtype=float)

    def iter_failure_times(self, rng: np.random.Generator) -> Iterator[float]:
        """Yield an unbounded, strictly increasing stream of failure times."""
        current = 0.0
        while True:
            current += self.sample_interarrival(rng)
            yield current

    def trial_block_sampler(self, trials: int) -> TrialBlockSampler:
        """A per-campaign sampler for the vectorized engine's block refills.

        The default wraps per-trial :meth:`spawn`-ed models in a
        :class:`TrialBlockSampler`, which is exactly the event backend's
        sampling (and therefore bit-identical) for every model.  Stateful
        models whose draws do not depend on the generator (trace replay)
        override this with a sampler that batches across trials.
        """
        return TrialBlockSampler(self, trials)

    def spawn(self) -> "FailureModel":
        """Return an instance that is safe to consume in a new simulation run.

        Stateless (distribution-parameter only) models are immutable and
        return ``self`` -- the call is free.  Stateful models (trace replay)
        override this to return a fresh, rewound instance that shares the
        immutable bulk data, so per-run isolation costs O(1) instead of the
        ``copy.deepcopy`` the simulators historically paid per trial.

        The default covers stateful subclasses that predate ``spawn()``:
        anything exposing a ``reset()`` is assumed to carry per-run state
        and still gets the historical deep-copy isolation; models without
        one are treated as immutable.
        """
        reset = getattr(self, "reset", None)
        if reset is not None:
            clone = copy.deepcopy(self)
            clone.reset()
            return clone
        return self

    def scaled(self, factor: float) -> "FailureModel":
        """Return a model whose MTBF is multiplied by ``factor``.

        Used by the weak-scaling scenarios: going from ``N`` to ``k N`` nodes
        divides the platform MTBF by ``k`` (``factor = 1/k``).  Subclasses
        override this with an exact re-parameterisation; the base class has
        no generic way to rescale an arbitrary distribution.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support MTBF rescaling"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(mtbf={self.mtbf:.6g}s)"
