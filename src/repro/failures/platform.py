"""Platform model: ``N`` identical nodes and their aggregated failure behaviour.

The analytical model of the paper only needs the *platform* MTBF
``mu = mu_ind / N`` (Section IV-B.2: "this relation is agnostic of the
granularity of the resources").  The ABFT substrate, however, needs to know
*which* node failed, because recovery reconstructs the block rows owned by
that node.  :class:`Platform` serves both needs:

* :attr:`Platform.mtbf` / :meth:`Platform.failure_model` give the aggregate
  process consumed by the protocol simulators and models;
* :meth:`Platform.sample_failed_node` attributes a platform-level failure to
  a uniformly random node, which is exact for i.i.d. exponential nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.failures.exponential import ExponentialFailureModel
from repro.utils.validation import require_non_negative, require_positive

__all__ = ["Node", "Platform", "platform_mtbf"]


def platform_mtbf(node_mtbf: float, node_count: int) -> float:
    """Aggregate MTBF of ``node_count`` i.i.d. nodes of MTBF ``node_mtbf``.

    ``mu = mu_ind / N`` -- the paper's Equation in Section IV-B.2.

    Examples
    --------
    >>> platform_mtbf(86400.0, 24)
    3600.0
    """
    node_mtbf = require_positive(node_mtbf, "node_mtbf")
    if node_count <= 0 or int(node_count) != node_count:
        raise ValueError(f"node_count must be a positive integer, got {node_count}")
    return node_mtbf / float(node_count)


@dataclass(frozen=True)
class Node:
    """One compute resource of the platform.

    Attributes
    ----------
    index:
        Zero-based identifier of the node.
    memory:
        Memory footprint hosted by the node, in bytes (used by the
        checkpoint-cost models; may be zero when irrelevant).
    mtbf:
        Individual mean time between failures of this node, in seconds.
    """

    index: int
    memory: float
    mtbf: float


@dataclass(frozen=True)
class Platform:
    """A homogeneous machine made of ``node_count`` identical nodes.

    Parameters
    ----------
    node_count:
        Number of nodes.
    node_mtbf:
        Per-node MTBF in seconds (``mu_ind`` in the paper).
    memory_per_node:
        Bytes of application data hosted per node (defaults to 0 -- only the
        checkpoint cost models use it).
    downtime:
        Time ``D`` to reboot a node or swap in a spare after a failure, in
        seconds.

    Examples
    --------
    >>> p = Platform(node_count=100_000, node_mtbf=10 * 365 * 86400.0)
    >>> round(p.mtbf)
    3154
    """

    node_count: int
    node_mtbf: float
    memory_per_node: float = 0.0
    downtime: float = 60.0
    name: str = field(default="platform")

    def __post_init__(self) -> None:
        if self.node_count <= 0 or int(self.node_count) != self.node_count:
            raise ValueError(
                f"node_count must be a positive integer, got {self.node_count}"
            )
        require_positive(self.node_mtbf, "node_mtbf")
        require_non_negative(self.memory_per_node, "memory_per_node")
        require_non_negative(self.downtime, "downtime")

    # ------------------------------------------------------------------ #
    # Aggregate view (used by the analytical model and protocol simulators)
    # ------------------------------------------------------------------ #
    @property
    def mtbf(self) -> float:
        """Platform MTBF ``mu = mu_ind / N`` in seconds."""
        return platform_mtbf(self.node_mtbf, self.node_count)

    @property
    def total_memory(self) -> float:
        """Total application memory footprint across all nodes, in bytes."""
        return self.memory_per_node * self.node_count

    def failure_model(self) -> ExponentialFailureModel:
        """Exponential failure process at the platform MTBF."""
        return ExponentialFailureModel(self.mtbf)

    # ------------------------------------------------------------------ #
    # Node-attributed view (used by the ABFT substrate)
    # ------------------------------------------------------------------ #
    def node(self, index: int) -> Node:
        """Return the :class:`Node` descriptor for ``index``."""
        if not 0 <= index < self.node_count:
            raise IndexError(
                f"node index {index} out of range [0, {self.node_count})"
            )
        return Node(index=index, memory=self.memory_per_node, mtbf=self.node_mtbf)

    def sample_failed_node(self, rng: np.random.Generator) -> int:
        """Attribute a platform-level failure to a uniformly random node.

        For i.i.d. exponential nodes the failing node is uniform among all
        nodes, independently of the failure time.
        """
        return int(rng.integers(0, self.node_count))

    # ------------------------------------------------------------------ #
    # Scaling helpers (weak-scaling study)
    # ------------------------------------------------------------------ #
    def scaled_to(self, node_count: int) -> "Platform":
        """Return the same machine with a different node count.

        Per-node characteristics (MTBF, memory, downtime) are preserved,
        which is exactly the weak-scaling hypothesis of Section V-C: the
        platform MTBF then scales as ``1 / node_count`` and the total memory
        grows linearly.
        """
        return Platform(
            node_count=node_count,
            node_mtbf=self.node_mtbf,
            memory_per_node=self.memory_per_node,
            downtime=self.downtime,
            name=self.name,
        )

    @classmethod
    def from_platform_mtbf(
        cls,
        node_count: int,
        platform_mtbf_seconds: float,
        *,
        memory_per_node: float = 0.0,
        downtime: float = 60.0,
        name: str = "platform",
    ) -> "Platform":
        """Build a platform from an aggregate MTBF (the figure-level knob).

        The paper's experiments fix the *platform* MTBF (e.g. "1 failure per
        day at 10,000 nodes") rather than the per-node MTBF; this constructor
        performs the inversion ``mu_ind = mu * N``.
        """
        platform_mtbf_seconds = require_positive(
            platform_mtbf_seconds, "platform_mtbf_seconds"
        )
        return cls(
            node_count=node_count,
            node_mtbf=platform_mtbf_seconds * node_count,
            memory_per_node=memory_per_node,
            downtime=downtime,
            name=name,
        )
