"""Lazily generated stream of absolute failure times.

The protocol simulators (see :mod:`repro.core.protocols`) "unfold the
application and the chosen fault tolerance mechanism on a set of failures"
(paper, Section V-A).  :class:`FailureTimeline` is that set: an unbounded,
strictly increasing sequence of absolute failure timestamps generated on
demand from any :class:`~repro.failures.base.FailureModel`.

A timeline is consumed through a single query,
:meth:`FailureTimeline.next_failure_after`, which returns the first failure
strictly after a given time.  Because the simulators only ever move forward
in time, the timeline generates and caches failures incrementally and never
needs to materialise more than the horizon actually reached by the run.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.failures.base import FailureModel

__all__ = ["FailureTimeline"]


class FailureTimeline:
    """Strictly increasing absolute failure times, generated lazily.

    Parameters
    ----------
    model:
        The failure inter-arrival model to draw from.
    rng:
        NumPy random generator; owning the generator (rather than a seed)
        lets callers share a single stream across components when desired.
    batch_size:
        Number of inter-arrival times drawn per refill.  Purely a
        performance knob.
    """

    def __init__(
        self,
        model: FailureModel,
        rng: np.random.Generator,
        *,
        batch_size: int = 64,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self._model = model
        self._rng = rng
        self._batch_size = int(batch_size)
        self._times = np.empty(0, dtype=float)
        self._generated_until = 0.0

    # ------------------------------------------------------------------ #
    @property
    def model(self) -> FailureModel:
        """The underlying inter-arrival model."""
        return self._model

    @property
    def generated_count(self) -> int:
        """Number of failure timestamps materialised so far."""
        return int(self._times.size)

    def _extend(self) -> None:
        """Draw one more batch of inter-arrival times and append them."""
        interarrivals = self._model.sample_interarrivals(self._rng, self._batch_size)
        # Guard against degenerate models returning non-positive samples.
        interarrivals = np.maximum(interarrivals, np.finfo(float).tiny)
        start = self._times[-1] if self._times.size else 0.0
        new_times = start + np.cumsum(interarrivals)
        self._times = np.concatenate([self._times, new_times])
        self._generated_until = float(self._times[-1])

    def next_failure_after(self, time: float) -> float:
        """Return the first failure time strictly greater than ``time``."""
        if time < 0:
            time = 0.0
        while self._times.size == 0 or self._generated_until <= time:
            self._extend()
        index = int(np.searchsorted(self._times, time, side="right"))
        while index >= self._times.size:
            self._extend()
            index = int(np.searchsorted(self._times, time, side="right"))
        return float(self._times[index])

    def failures_in(self, start: float, end: float) -> np.ndarray:
        """All failure times in the half-open interval ``(start, end]``."""
        if end < start:
            raise ValueError(f"end ({end}) must be >= start ({start})")
        while self._times.size == 0 or self._generated_until < end:
            self._extend()
        left = int(np.searchsorted(self._times, start, side="right"))
        right = int(np.searchsorted(self._times, end, side="right"))
        return self._times[left:right].copy()

    def count_failures_until(self, end: float) -> int:
        """Number of failures with timestamp <= ``end``."""
        return int(self.failures_in(0.0, end).size)

    @classmethod
    def from_times(cls, failure_times: Sequence[float]) -> "FailureTimeline":
        """Build a timeline from a fixed list of absolute failure times.

        Useful in unit tests to script an exact failure scenario.  The
        resulting timeline raises :class:`RuntimeError` if queried past the
        last scripted failure plus a guard of ``1e30`` seconds (i.e. it
        behaves as if no further failure ever happens).
        """
        times = np.asarray(list(failure_times), dtype=float)
        if times.size and (np.any(np.diff(times) <= 0) or times[0] <= 0):
            raise ValueError("failure_times must be strictly increasing and positive")

        timeline = cls.__new__(cls)
        timeline._model = None  # type: ignore[assignment]
        timeline._rng = None  # type: ignore[assignment]
        timeline._batch_size = 0
        guard = times[-1] + 1e30 if times.size else 1e30
        timeline._times = np.concatenate([times, [guard]])
        timeline._generated_until = float(timeline._times[-1])
        # Replace the lazy extension with a no-op: the scripted guard value
        # is large enough for any realistic simulation horizon.
        timeline._extend = lambda: None  # type: ignore[method-assign]
        return timeline
