"""Lazily generated stream of absolute failure times.

The protocol simulators (see :mod:`repro.core.protocols`) "unfold the
application and the chosen fault tolerance mechanism on a set of failures"
(paper, Section V-A).  :class:`FailureTimeline` is that set: an unbounded,
strictly increasing sequence of absolute failure timestamps generated on
demand from any :class:`~repro.failures.base.FailureModel`.

A timeline is consumed through a single query,
:meth:`FailureTimeline.next_failure_after`, which returns the first failure
strictly after a given time.  Because the simulators only ever move forward
in time, the timeline generates and caches failures incrementally and never
needs to materialise more than the horizon actually reached by the run.

Stream reproducibility guarantee
--------------------------------
Failure times are pre-sampled in fixed-size NumPy blocks of ``batch_size``
inter-arrival times (refilled on exhaustion), and the absolute times of a
block are always computed as ``last_time + cumsum(block)``.  For a given
``(model, rng state, batch_size)`` the resulting sequence is therefore a
pure function of the generator's bit stream: it does not depend on the
query pattern, on how many blocks end up being materialised, or on the
internal storage strategy.  Every pinned regression value in the test suite
relies on this; changing the default ``batch_size`` or the per-block
``cumsum`` arithmetic would silently shift all simulated results.  The
vectorized across-trials engine (:mod:`repro.simulation.vectorized`)
replicates exactly this block pattern, which is what makes it bit-identical
to the event-driven walk, trial for trial.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.failures.base import FailureModel

__all__ = ["FailureTimeline", "DEFAULT_BATCH_SIZE"]

#: Inter-arrival times drawn per refill block.  Part of the stream
#: reproducibility guarantee: see the module docstring.
DEFAULT_BATCH_SIZE = 64


class FailureTimeline:
    """Strictly increasing absolute failure times, generated lazily.

    Parameters
    ----------
    model:
        The failure inter-arrival model to draw from.
    rng:
        NumPy random generator; owning the generator (rather than a seed)
        lets callers share a single stream across components when desired.
    batch_size:
        Number of inter-arrival times drawn per refill.  **Not** purely a
        performance knob: the per-seed failure sequence is guaranteed
        reproducible only at a fixed batch size (see the module docstring),
        so leave it at the default unless you own every consumer of the
        stream.

    Notes
    -----
    Failure times are stored in a geometrically grown, pre-allocated buffer:
    appending a block is amortised O(block) instead of the O(n) reallocation
    a ``concatenate`` per refill would cost, which matters for truncated
    runs that walk hundreds of thousands of failures.
    """

    def __init__(
        self,
        model: FailureModel,
        rng: np.random.Generator,
        *,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self._model = model
        self._rng = rng
        self._batch_size = int(batch_size)
        self._buffer = np.empty(0, dtype=float)
        self._count = 0
        self._generated_until = 0.0

    # ------------------------------------------------------------------ #
    @property
    def model(self) -> FailureModel:
        """The underlying inter-arrival model."""
        return self._model

    @property
    def generated_count(self) -> int:
        """Number of failure timestamps materialised so far."""
        return int(self._count)

    @property
    def times(self) -> np.ndarray:
        """Read-only view of the failure times materialised so far."""
        view = self._buffer[: self._count]
        view.flags.writeable = False
        return view

    def _extend(self) -> None:
        """Draw one more batch of inter-arrival times and append them."""
        interarrivals = self._model.sample_interarrivals(self._rng, self._batch_size)
        # Guard against degenerate models returning non-positive samples.
        interarrivals = np.maximum(interarrivals, np.finfo(float).tiny)
        start = self._buffer[self._count - 1] if self._count else 0.0
        # The per-block `start + cumsum(block)` arithmetic is pinned by the
        # stream reproducibility guarantee -- do not fuse blocks.
        new_times = start + np.cumsum(interarrivals)
        needed = self._count + new_times.size
        if needed > self._buffer.size:
            capacity = max(needed, 2 * self._buffer.size, 4 * self._batch_size)
            grown = np.empty(capacity, dtype=float)
            grown[: self._count] = self._buffer[: self._count]
            self._buffer = grown
        self._buffer[self._count : needed] = new_times
        self._count = needed
        self._generated_until = float(new_times[-1])

    def ensure_count(self, count: int) -> None:
        """Materialise at least ``count`` failure times."""
        while self._count < count:
            self._extend()

    def ensure_horizon(self, time: float) -> None:
        """Materialise the stream strictly past ``time``."""
        while self._count == 0 or self._generated_until <= time:
            self._extend()

    def next_failure_after(self, time: float) -> float:
        """Return the first failure time strictly greater than ``time``."""
        if time < 0:
            time = 0.0
        self.ensure_horizon(time)
        index = int(
            np.searchsorted(self._buffer[: self._count], time, side="right")
        )
        while index >= self._count:
            self._extend()
            index = int(
                np.searchsorted(self._buffer[: self._count], time, side="right")
            )
        return float(self._buffer[index])

    def failures_in(self, start: float, end: float) -> np.ndarray:
        """All failure times in the half-open interval ``(start, end]``."""
        if end < start:
            raise ValueError(f"end ({end}) must be >= start ({start})")
        while self._count == 0 or self._generated_until < end:
            self._extend()
        times = self._buffer[: self._count]
        left = int(np.searchsorted(times, start, side="right"))
        right = int(np.searchsorted(times, end, side="right"))
        return times[left:right].copy()

    def count_failures_until(self, end: float) -> int:
        """Number of failures with timestamp <= ``end``."""
        return int(self.failures_in(0.0, end).size)

    @classmethod
    def from_times(cls, failure_times: Sequence[float]) -> "FailureTimeline":
        """Build a timeline from a fixed list of absolute failure times.

        Useful in unit tests to script an exact failure scenario.  The
        resulting timeline behaves as if no further failure ever happens
        after the last scripted one (a guard failure ``1e30`` seconds later
        caps every realistic simulation horizon).
        """
        times = np.asarray(list(failure_times), dtype=float)
        if times.size and (np.any(np.diff(times) <= 0) or times[0] <= 0):
            raise ValueError("failure_times must be strictly increasing and positive")

        timeline = cls.__new__(cls)
        timeline._model = None  # type: ignore[assignment]
        timeline._rng = None  # type: ignore[assignment]
        timeline._batch_size = 0
        guard = times[-1] + 1e30 if times.size else 1e30
        timeline._buffer = np.concatenate([times, [guard]])
        timeline._count = int(timeline._buffer.size)
        timeline._generated_until = float(timeline._buffer[-1])
        # Replace the lazy extension with a no-op: the scripted guard value
        # is large enough for any realistic simulation horizon.
        timeline._extend = lambda: None  # type: ignore[method-assign]
        return timeline
