"""Exponential (Poisson-process) failure model.

This is the model used throughout the paper: *"failures are generated
following an Exponential distribution law parameterized to fix the MTBF to a
given value"* (Section V-A).  The exponential law is memoryless, which is
what makes the first-order analytical model tractable.
"""

from __future__ import annotations

import numpy as np

from repro.core.registry import register_failure_model
from repro.failures.base import FailureModel
from repro.utils.validation import require_positive

__all__ = ["ExponentialFailureModel"]


@register_failure_model(
    "exponential", aliases=("exp", "poisson", "memoryless"), vectorized=True
)
class ExponentialFailureModel(FailureModel):
    """Memoryless failure process with a fixed MTBF.

    Parameters
    ----------
    mtbf:
        Mean time between failures in seconds (strictly positive).

    Examples
    --------
    >>> import numpy as np
    >>> model = ExponentialFailureModel(mtbf=3600.0)
    >>> rng = np.random.default_rng(0)
    >>> x = model.sample_interarrival(rng)
    >>> x > 0
    True
    """

    __slots__ = ("_mtbf",)

    def __init__(self, mtbf: float) -> None:
        self._mtbf = require_positive(mtbf, "mtbf")

    @property
    def mtbf(self) -> float:
        return self._mtbf

    @property
    def rate(self) -> float:
        """Failure rate ``lambda = 1 / mtbf`` in failures per second."""
        return 1.0 / self._mtbf

    def sample_interarrival(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self._mtbf))

    def sample_interarrivals(self, rng: np.random.Generator, count: int) -> np.ndarray:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return rng.exponential(self._mtbf, size=count)

    def failure_times(self, rng: np.random.Generator, horizon: float) -> np.ndarray:
        """Vectorized generation of failure times over ``[0, horizon)``.

        Draws batches of inter-arrival times sized from the expected count
        (plus head-room) and extends the batch until the horizon is covered,
        which is markedly faster than the generic one-at-a-time loop for the
        Monte-Carlo campaigns.
        """
        if horizon < 0:
            raise ValueError(f"horizon must be non-negative, got {horizon}")
        if horizon == 0:
            return np.empty(0, dtype=float)
        expected = horizon / self._mtbf
        batch = max(16, int(expected + 6.0 * np.sqrt(expected + 1.0)))
        samples = rng.exponential(self._mtbf, size=batch)
        cumulative = np.cumsum(samples)
        while cumulative.size == 0 or cumulative[-1] < horizon:
            extra = rng.exponential(self._mtbf, size=batch)
            offset = cumulative[-1] if cumulative.size else 0.0
            cumulative = np.concatenate([cumulative, offset + np.cumsum(extra)])
        return cumulative[cumulative < horizon]

    def scaled(self, factor: float) -> "ExponentialFailureModel":
        factor = require_positive(factor, "factor")
        return ExponentialFailureModel(self._mtbf * factor)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ExponentialFailureModel) and other._mtbf == self._mtbf

    def __hash__(self) -> int:
        return hash(("ExponentialFailureModel", self._mtbf))
