"""Failure models and platform-level failure aggregation.

The paper models failures as a Poisson process over the whole platform: the
platform Mean Time Between Failures (MTBF) is ``mu = mu_ind / N`` where
``mu_ind`` is the per-node MTBF and ``N`` the node count (Section IV-B.2),
and the simulator of Section V-A draws inter-arrival times from an
Exponential distribution with that mean.

This package provides that model and several alternatives so that the
sensitivity of the protocols to the failure law can be studied:

* :class:`~repro.failures.exponential.ExponentialFailureModel` -- the paper's
  memoryless model (used by every headline experiment).
* :class:`~repro.failures.weibull.WeibullFailureModel` -- infant-mortality /
  wear-out behaviour observed in real failure logs.
* :class:`~repro.failures.lognormal.LogNormalFailureModel` -- heavy-tailed
  alternative used in several resilience studies.
* :class:`~repro.failures.trace_based.TraceFailureModel` -- replays a recorded
  list of failure timestamps (a synthetic stand-in for production logs such
  as the Failure Trace Archive, which we cannot ship).
* :class:`~repro.failures.platform.Platform` -- a machine made of ``N``
  identical nodes; exposes both the aggregated platform MTBF used by the
  analytical model and a node-attributed failure stream used by the ABFT
  substrate.
* :class:`~repro.failures.timeline.FailureTimeline` -- a lazily generated,
  monotonically increasing sequence of absolute failure times consumed by the
  protocol simulators.
"""

from repro.failures.base import FailureModel
from repro.failures.exponential import ExponentialFailureModel
from repro.failures.weibull import WeibullFailureModel
from repro.failures.lognormal import LogNormalFailureModel
from repro.failures.trace_based import TraceFailureModel
from repro.failures.platform import Node, Platform, platform_mtbf
from repro.failures.timeline import FailureTimeline

__all__ = [
    "FailureModel",
    "ExponentialFailureModel",
    "WeibullFailureModel",
    "LogNormalFailureModel",
    "TraceFailureModel",
    "Node",
    "Platform",
    "platform_mtbf",
    "FailureTimeline",
]
