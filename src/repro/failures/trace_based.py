"""Trace-replay failure model.

Production failure logs (such as those of the Failure Trace Archive cited by
the paper) cannot be redistributed here, so this model replays *synthetic or
user-provided* lists of failure timestamps with exactly the same interface as
the stochastic models.  It doubles as a determinism tool for tests: a
scripted sequence of failures exercises a specific protocol path.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.registry import register_failure_model
from repro.failures.base import FailureModel, TrialBlockSampler

__all__ = ["TraceFailureModel", "TraceBlockSampler"]


class TraceBlockSampler(TrialBlockSampler):
    """Batched trace replay: per-trial rewindable cursors, one shared array.

    The event backend replays the trace per trial through a
    :meth:`TraceFailureModel.spawn`-ed clone whose cursor starts at the
    first entry; this sampler keeps one ``int64`` cursor *per trial* over
    the same immutable inter-arrival array and gathers whole blocks with
    NumPy indexing, so the vectorized engine's refills stop looping Python
    per trial.  Cycling traces wrap with modular arithmetic; non-cycling
    traces return :attr:`TraceFailureModel.EXHAUSTED` past the end without
    advancing past it -- both exactly the per-draw semantics of
    :meth:`TraceFailureModel.sample_interarrival`, so the streams stay bit
    identical.  Generators are accepted (the shared signature) but never
    consumed, matching the event path.
    """

    def __init__(self, model: "TraceFailureModel", trials: int) -> None:
        if trials <= 0:
            raise ValueError(f"trials must be positive, got {trials}")
        self._trace = model._interarrivals
        self._cycle = model.cycle
        self._exhausted = model.EXHAUSTED
        self._cursor = np.zeros(int(trials), dtype=np.int64)

    def sample_blocks(
        self,
        indices: np.ndarray,
        rngs: Sequence[np.random.Generator],  # noqa: ARG002 - never consumed
        count: int,
    ) -> np.ndarray:
        trace = self._trace
        size = trace.size
        count = int(count)
        cursor = self._cursor[indices]
        positions = cursor[:, None] + np.arange(count, dtype=np.int64)[None, :]
        if self._cycle:
            out = trace[positions % size]
            self._cursor[indices] = (cursor + count) % size
        else:
            within = positions < size
            out = np.where(
                within, trace[np.minimum(positions, size - 1)], self._exhausted
            )
            # Exhausted draws never advance the cursor (the event path
            # returns EXHAUSTED without touching it).
            self._cursor[indices] = np.minimum(cursor + count, size)
        return out


def _trace_from_spec(
    cls: type,
    mtbf: float | None,
    *,
    interarrivals: Sequence[float] | None = None,
    failure_times: Sequence[float] | None = None,
    cycle: bool = True,
) -> "TraceFailureModel":
    """Scenario-spec factory: build a trace model from recorded data.

    Exactly one of ``interarrivals`` or ``failure_times`` must be given.
    When a target ``mtbf`` is provided (e.g. by a sweep over platform MTBFs)
    the trace is rescaled so its empirical mean matches it, preserving the
    recorded burstiness pattern while hitting the requested failure rate.
    """
    if (interarrivals is None) == (failure_times is None):
        raise ValueError(
            "trace failure model needs exactly one of 'interarrivals' or "
            "'failure_times'"
        )
    if interarrivals is not None:
        model = cls(interarrivals, cycle=cycle)
    else:
        model = cls.from_failure_times(failure_times, cycle=cycle)
    if mtbf is not None and model.mtbf > 0:
        model = model.scaled(mtbf / model.mtbf)
    return model


@register_failure_model(
    "trace",
    aliases=("trace-based", "replay"),
    factory=_trace_from_spec,
    vectorized=True,
)
class TraceFailureModel(FailureModel):
    """Replays a fixed sequence of failure inter-arrival times.

    Parameters
    ----------
    interarrivals:
        Sequence of strictly positive inter-arrival times (seconds), replayed
        in order.  When the trace is exhausted the behaviour depends on
        ``cycle``.
    cycle:
        If true (default), the trace is replayed from the beginning once
        exhausted; otherwise a very large time is returned so that no further
        failure occurs within any realistic horizon.

    Notes
    -----
    The model is *stateful*: each call to :meth:`sample_interarrival`
    advances an internal cursor.  Use :meth:`reset` (or a fresh instance) to
    restart the trace between simulation runs.  Despite the statefulness it
    is registered ``vectorized=True``: :meth:`trial_block_sampler` keeps one
    cursor per trial over the shared trace, so the across-trials engine
    replays it bit-identically to the event backend.
    """

    #: Inter-arrival time returned once a non-cycling trace is exhausted.
    EXHAUSTED: float = 1e30

    def __init__(self, interarrivals: Iterable[float], *, cycle: bool = True) -> None:
        values = np.asarray(list(interarrivals), dtype=float)
        if values.size == 0:
            raise ValueError("trace must contain at least one inter-arrival time")
        if np.any(values <= 0):
            raise ValueError("all inter-arrival times must be strictly positive")
        self._interarrivals = values
        self._cycle = bool(cycle)
        self._cursor = 0

    @classmethod
    def from_failure_times(
        cls, failure_times: Sequence[float], *, cycle: bool = True
    ) -> "TraceFailureModel":
        """Build a trace from *absolute* failure times (must be increasing)."""
        times = np.asarray(list(failure_times), dtype=float)
        if times.size == 0:
            raise ValueError("failure_times must contain at least one timestamp")
        if np.any(np.diff(times) <= 0) or times[0] <= 0:
            raise ValueError("failure_times must be strictly increasing and positive")
        interarrivals = np.diff(np.concatenate([[0.0], times]))
        return cls(interarrivals, cycle=cycle)

    @property
    def mtbf(self) -> float:
        """Empirical mean of the trace inter-arrival times."""
        return float(np.mean(self._interarrivals))

    @property
    def cycle(self) -> bool:
        """Whether the trace restarts from the beginning when exhausted."""
        return self._cycle

    @property
    def remaining(self) -> int:
        """Number of un-consumed entries before exhaustion (cycling ignores this)."""
        return int(self._interarrivals.size - self._cursor)

    def reset(self) -> None:
        """Rewind the trace to its first entry."""
        self._cursor = 0

    def spawn(self) -> "TraceFailureModel":
        """A fresh, rewound replayer sharing this trace's (immutable) data.

        The clone starts at the first entry and advances its own cursor, so
        concurrent simulation runs never perturb each other -- at O(1) cost
        per run instead of a deep copy of the whole trace.
        """
        clone = type(self).__new__(type(self))
        clone._interarrivals = self._interarrivals
        clone._cycle = self._cycle
        clone._cursor = 0
        return clone

    def sample_interarrival(self, rng: np.random.Generator) -> float:  # noqa: ARG002
        if self._cursor >= self._interarrivals.size:
            if not self._cycle:
                return self.EXHAUSTED
            self._cursor = 0
        value = float(self._interarrivals[self._cursor])
        self._cursor += 1
        return value

    def trial_block_sampler(self, trials: int) -> TraceBlockSampler:
        """Batched replay for the vectorized engine (see the registry flag).

        Every trial's cursor starts at the first entry -- exactly what
        :meth:`spawn` gives each event-backend run -- independent of any
        other trial, so campaign shards see identical streams at any shard
        boundary.
        """
        return TraceBlockSampler(self, trials)

    def scaled(self, factor: float) -> "TraceFailureModel":
        if factor <= 0:
            raise ValueError(f"factor must be strictly positive, got {factor}")
        return TraceFailureModel(self._interarrivals * factor, cycle=self._cycle)
