"""Log-normal failure model.

A heavy-tailed alternative to the exponential law, also reported as a good
fit for node-level time-between-failures in production logs.  Used only in
the distribution-sensitivity ablation; the headline experiments keep the
paper's exponential assumption.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.registry import register_failure_model
from repro.failures.base import FailureModel
from repro.utils.validation import require_positive

__all__ = ["LogNormalFailureModel"]


@register_failure_model("lognormal", aliases=("log-normal",), vectorized=True)
class LogNormalFailureModel(FailureModel):
    """Log-normally distributed failure inter-arrival times.

    Parameters
    ----------
    mtbf:
        Desired mean of the distribution in seconds.
    sigma:
        Standard deviation of the underlying normal distribution (shape of
        the tail).  The location parameter is chosen so the mean equals
        ``mtbf``: ``mu_log = ln(mtbf) - sigma^2 / 2``.
    """

    __slots__ = ("_mtbf", "_sigma", "_mu_log")

    def __init__(self, mtbf: float, sigma: float = 1.0) -> None:
        self._mtbf = require_positive(mtbf, "mtbf")
        self._sigma = require_positive(sigma, "sigma")
        self._mu_log = math.log(self._mtbf) - 0.5 * self._sigma**2

    @property
    def mtbf(self) -> float:
        return self._mtbf

    @property
    def sigma(self) -> float:
        """Shape parameter (std-dev of the log of the inter-arrival time)."""
        return self._sigma

    def sample_interarrival(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(mean=self._mu_log, sigma=self._sigma))

    def sample_interarrivals(self, rng: np.random.Generator, count: int) -> np.ndarray:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return rng.lognormal(mean=self._mu_log, sigma=self._sigma, size=count)

    def scaled(self, factor: float) -> "LogNormalFailureModel":
        factor = require_positive(factor, "factor")
        return LogNormalFailureModel(self._mtbf * factor, self._sigma)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LogNormalFailureModel)
            and other._mtbf == self._mtbf
            and other._sigma == self._sigma
        )

    def __hash__(self) -> int:
        return hash(("LogNormalFailureModel", self._mtbf, self._sigma))
