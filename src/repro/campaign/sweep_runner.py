"""Resumable (MTBF, alpha) sweep campaigns with an on-disk result cache.

:func:`repro.experiments.sweep.sweep_mtbf_alpha` is a one-shot generator: it
evaluates the grid lazily and forgets everything afterwards.  The
:class:`SweepRunner` materialises the same grids as restartable jobs:

* every grid point is cached on disk (:class:`~repro.campaign.cache.SweepCache`)
  under a key derived from the parameters, the point's coordinates, the
  protocol list and the simulation settings, so an interrupted or repeated
  sweep recomputes only the missing points;
* the analytical wastes of uncached points are evaluated in one vectorised
  NumPy pass (:mod:`repro.core.analytical.grid`) instead of point by point;
* when a simulation campaign is requested, the Monte-Carlo trials of each
  point run through :class:`~repro.campaign.executor.ParallelMonteCarloExecutor`,
  whose results are bit-identical to the serial runner for any worker count
  -- cache entries written by a parallel run and a serial run are
  interchangeable.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

import repro.obs as _obs
from repro.application.workload import ApplicationWorkload
from repro.campaign.cache import SweepCache
from repro.campaign.executor import (
    ParallelMonteCarloExecutor,
    ShardedVectorizedExecutor,
)
from repro.core.analytical.grid import GRID_PROTOCOLS, waste_points
from repro.core.parameters import ResilienceParameters
from repro.core.registry import (
    PROTOCOL_PAIRS,
    UnknownProtocolError,
    create_failure_model,
    protocol_names,
    resolve_failure_model,
    resolve_protocol,
    vectorized_protocol_names,
)
from repro.simulation.table import TrialTable
from repro.simulation.vectorized import (
    ENGINE_BACKENDS,
    VectorizedBackendError,
    note_backend_fallback,
    supports_vectorized_backend,
    vectorized_backend_obstacle,
)

__all__ = ["SweepJob", "GridPoint", "SweepResult", "SweepRunner", "CAMPAIGN_PROTOCOLS"]

#: The canonical protocol registry, re-exported under the campaign name.
CAMPAIGN_PROTOCOLS = PROTOCOL_PAIRS


@dataclass(frozen=True)
class SweepJob:
    """Specification of one sweep campaign over the (MTBF, alpha) plane.

    Attributes
    ----------
    parameters:
        Base parameter bundle; its MTBF is replaced at every grid point.
    application_time:
        Fault-free duration ``T0`` of the single-epoch workload, seconds.
    mtbf_values / alpha_values:
        Grid axes (MTBF in seconds, alpha in [0, 1]).
    protocols:
        Protocol names to evaluate (registered names or aliases; see
        :func:`repro.core.registry.protocol_names`).
    library_fraction:
        ``rho`` of the workload's dataset; ``None`` uses the parameters'.
    epochs:
        Number of identical epochs the workload is split into (1, the
        Figure 7 single-epoch shape, by default).
    simulate:
        Also run a Monte-Carlo campaign at every grid point.
    simulation_runs / seed:
        Campaign size and root seed when ``simulate`` is set (every grid
        point uses the same root seed, like the Figure 7 harness).
    failure_model / failure_params:
        Failure law driving the simulated campaigns: any registered model
        name (``"exponential"``, ``"weibull"``, ``"lognormal"``,
        ``"trace"``, ...) plus its parameters as a tuple of ``(key, value)``
        pairs (kept hashable for the cache key).  The analytical column
        always uses the closed forms, which assume the exponential law.
    model_params:
        Per-protocol analytical-model constructor options as a tuple of
        ``(protocol name, ((key, value), ...))`` pairs (e.g. the composite
        model's ``per_epoch=False``); selecting any disables the vectorised
        grid path for the affected sweep.
    backend:
        Monte-Carlo engine for simulated points: ``"event"`` (default, the
        per-trial state-machine walk), ``"vectorized"`` (the across-trials
        engine; every selected protocol must have a registered vectorized
        engine and the failure law must be one of the registry's vectorized
        laws -- exponential, Weibull, log-normal, trace -- else the job fails with
        an actionable error) or ``"auto"`` (vectorized where supported,
        event elsewhere).  The engines are bit-identical trial for trial,
        so the backend is *not* part of the cache key -- entries are
        interchangeable.
    max_slowdown:
        Truncation cap forwarded to the simulators: a trial is cut short
        (and counted in the point summaries' ``truncated`` field) once its
        makespan exceeds ``max_slowdown * T0``.  Non-default values are part
        of the cache key.
    """

    parameters: ResilienceParameters
    application_time: float
    mtbf_values: Tuple[float, ...]
    alpha_values: Tuple[float, ...]
    protocols: Tuple[str, ...] = tuple(CAMPAIGN_PROTOCOLS)
    library_fraction: Optional[float] = None
    epochs: int = 1
    simulate: bool = False
    simulation_runs: int = 200
    seed: Optional[int] = 2014
    failure_model: str = "exponential"
    failure_params: Tuple[Tuple[str, Any], ...] = ()
    model_params: Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...] = ()
    backend: str = "event"
    max_slowdown: float = 1e4

    def __post_init__(self) -> None:
        object.__setattr__(self, "mtbf_values", tuple(float(m) for m in self.mtbf_values))
        object.__setattr__(self, "alpha_values", tuple(float(a) for a in self.alpha_values))
        object.__setattr__(self, "protocols", tuple(self.protocols))
        object.__setattr__(self, "failure_params", tuple(self.failure_params))
        object.__setattr__(
            self,
            "model_params",
            tuple((name, tuple(options)) for name, options in self.model_params),
        )
        unknown = [
            name
            for name in self.protocols
            if not self._is_registered(name)
        ]
        if unknown:
            known = protocol_names()
            suggestions = [
                match
                for name in unknown
                for match in difflib.get_close_matches(name, known, n=1, cutoff=0.4)
            ]
            message = (
                f"unknown protocols {sorted(unknown)}; registered: {sorted(known)}"
            )
            if suggestions:
                message += f" -- did you mean {sorted(set(suggestions))}?"
            raise UnknownProtocolError(unknown[0], known, message=message)
        # Canonicalize the failure-model spelling so aliases ("exp",
        # "poisson") hit the same cache keys and the same exponential fast
        # path as the canonical name.
        object.__setattr__(
            self, "failure_model", resolve_failure_model(self.failure_model).name
        )
        if not self.mtbf_values or not self.alpha_values:
            raise ValueError("mtbf_values and alpha_values must be non-empty")
        if self.epochs <= 0:
            raise ValueError(f"epochs must be positive, got {self.epochs}")
        if self.simulate and self.simulation_runs <= 0:
            raise ValueError(
                f"simulation_runs must be positive, got {self.simulation_runs}"
            )
        if self.backend not in ENGINE_BACKENDS:
            raise ValueError(
                f"unknown engine backend {self.backend!r}; "
                f"expected one of {ENGINE_BACKENDS}"
            )
        if self.max_slowdown <= 1.0:
            raise ValueError(
                f"max_slowdown must be > 1, got {self.max_slowdown}"
            )

    @staticmethod
    def _is_registered(name: str) -> bool:
        try:
            resolve_protocol(name)
        except UnknownProtocolError:
            return False
        return True

    # ------------------------------------------------------------------ #
    @property
    def rho(self) -> float:
        """The workload library fraction actually used."""
        if self.library_fraction is None:
            return self.parameters.rho
        return float(self.library_fraction)

    def grid(self) -> list[Tuple[float, float]]:
        """Grid points in sweep order (MTBF-major, like ``sweep_mtbf_alpha``)."""
        return [(m, a) for m in self.mtbf_values for a in self.alpha_values]

    def point_key(self, mtbf: float, alpha: float) -> Dict[str, Any]:
        """Cache key of one grid point.

        The key covers everything the point's value depends on -- parameter
        scalars, coordinates, protocol list, simulation settings -- but not
        the rest of the grid, so jobs with overlapping grids share entries.
        """
        params = self.parameters
        if params.storage is not None and params.storage.mtbf_sensitive:
            # MTBF-sensitive storage (buddy with a fallback level) lowers
            # to different (C, R) at every grid point; key on the point's
            # own lowering.  Sound because equal lowered scalars imply
            # identical behaviour everywhere downstream -- which is also
            # why flat-storage runs share cache entries with scalar runs.
            params = params.with_mtbf(float(mtbf))
        key: Dict[str, Any] = {
            "application_time": self.application_time,
            "checkpoint": params.full_checkpoint,
            "recovery": params.full_recovery,
            "downtime": params.downtime,
            "rho": params.rho,
            "abft_overhead": params.abft_overhead,
            "abft_reconstruction": params.abft_reconstruction,
            "remainder_recovery": params.remainder_recovery,
            "library_fraction": self.rho,
            "protocols": sorted(self.protocols),
            "mtbf": float(mtbf),
            "alpha": float(alpha),
            "simulate": self.simulate,
        }
        if self.simulate:
            key["simulation_runs"] = self.simulation_runs
            key["seed"] = self.seed
        # Non-default shape/law fields are added conditionally so the keys of
        # pre-existing (exponential, single-epoch) caches remain valid.
        if self.epochs != 1:
            key["epochs"] = self.epochs
        if self.failure_model != "exponential" or self.failure_params:
            key["failure_model"] = self.failure_model
            key["failure_params"] = [list(pair) for pair in self.failure_params]
        if self.model_params:
            key["model_params"] = [
                [name, [list(pair) for pair in options]]
                for name, options in self.model_params
            ]
        if self.max_slowdown != 1e4:
            key["max_slowdown"] = self.max_slowdown
        return key

    def model_kwargs_for(self, protocol: str) -> Dict[str, Any]:
        """Analytical-model constructor options for one protocol."""
        canonical = resolve_protocol(protocol).name
        for name, options in self.model_params:
            if resolve_protocol(name).name == canonical:
                return dict(options)
        return {}

    def workload(self, alpha: float) -> ApplicationWorkload:
        """The workload evaluated at one alpha."""
        if self.epochs == 1:
            return ApplicationWorkload.single_epoch(
                self.application_time, alpha, library_fraction=self.rho
            )
        return ApplicationWorkload.iterative(
            self.epochs,
            self.application_time / self.epochs,
            alpha,
            library_fraction=self.rho,
        )

    def point_failure_model(self, mtbf: float):
        """The failure model driving simulated campaigns at one grid point.

        ``None`` for the default exponential law: the simulator then builds
        its own :class:`ExponentialFailureModel`, which keeps the simulation
        stream (and therefore existing cache entries) bit-identical to the
        pre-scenario code path.
        """
        if self.failure_model == "exponential" and not self.failure_params:
            return None
        return create_failure_model(
            self.failure_model, float(mtbf), **dict(self.failure_params)
        )


@dataclass(frozen=True)
class GridPoint:
    """One evaluated grid point: model (and optionally simulated) waste.

    ``simulated`` holds the per-protocol campaign summary derived from the
    point's :class:`~repro.simulation.table.TrialTable` (mean/std/CI of the
    waste, mean makespan and failure count, truncated-trial count); it is
    empty for model-only points and for entries cached before the columnar
    engine existed.
    """

    mtbf: float
    alpha: float
    model_waste: Dict[str, float]
    simulated_waste: Dict[str, float] = field(default_factory=dict)
    simulated: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def truncated_trials(self, protocol: str) -> int:
        """Truncated-trial count of one protocol's campaign (0 if unknown)."""
        return int(self.simulated.get(protocol, {}).get("truncated", 0))


@dataclass(frozen=True)
class SweepResult:
    """Outcome of a sweep campaign, with cache accounting.

    Attributes
    ----------
    job:
        The job specification that produced this result.
    points:
        All grid points in sweep order (MTBF-major).
    computed_points / cached_points:
        How many grid points were evaluated in this run vs loaded from the
        cache.  A fully resumed job reports ``computed_points == 0``.
    """

    job: SweepJob
    points: Tuple[GridPoint, ...]
    computed_points: int
    cached_points: int

    def waste_grid(self, protocol: str, *, simulated: bool = False) -> dict:
        """Map ``(mtbf, alpha) -> waste`` for one protocol."""
        grid = {}
        for point in self.points:
            source = point.simulated_waste if simulated else point.model_waste
            if protocol in source:
                grid[(point.mtbf, point.alpha)] = source[protocol]
        return grid


class SweepRunner:
    """Execute :class:`SweepJob` campaigns, resumably and in parallel.

    Parameters
    ----------
    cache_dir:
        Directory of the on-disk point cache; ``None`` disables caching.
    resume:
        Consult existing cache entries (default).  ``False`` recomputes every
        point (entries are still rewritten, refreshing the cache).
    workers / backend:
        Worker-pool settings for the Monte-Carlo trials of simulated points.
        Event-backend campaigns fan out through
        :class:`~repro.campaign.executor.ParallelMonteCarloExecutor`;
        vectorized campaigns shard their trial range through
        :class:`~repro.campaign.executor.ShardedVectorizedExecutor` (which
        only distinguishes serial from process execution, so ``"thread"``
        runs those campaigns serially).  Both are bit-identical to one
        worker for any count.
    vectorized:
        Evaluate the analytical wastes of uncached points in one NumPy
        broadcast pass (default) instead of per-point model objects.  Both
        paths produce bit-identical values.
    """

    def __init__(
        self,
        *,
        cache_dir: Optional[str | Path] = None,
        resume: bool = True,
        workers: Optional[int] = None,
        backend: str = "process",
        vectorized: bool = True,
    ) -> None:
        self._cache = SweepCache(cache_dir) if cache_dir is not None else None
        self._resume = bool(resume)
        self._executor = ParallelMonteCarloExecutor(
            workers=1 if workers is None else workers, backend=backend
        )
        self._vector_executor = ShardedVectorizedExecutor(
            workers=1 if workers is None else workers,
            backend="process" if backend == "process" else "serial",
        )
        self._vectorized = bool(vectorized)

    @property
    def cache(self) -> Optional[SweepCache]:
        """The point cache, or ``None`` when caching is disabled."""
        return self._cache

    # ------------------------------------------------------------------ #
    def run(self, job: SweepJob) -> SweepResult:
        """Run (or resume) a sweep job and return every grid point."""
        if _obs.tracing():
            with _obs.span(
                "sweep",
                category="campaign",
                protocols=",".join(job.protocols),
                backend=job.backend,
                simulate=bool(job.simulate),
            ):
                return self._run_job(job)
        return self._run_job(job)

    def _run_job(self, job: SweepJob) -> SweepResult:
        grid = job.grid()
        values: Dict[Tuple[float, float], Dict[str, Any]] = {}
        pending: list[Tuple[float, float]] = []
        for coords in grid:
            cached = None
            if self._cache is not None and self._resume:
                cached = self._cache.load(job.point_key(*coords))
            if cached is not None:
                values[coords] = cached
            else:
                pending.append(coords)
        cached_count = len(grid) - len(pending)
        if _obs.enabled():
            outcomes = _obs.catalog.family("repro_sweep_points_total")
            if cached_count:
                outcomes.inc(cached_count, outcome="cached")
            if pending:
                outcomes.inc(len(pending), outcome="computed")

        if pending:
            model_waste = self._evaluate_models(job, pending)
            for coords in pending:
                value: Dict[str, Any] = {"model_waste": model_waste[coords]}
                if job.simulate:
                    if _obs.tracing():
                        with _obs.span(
                            "sweep-point",
                            category="campaign",
                            mtbf=float(coords[0]),
                            alpha=float(coords[1]),
                        ):
                            tables = self._simulate_point(job, *coords)
                    else:
                        tables = self._simulate_point(job, *coords)
                    value["simulated_waste"] = {
                        name: table.summarize("waste").mean
                        for name, table in tables.items()
                    }
                    value["simulated"] = {
                        name: table.summary_dict() for name, table in tables.items()
                    }
                values[coords] = value
                if self._cache is not None:
                    self._cache.store(job.point_key(*coords), value)

        points = tuple(
            GridPoint(
                mtbf=mtbf,
                alpha=alpha,
                model_waste=dict(values[(mtbf, alpha)]["model_waste"]),
                simulated_waste=dict(values[(mtbf, alpha)].get("simulated_waste", {})),
                simulated=dict(values[(mtbf, alpha)].get("simulated", {})),
            )
            for mtbf, alpha in grid
        )
        return SweepResult(
            job=job,
            points=points,
            computed_points=len(pending),
            cached_points=cached_count,
        )

    # ------------------------------------------------------------------ #
    def _evaluate_models(
        self, job: SweepJob, coords: Sequence[Tuple[float, float]]
    ) -> Dict[Tuple[float, float], Dict[str, float]]:
        """Analytical waste of every protocol at the given points."""
        canonical = tuple(resolve_protocol(name).name for name in job.protocols)
        vectorizable = (
            self._vectorized
            and job.epochs == 1
            and not job.model_params
            and set(canonical) <= set(GRID_PROTOCOLS)
            # The analytical grid broadcasts one fixed (C, R) over the MTBF
            # axis; MTBF-sensitive storage must re-lower per point instead.
            and not (
                job.parameters.storage is not None
                and job.parameters.storage.mtbf_sensitive
            )
        )
        if vectorizable:
            mtbf = np.array([m for m, _ in coords], dtype=float)
            alpha = np.array([a for _, a in coords], dtype=float)
            grids = waste_points(
                job.parameters, job.application_time, mtbf, alpha, canonical
            )
            return {
                pair: {
                    name: float(grids[cname][i])
                    for name, cname in zip(job.protocols, canonical)
                }
                for i, pair in enumerate(coords)
            }
        out: Dict[Tuple[float, float], Dict[str, float]] = {}
        for mtbf, alpha in coords:
            parameters = job.parameters.with_mtbf(mtbf)
            workload = job.workload(alpha)
            out[(mtbf, alpha)] = {
                name: resolve_protocol(name)
                .model_cls(parameters, **job.model_kwargs_for(name))
                .waste(workload)
                for name in job.protocols
            }
        return out

    def _simulate_point(
        self, job: SweepJob, mtbf: float, alpha: float
    ) -> Dict[str, TrialTable]:
        """Per-protocol trial tables of the campaigns at one grid point."""
        parameters = job.parameters.with_mtbf(mtbf)
        workload = job.workload(alpha)
        failure_model = job.point_failure_model(mtbf)
        tables: Dict[str, TrialTable] = {}
        for name in job.protocols:
            entry = resolve_protocol(name)
            use_vectorized = False
            if job.backend in ("vectorized", "auto"):
                supported = supports_vectorized_backend(
                    entry.vectorized_cls, failure_model
                )
                if not supported:
                    detail = vectorized_backend_obstacle(
                        entry.vectorized_cls,
                        failure_model,
                        protocol=entry.name,
                        law=job.failure_model,
                        available=vectorized_protocol_names(),
                    )
                    if job.backend == "vectorized":
                        raise VectorizedBackendError(
                            f"backend='vectorized' cannot run this sweep: "
                            f"{detail}; use backend='event' or backend='auto'"
                        )
                    note_backend_fallback(detail)
                use_vectorized = supported
            if use_vectorized:
                engine = entry.vectorized_cls(
                    parameters,
                    workload,
                    failure_model=failure_model,
                    max_slowdown=job.max_slowdown,
                )
                tables[name] = self._vector_executor.run(
                    engine, runs=job.simulation_runs, seed=job.seed
                )
            else:
                simulator = entry.simulator_cls(
                    parameters,
                    workload,
                    failure_model=failure_model,
                    max_slowdown=job.max_slowdown,
                )
                campaign = self._executor.run(
                    simulator.simulate_once,
                    runs=job.simulation_runs,
                    seed=job.seed,
                )
                tables[name] = campaign.table
        return tables
