"""Campaign execution: parallel Monte-Carlo fan-out and resumable sweeps.

The paper's evaluation is built from *campaigns* -- 1000 independent
simulated executions per parameter point (Section V-A), swept over the
(MTBF, alpha) plane for the Figure 7 heatmaps.  This package scales that
structure up:

* :mod:`repro.campaign.executor` -- :class:`ParallelMonteCarloExecutor` runs
  the trials of one campaign over a process/thread pool in chunks, with each
  trial's RNG derived exactly as the serial runner derives it, so the same
  root seed produces bit-identical aggregate statistics for any worker
  count; :class:`ShardedVectorizedExecutor` gives the across-trials
  (vectorized) engine the same treatment -- one contiguous trial shard per
  worker process, bit-identical to the serial vectorized path;
* :mod:`repro.campaign.cache` -- :class:`SweepCache`, a crash-tolerant
  one-JSON-file-per-point result store;
* :mod:`repro.campaign.sweep_runner` -- :class:`SweepRunner` /
  :class:`SweepJob`, which materialise (MTBF, alpha) grids as resumable
  jobs: cached points are never recomputed, and the analytical wastes of
  uncached points are evaluated in one vectorised NumPy pass
  (:mod:`repro.core.analytical.grid`).

The experiment harness (``run_figure7``, the ``campaign`` CLI subcommand)
and the benchmarks are built on these primitives.
"""

from repro.campaign.cache import SweepCache, canonical_digest
from repro.campaign.executor import (
    ParallelMonteCarloExecutor,
    ShardedVectorizedExecutor,
    resolve_worker_count,
    run_monte_carlo_parallel,
)
from repro.campaign.sweep_runner import (
    CAMPAIGN_PROTOCOLS,
    GridPoint,
    SweepJob,
    SweepResult,
    SweepRunner,
)

__all__ = [
    "SweepCache",
    "canonical_digest",
    "ParallelMonteCarloExecutor",
    "ShardedVectorizedExecutor",
    "resolve_worker_count",
    "run_monte_carlo_parallel",
    "CAMPAIGN_PROTOCOLS",
    "GridPoint",
    "SweepJob",
    "SweepResult",
    "SweepRunner",
]
