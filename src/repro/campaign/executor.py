"""Parallel Monte-Carlo campaign execution.

The paper's validation averages 1000 independent executions per parameter
point (Section V-A); :func:`repro.simulation.runner.run_monte_carlo` runs
them one after the other in pure Python.  This module fans the trials out
over a process (or thread) pool in contiguous index *batches*: each worker
simulates one batch and returns a single columnar
:class:`~repro.simulation.table.TrialTable` slice, so inter-process transfer
cost is one structured-array pickle per batch instead of a Python object per
trial.  The slices are concatenated in seed (trial) order and summarised
once, vectorized.

Determinism guarantee
---------------------
Trial ``i`` draws its random generator from
``RandomStreams(seed).generator_for_trial(i)`` -- the exact derivation the
serial path uses -- and the batch tables are reassembled in trial order
before the summaries are computed with the same vectorized reductions as
the serial runner.  The same root seed therefore produces a bit-identical
:class:`~repro.simulation.runner.MonteCarloResult` for any worker count,
batch size or backend (the property tests assert ``==``, not approximate
equality).  With ``seed=None`` each trial draws fresh OS entropy, exactly
like the serial path, and no reproducibility is promised.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional

import repro.obs as _obs

from repro.simulation.runner import (
    MonteCarloResult,
    SimulateOnce,
    run_monte_carlo,
    simulate_trial_range,
)
from repro.simulation.table import TrialTable
from repro.simulation.trace import ExecutionTrace

__all__ = [
    "ParallelMonteCarloExecutor",
    "ShardedVectorizedExecutor",
    "resolve_worker_count",
    "run_monte_carlo_parallel",
]

#: Supported execution backends.
BACKENDS = ("process", "thread", "serial")

#: Backends of :class:`ShardedVectorizedExecutor` ("thread" is pointless:
#: the vectorized engine is pure NumPy under the GIL).
VECTOR_BACKENDS = ("process", "serial")


@dataclass
class _BatchResult:
    """One contiguous batch of a campaign, as a columnar table slice."""

    start: int
    table: TrialTable
    traces: List[ExecutionTrace] = field(default_factory=list)


def _simulate_batch(
    simulate_once: SimulateOnce,
    seed: Optional[int],
    start: int,
    stop: int,
    keep_traces: bool,
) -> _BatchResult:
    """Run trials ``start..stop-1`` into one table slice (module-level so
    process pools can pickle it)."""
    table, traces = simulate_trial_range(
        simulate_once, seed=seed, start=start, stop=stop, keep_traces=keep_traces
    )
    return _BatchResult(start=start, table=table, traces=traces)


class ParallelMonteCarloExecutor:
    """Fan Monte-Carlo trials out over a worker pool, deterministically.

    Parameters
    ----------
    workers:
        Worker count; ``None`` uses ``os.cpu_count()``.  A single worker (or
        the ``"serial"`` backend) falls back to the serial runner -- the
        result is identical either way, by the determinism guarantee.
    backend:
        ``"process"`` (default; ``simulate_once`` must be picklable, which
        every protocol simulator is), ``"thread"`` (for non-picklable
        callables; pure-Python simulators gain no speed under the GIL) or
        ``"serial"``.
    chunk_size:
        Trials per pool task (batch).  ``None`` splits the campaign into
        about four batches per worker, amortising task dispatch without
        starving the pool.
    """

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        backend: str = "process",
        chunk_size: Optional[int] = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if workers is not None and workers <= 0:
            raise ValueError(f"workers must be a positive integer, got {workers}")
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(
                f"chunk_size must be a positive integer, got {chunk_size}"
            )
        self._workers = workers
        self._backend = backend
        self._chunk_size = chunk_size

    # ------------------------------------------------------------------ #
    @property
    def workers(self) -> int:
        """Effective worker count."""
        if self._workers is not None:
            return self._workers
        return max(1, os.cpu_count() or 1)

    @property
    def backend(self) -> str:
        """The configured execution backend."""
        return self._backend

    def chunk_ranges(self, runs: int) -> list[tuple[int, int]]:
        """The ``[start, stop)`` trial batches the campaign is split into."""
        size = self._chunk_size
        if size is None:
            size = max(1, math.ceil(runs / (self.workers * 4)))
        return [(start, min(start + size, runs)) for start in range(0, runs, size)]

    # ------------------------------------------------------------------ #
    def run(
        self,
        simulate_once: SimulateOnce,
        *,
        runs: int,
        seed: Optional[int] = None,
        keep_traces: bool = False,
        confidence: float = 0.95,
    ) -> MonteCarloResult:
        """Run the campaign; same signature and result as ``run_monte_carlo``."""
        if runs <= 0:
            raise ValueError(f"runs must be a positive integer, got {runs}")
        if _obs.tracing():
            with _obs.span(
                "campaign",
                category="campaign",
                engine="event",
                backend=self._backend,
                runs=int(runs),
            ):
                return self._run_batches(
                    simulate_once,
                    runs=runs,
                    seed=seed,
                    keep_traces=keep_traces,
                    confidence=confidence,
                )
        return self._run_batches(
            simulate_once,
            runs=runs,
            seed=seed,
            keep_traces=keep_traces,
            confidence=confidence,
        )

    def _run_batches(
        self,
        simulate_once: SimulateOnce,
        *,
        runs: int,
        seed: Optional[int],
        keep_traces: bool,
        confidence: float,
    ) -> MonteCarloResult:
        if self._backend == "serial" or self.workers == 1:
            return run_monte_carlo(
                simulate_once,
                runs=runs,
                seed=seed,
                keep_traces=keep_traces,
                confidence=confidence,
            )
        batches = self.chunk_ranges(runs)
        with self._make_pool(min(self.workers, len(batches))) as pool:
            futures = [
                pool.submit(_simulate_batch, simulate_once, seed, start, stop, keep_traces)
                for start, stop in batches
            ]
            results = [future.result() for future in futures]
        results.sort(key=lambda batch: batch.start)

        table = TrialTable.concatenate([batch.table for batch in results])
        traces: list[ExecutionTrace] = []
        for batch in results:
            traces.extend(batch.traces)
        return MonteCarloResult.from_table(
            table, confidence=confidence, traces=traces
        )

    def _make_pool(self, max_workers: int) -> Executor:
        if self._backend == "process":
            return ProcessPoolExecutor(max_workers=max_workers)
        return ThreadPoolExecutor(max_workers=max_workers)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ParallelMonteCarloExecutor(workers={self._workers!r}, "
            f"backend={self._backend!r}, chunk_size={self._chunk_size!r})"
        )


def resolve_worker_count(workers, trials: int) -> int:
    """Resolve a ``--workers`` value to an effective worker count.

    ``None`` or ``"auto"`` asks the machine (``os.process_cpu_count()``
    where available -- it respects CPU affinity masks -- else
    ``os.cpu_count()``); explicit values are validated.  Either way the
    count is capped by ``trials``: a shard must hold at least one trial.
    """
    if trials <= 0:
        raise ValueError(f"trials must be a positive integer, got {trials}")
    if workers is None or workers == "auto":
        counter = getattr(os, "process_cpu_count", None) or os.cpu_count
        resolved = max(1, counter() or 1)
    else:
        resolved = int(workers)
        if resolved <= 0:
            raise ValueError(
                f"workers must be a positive integer or 'auto', got {workers!r}"
            )
    return min(resolved, int(trials))


def _run_vectorized_shard(engine, seed, start, stop, trace=False):
    """Execute one contiguous trial shard (module-level so process pools
    can pickle it).  The engine reconstructs nothing: the compiled schedule
    arrives once per worker inside the pickled engine.

    With ``trace=True`` (a pool worker mirroring a tracing parent) the
    worker enables span collection in its own process, wraps the shard in
    a root span, and ships the finished records home as a third tuple
    element; the gathering side re-parents them under its campaign span.
    Span ids embed the worker pid, so records from different workers can
    never collide.
    """
    if not trace:
        return start, engine.run_trial_range(start, stop, seed)
    _obs.configure(trace=True)
    tracer = _obs.global_tracer()
    # Forked workers inherit the parent's already-collected records; drop
    # them or drain() would ship the parent's history back and the gather
    # side would re-ingest (and re-duplicate) it once per shard.
    tracer.reset()
    with tracer.span(
        "shard", category="campaign", start=int(start), stop=int(stop)
    ):
        table = engine.run_trial_range(start, stop, seed)
    return start, table, tracer.drain()


class ShardedVectorizedExecutor:
    """Fan a vectorized campaign's trial range out over worker processes.

    Splits ``runs`` trials into one contiguous shard per worker and runs
    ``engine.run_trial_range(start, stop, seed)`` per shard, so each worker
    pays one engine pickle (the compiled schedule ships once) and returns
    one columnar :class:`~repro.simulation.table.TrialTable` slice.  Slices
    are concatenated in trial order.

    Determinism guarantee
    ---------------------
    Trial ``i`` derives its generator from
    ``RandomStreams(seed).generator_for_trial(i)`` regardless of which
    shard executes it, and stateful block samplers (trace replay) rewind
    per trial, so shard boundaries are invisible: the result is
    bit-identical (``==`` on every table column) to the serial
    ``engine.run_trials(runs, seed)`` for **any** worker count -- the same
    guarantee :class:`ParallelMonteCarloExecutor` gives the event walk.

    Parameters
    ----------
    workers:
        Worker count; ``None`` resolves like ``--workers auto`` (see
        :func:`resolve_worker_count`).  One worker runs serially in
        process with no pool.
    backend:
        ``"process"`` (default) or ``"serial"`` -- the latter executes the
        same shard decomposition in-process, which pins the shard-boundary
        arithmetic in fast tests without pool start-up cost.
    """

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        backend: str = "process",
    ) -> None:
        if backend not in VECTOR_BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {VECTOR_BACKENDS}"
            )
        if workers is not None and workers != "auto" and int(workers) <= 0:
            raise ValueError(f"workers must be a positive integer, got {workers}")
        self._workers = workers
        self._backend = backend

    # ------------------------------------------------------------------ #
    @property
    def workers(self) -> int:
        """Effective worker count before the per-campaign trial cap."""
        if self._workers is not None and self._workers != "auto":
            return int(self._workers)
        return resolve_worker_count(None, 1 << 62)

    @property
    def backend(self) -> str:
        """The configured execution backend."""
        return self._backend

    def shard_ranges(self, runs: int) -> list[tuple[int, int]]:
        """The ``[start, stop)`` shards: one contiguous block per worker.

        Unlike the event executor's ~4 batches per worker, one shard per
        worker minimises engine pickles -- vectorized shards have uniform
        cost, so load balancing buys nothing.
        """
        if runs <= 0:
            raise ValueError(f"runs must be a positive integer, got {runs}")
        workers = resolve_worker_count(self._workers, runs)
        size = math.ceil(runs / workers)
        return [(start, min(start + size, runs)) for start in range(0, runs, size)]

    # ------------------------------------------------------------------ #
    def run(self, engine, *, runs: int, seed: Optional[int] = None) -> TrialTable:
        """Run the campaign on ``engine`` (anything with ``run_trial_range``)."""
        if runs <= 0:
            raise ValueError(f"runs must be a positive integer, got {runs}")
        shards = self.shard_ranges(runs)
        if not _obs.tracing():
            if _obs.enabled():
                _obs.catalog.family("repro_campaign_shards_total").inc(
                    len(shards), backend=self._backend
                )
            return self._run_shards(engine, shards, runs, seed, campaign=None)
        with _obs.span(
            "campaign",
            category="campaign",
            engine="vectorized",
            backend=self._backend,
            protocol=getattr(engine, "protocol", None),
            runs=int(runs),
            shards=len(shards),
        ) as campaign:
            _obs.catalog.family("repro_campaign_shards_total").inc(
                len(shards), backend=self._backend
            )
            return self._run_shards(engine, shards, runs, seed, campaign)

    def _run_shards(
        self, engine, shards, runs: int, seed: Optional[int], campaign
    ) -> TrialTable:
        """Execute the shard plan; ``campaign`` is the open campaign span
        when tracing, else ``None`` (the untraced fast path)."""
        if len(shards) == 1:
            # In-process: an engine span (if tracing) nests under the
            # campaign span through the thread-local stack.
            return engine.run_trials(runs, seed)
        tracing = campaign is not None
        if self._backend == "serial":
            results = []
            for start, stop in shards:
                if tracing:
                    # In-process shards parent under the campaign span
                    # implicitly; no drain/ingest round-trip needed.
                    with _obs.span(
                        "shard",
                        category="campaign",
                        start=int(start),
                        stop=int(stop),
                    ):
                        results.append(
                            (start, engine.run_trial_range(start, stop, seed))
                        )
                else:
                    results.append(
                        _run_vectorized_shard(engine, seed, start, stop)
                    )
        else:
            with ProcessPoolExecutor(max_workers=len(shards)) as pool:
                futures = [
                    pool.submit(
                        _run_vectorized_shard, engine, seed, start, stop, tracing
                    )
                    for start, stop in shards
                ]
                gathered = [future.result() for future in futures]
            results = []
            for item in gathered:
                if tracing:
                    start, table, records = item
                    _obs.global_tracer().ingest(records, parent=campaign)
                else:
                    start, table = item
                results.append((start, table))
        results.sort(key=lambda shard: shard[0])
        return TrialTable.concatenate([table for _, table in results])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ShardedVectorizedExecutor(workers={self._workers!r}, "
            f"backend={self._backend!r})"
        )


def run_monte_carlo_parallel(
    simulate_once: SimulateOnce,
    *,
    runs: int,
    seed: Optional[int] = None,
    keep_traces: bool = False,
    confidence: float = 0.95,
    workers: Optional[int] = None,
    backend: str = "process",
    chunk_size: Optional[int] = None,
) -> MonteCarloResult:
    """Functional shortcut: build an executor and run one campaign."""
    executor = ParallelMonteCarloExecutor(
        workers=workers, backend=backend, chunk_size=chunk_size
    )
    return executor.run(
        simulate_once,
        runs=runs,
        seed=seed,
        keep_traces=keep_traces,
        confidence=confidence,
    )
