"""Parallel Monte-Carlo campaign execution.

The paper's validation averages 1000 independent executions per parameter
point (Section V-A); :func:`repro.simulation.runner.run_monte_carlo` runs
them one after the other in pure Python.  This module fans the trials out
over a process (or thread) pool in contiguous index chunks.

Determinism guarantee
---------------------
Trial ``i`` draws its random generator from
``RandomStreams(seed).generator_for_trial(i)`` -- the exact derivation the
serial path uses -- and the per-trial waste / makespan / failure samples are
reassembled in trial order before being summarised with the same Welford
pass as the serial runner.  The same root seed therefore produces a
bit-identical :class:`~repro.simulation.runner.MonteCarloResult` for any
worker count, chunk size or backend (the property tests assert ``==``, not
approximate equality).  With ``seed=None`` each trial draws fresh OS
entropy, exactly like the serial path, and no reproducibility is promised.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional

from repro.simulation.rng import RandomStreams
from repro.simulation.runner import MonteCarloResult, SimulateOnce, run_monte_carlo
from repro.simulation.trace import ExecutionTrace
from repro.utils.stats import summarize

__all__ = ["ParallelMonteCarloExecutor", "run_monte_carlo_parallel"]

#: Supported execution backends.
BACKENDS = ("process", "thread", "serial")


@dataclass
class _ChunkResult:
    """Per-trial samples of one contiguous chunk of a campaign."""

    start: int
    wastes: List[float]
    makespans: List[float]
    failures: List[float]
    protocol: str
    application_time: float
    traces: List[ExecutionTrace] = field(default_factory=list)


def _simulate_chunk(
    simulate_once: SimulateOnce,
    seed: Optional[int],
    start: int,
    stop: int,
    keep_traces: bool,
) -> _ChunkResult:
    """Run trials ``start..stop-1``, deriving each RNG exactly as the serial
    runner does (module-level so process pools can pickle it)."""
    streams = RandomStreams(seed)
    chunk = _ChunkResult(
        start=start,
        wastes=[],
        makespans=[],
        failures=[],
        protocol="",
        application_time=float("nan"),
    )
    for index in range(start, stop):
        rng = streams.generator_for_trial(index)
        trace = simulate_once(rng)
        if index == start:
            chunk.protocol = trace.protocol
            chunk.application_time = trace.application_time
        chunk.wastes.append(trace.waste)
        chunk.makespans.append(trace.makespan)
        chunk.failures.append(float(trace.failure_count))
        if keep_traces:
            chunk.traces.append(trace)
    return chunk


class ParallelMonteCarloExecutor:
    """Fan Monte-Carlo trials out over a worker pool, deterministically.

    Parameters
    ----------
    workers:
        Worker count; ``None`` uses ``os.cpu_count()``.  A single worker (or
        the ``"serial"`` backend) falls back to the serial runner -- the
        result is identical either way, by the determinism guarantee.
    backend:
        ``"process"`` (default; ``simulate_once`` must be picklable, which
        every protocol simulator is), ``"thread"`` (for non-picklable
        callables; pure-Python simulators gain no speed under the GIL) or
        ``"serial"``.
    chunk_size:
        Trials per pool task.  ``None`` splits the campaign into about four
        chunks per worker, amortising task dispatch without starving the
        pool.
    """

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        backend: str = "process",
        chunk_size: Optional[int] = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if workers is not None and workers <= 0:
            raise ValueError(f"workers must be a positive integer, got {workers}")
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(
                f"chunk_size must be a positive integer, got {chunk_size}"
            )
        self._workers = workers
        self._backend = backend
        self._chunk_size = chunk_size

    # ------------------------------------------------------------------ #
    @property
    def workers(self) -> int:
        """Effective worker count."""
        if self._workers is not None:
            return self._workers
        return max(1, os.cpu_count() or 1)

    @property
    def backend(self) -> str:
        """The configured execution backend."""
        return self._backend

    def chunk_ranges(self, runs: int) -> list[tuple[int, int]]:
        """The ``[start, stop)`` trial ranges the campaign is split into."""
        size = self._chunk_size
        if size is None:
            size = max(1, math.ceil(runs / (self.workers * 4)))
        return [(start, min(start + size, runs)) for start in range(0, runs, size)]

    # ------------------------------------------------------------------ #
    def run(
        self,
        simulate_once: SimulateOnce,
        *,
        runs: int,
        seed: Optional[int] = None,
        keep_traces: bool = False,
        confidence: float = 0.95,
    ) -> MonteCarloResult:
        """Run the campaign; same signature and result as ``run_monte_carlo``."""
        if runs <= 0:
            raise ValueError(f"runs must be a positive integer, got {runs}")
        if self._backend == "serial" or self.workers == 1:
            return run_monte_carlo(
                simulate_once,
                runs=runs,
                seed=seed,
                keep_traces=keep_traces,
                confidence=confidence,
            )
        chunks = self.chunk_ranges(runs)
        with self._make_pool(min(self.workers, len(chunks))) as pool:
            futures = [
                pool.submit(_simulate_chunk, simulate_once, seed, start, stop, keep_traces)
                for start, stop in chunks
            ]
            results = [future.result() for future in futures]
        results.sort(key=lambda chunk: chunk.start)

        wastes: list[float] = []
        makespans: list[float] = []
        failures: list[float] = []
        traces: list[ExecutionTrace] = []
        for chunk in results:
            wastes.extend(chunk.wastes)
            makespans.extend(chunk.makespans)
            failures.extend(chunk.failures)
            traces.extend(chunk.traces)
        first = results[0]
        return MonteCarloResult(
            protocol=first.protocol,
            runs=runs,
            waste=summarize(wastes, confidence),
            makespan=summarize(makespans, confidence),
            failures=summarize(failures, confidence),
            application_time=first.application_time,
            traces=tuple(traces),
        )

    def _make_pool(self, max_workers: int) -> Executor:
        if self._backend == "process":
            return ProcessPoolExecutor(max_workers=max_workers)
        return ThreadPoolExecutor(max_workers=max_workers)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ParallelMonteCarloExecutor(workers={self._workers!r}, "
            f"backend={self._backend!r}, chunk_size={self._chunk_size!r})"
        )


def run_monte_carlo_parallel(
    simulate_once: SimulateOnce,
    *,
    runs: int,
    seed: Optional[int] = None,
    keep_traces: bool = False,
    confidence: float = 0.95,
    workers: Optional[int] = None,
    backend: str = "process",
    chunk_size: Optional[int] = None,
) -> MonteCarloResult:
    """Functional shortcut: build an executor and run one campaign."""
    executor = ParallelMonteCarloExecutor(
        workers=workers, backend=backend, chunk_size=chunk_size
    )
    return executor.run(
        simulate_once,
        runs=runs,
        seed=seed,
        keep_traces=keep_traces,
        confidence=confidence,
    )
