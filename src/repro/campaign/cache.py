"""On-disk JSON result cache for sweep campaigns.

Each grid point of a sweep is stored as one small JSON file, keyed by a
canonical digest of everything that determines its value: the resilience
parameters, the point's (MTBF, alpha) coordinates, the protocol list and the
simulation settings (runs, seed) when a simulation was requested.  One file
per point makes the cache crash-tolerant: a job killed mid-grid leaves the
completed points behind, and a resumed run skips exactly those.

The cache is deliberately dumb -- no locking, no eviction -- because sweep
points are write-once: two runs computing the same key write the same value
(the campaign executor is deterministic), so a racing double-write is
harmless.  Writes go through a temporary file + ``os.replace`` so a killed
process can never leave a truncated entry behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional

__all__ = ["SweepCache", "canonical_digest"]

#: Bump when the on-disk layout or key schema changes incompatibly.
CACHE_SCHEMA_VERSION = 1


def canonical_digest(key: Mapping[str, Any]) -> str:
    """SHA-256 digest of a JSON-serialisable key, stable across runs.

    Keys are serialised with sorted keys and no whitespace, so logically
    equal mappings always map to the same digest.  Floats rely on Python's
    shortest round-trip ``repr``, which is deterministic.
    """
    payload = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class SweepCache:
    """A directory of write-once JSON entries, one per sweep grid point.

    Parameters
    ----------
    directory:
        Cache directory; created (with parents) on first use.
    """

    def __init__(self, directory: str | Path) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)

    @property
    def directory(self) -> Path:
        """The cache directory."""
        return self._directory

    # ------------------------------------------------------------------ #
    def path_for(self, key: Mapping[str, Any]) -> Path:
        """The file that does (or would) hold the entry for ``key``."""
        return self._directory / f"point-{canonical_digest(key)}.json"

    def contains(self, key: Mapping[str, Any]) -> bool:
        """Whether a completed entry exists for ``key``."""
        return self.path_for(key).exists()

    def load(self, key: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
        """The cached value for ``key``, or ``None`` when absent/corrupt."""
        path = self.path_for(key)
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if entry.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        return entry.get("value")

    def store(self, key: Mapping[str, Any], value: Mapping[str, Any]) -> Path:
        """Atomically persist ``value`` under ``key``; returns the file path."""
        path = self.path_for(key)
        entry = {"schema": CACHE_SCHEMA_VERSION, "key": dict(key), "value": dict(value)}
        # Unique per-writer temp file: two processes racing on the same key
        # must never share a staging path, or one can publish the other's
        # half-written bytes.
        fd, tmp = tempfile.mkstemp(
            prefix=path.stem, suffix=".tmp", dir=self._directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True, indent=1)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):  # pragma: no cover - only on write failure
                os.unlink(tmp)
        return path

    # ------------------------------------------------------------------ #
    def entries(self) -> Iterator[Path]:
        """Iterate over the entry files currently in the cache."""
        return iter(sorted(self._directory.glob("point-*.json")))

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        removed = 0
        for path in self.entries():
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SweepCache({str(self._directory)!r}, entries={len(self)})"
