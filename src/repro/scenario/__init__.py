"""The unified Scenario API: declarative, serializable experiment specs.

This package is the single configuration surface of the reproduction.  A
:class:`ScenarioSpec` describes one experiment -- protocol set x failure law
x platform costs x workload x sweep axes x simulation settings -- and every
layer consumes it:

* the registry (:mod:`repro.core.registry`) resolves its protocol and
  failure-model names to implementations (with aliases and nearest-match
  error messages);
* the protocol simulators run under whatever failure law it selects
  (exponential, Weibull, log-normal or trace replay -- the scenario-diversity
  payoff over the paper's exponential-only harness);
* the campaign layer (:mod:`repro.campaign`) materialises its sweep axes as
  resumable, parallel grid jobs;
* the CLI (``python -m repro.cli scenario run spec.json``) drives all of the
  above from a JSON file, no Python required.

Quick start::

    from repro.scenario import Scenario

    result = (Scenario.paper_figure7()
              .with_failures("weibull", shape=0.7)
              .with_protocols("BiPeriodicCkpt", "ABFT&PeriodicCkpt")
              .with_simulation(runs=100)
              .run(workers=4))
    print(result.to_table().to_text())

See ``EXPERIMENTS.md`` for the scenario-file format and
``examples/custom_scenario.py`` for a worked example.
"""

from repro.scenario.spec import (
    SCENARIO_SCHEMA,
    FailureSpec,
    PlatformSpec,
    ScenarioError,
    ScenarioSpec,
    ScenarioSpecError,
    SimulationSpec,
    StorageSpec,
    SweepSpec,
    WorkloadSpec,
)
from repro.scenario.builder import Scenario
from repro.scenario.runner import (
    ExponentialAssumptionWarning,
    OptimizedPoint,
    ScenarioOptimizationResult,
    ScenarioResult,
    optimize_scenario,
    run_scenario,
    scenario_sweep_job,
)

__all__ = [
    "SCENARIO_SCHEMA",
    "FailureSpec",
    "PlatformSpec",
    "ScenarioError",
    "ScenarioSpec",
    "ScenarioSpecError",
    "SimulationSpec",
    "StorageSpec",
    "SweepSpec",
    "WorkloadSpec",
    "Scenario",
    "ExponentialAssumptionWarning",
    "OptimizedPoint",
    "ScenarioOptimizationResult",
    "ScenarioResult",
    "optimize_scenario",
    "run_scenario",
    "scenario_sweep_job",
]
