"""Declarative, serializable scenario specifications.

A :class:`ScenarioSpec` is the single description every layer of the
reproduction speaks: protocol set x failure law x platform costs x workload
x sweep axes x simulation settings.  It is

* **frozen** -- specs are values; deriving a variant goes through
  :meth:`ScenarioSpec.replace` or the fluent
  :class:`~repro.scenario.builder.Scenario` builder;
* **serializable** -- :meth:`to_dict` / :meth:`from_dict` round-trip exactly
  (``from_dict(to_dict(s)) == s``), with :meth:`to_json` / :meth:`from_json`
  / :meth:`save` / :meth:`load` for files, so a JSON file can drive an
  end-to-end run through the CLI, the simulators and the campaign layer;
* **validated** -- :meth:`from_dict` checks every section against
  :data:`SCENARIO_SCHEMA` and reports the exact path of a problem
  (``"platform.checkpoint: expected a number, got 'ten minutes'"``) instead
  of a bare ``KeyError`` / ``TypeError`` deep inside a consumer.

The spec resolves names through :mod:`repro.core.registry`, so protocols and
failure models registered by third parties are immediately expressible.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.application.workload import ApplicationWorkload
from repro.checkpointing.stack import StorageStack
from repro.core.parameters import ResilienceParameters
from repro.core.registry import (
    ResolvedProtocol,
    build_storage,
    create_failure_model,
    resolve,
    resolve_failure_model,
    resolve_protocol,
)

__all__ = [
    "ScenarioError",
    "ScenarioSpecError",
    "FailureSpec",
    "PlatformSpec",
    "WorkloadSpec",
    "StorageSpec",
    "SweepSpec",
    "SimulationSpec",
    "ScenarioSpec",
    "SCENARIO_SCHEMA",
    "SCENARIO_SPEC_VERSION",
]

#: Version of the scenario-file format.  Version 1 is the pre-storage
#: layout; version 2 adds the optional top-level ``storage`` section (and
#: makes ``platform.checkpoint`` optional when one is given).  Files
#: without a ``version`` field are read as version 1 and re-serialize at
#: the current version -- the formats are forward-compatible because every
#: v2 addition is optional.
SCENARIO_SPEC_VERSION = 2


class ScenarioError(ValueError):
    """Base class of scenario-layer errors."""


class ScenarioSpecError(ScenarioError):
    """A scenario document failed schema validation.

    The message always names the offending path (``section.field``) and what
    was expected, so a hand-written JSON file can be fixed from the error
    alone.
    """

    def __init__(self, path: str, problem: str) -> None:
        super().__init__(f"{path}: {problem}" if path else problem)
        self.path = path
        self.problem = problem


# ---------------------------------------------------------------------- #
# Conversion helpers
# ---------------------------------------------------------------------- #
def _freeze(value: Any, path: str) -> Any:
    """Normalise JSON-compatible data into hashable, comparable form."""
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v, path) for v in value)
    if isinstance(value, Mapping):
        return tuple(
            (str(k), _freeze(v, f"{path}.{k}")) for k, v in sorted(value.items())
        )
    raise ScenarioSpecError(path, f"unsupported value type {type(value).__name__}")


def _thaw(value: Any) -> Any:
    """Inverse of :func:`_freeze` for serialization: tuples back to lists."""
    if isinstance(value, tuple):
        if value and all(
            isinstance(item, tuple) and len(item) == 2 and isinstance(item[0], str)
            for item in value
        ):
            return {k: _thaw(v) for k, v in value}
        return [_thaw(v) for v in value]
    return value


def _number(value: Any, path: str, *, minimum: Optional[float] = None) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioSpecError(path, f"expected a number, got {value!r}")
    value = float(value)
    if minimum is not None and value < minimum:
        raise ScenarioSpecError(path, f"must be >= {minimum}, got {value}")
    return value


def _check_keys(
    data: Mapping[str, Any], allowed: Sequence[str], required: Sequence[str], path: str
) -> None:
    if not isinstance(data, Mapping):
        raise ScenarioSpecError(path, f"expected an object, got {type(data).__name__}")
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ScenarioSpecError(
            path,
            f"unknown field(s) {unknown}; allowed fields: {sorted(allowed)}",
        )
    missing = sorted(set(required) - set(data))
    if missing:
        raise ScenarioSpecError(path, f"missing required field(s) {missing}")


#: Declarative description of the scenario-file format: section ->
#: ``(field -> (type description, required))``.  Used by the validator and
#: rendered in EXPERIMENTS.md; the JSON layout mirrors it exactly.
SCENARIO_SCHEMA: Dict[str, Dict[str, Tuple[str, bool]]] = {
    "": {
        "version": (
            f"spec format version (default 1; current {SCENARIO_SPEC_VERSION})",
            False,
        ),
        "name": ("string label of the scenario", False),
        "protocols": ("list of registered protocol names/aliases", False),
        "platform": ("object (see 'platform')", True),
        "workload": ("object (see 'workload')", True),
        "storage": ("object (see 'storage')", False),
        "failures": ("object (see 'failures')", False),
        "sweep": ("object (see 'sweep')", False),
        "simulation": ("object (see 'simulation')", False),
        "model_params": (
            "per-protocol analytical-model options, e.g. "
            "{'ABFT&PeriodicCkpt': {'per_epoch': false}}",
            False,
        ),
    },
    "platform": {
        "mtbf": ("platform MTBF mu in seconds (> 0)", True),
        "checkpoint": (
            "full checkpoint cost C in seconds (>= 0); required unless a "
            "'storage' section lowers C from a storage stack",
            False,
        ),
        "recovery": ("full recovery cost R in seconds (default: C)", False),
        "downtime": ("downtime D in seconds (default 60)", False),
        "library_fraction": ("memory fraction rho in [0, 1] (default 0.8)", False),
        "abft_overhead": ("ABFT slowdown phi >= 1 (default 1.03)", False),
        "abft_reconstruction": ("Recons_ABFT in seconds (default 2)", False),
        "remainder_recovery": ("R_Rem override in seconds (default (1-rho)R)", False),
    },
    "workload": {
        "total_time": ("fault-free duration T0 in seconds (> 0)", True),
        "alpha": ("LIBRARY time fraction in [0, 1] (default 0.8)", False),
        "epochs": ("number of identical epochs (default 1)", False),
    },
    "storage": {
        "kind": ("registered storage name/alias, e.g. 'multi-level'", True),
        "params": (
            "storage constructor parameters; nested media are "
            "{'kind': ..., 'params': {...}} objects",
            False,
        ),
        "data_bytes": ("checkpointed volume in bytes (default 0)", False),
        "node_count": ("nodes writing/reading concurrently (default 1)", False),
    },
    "failures": {
        "model": ("registered failure-model name (default 'exponential')", False),
        "params": ("model parameters, e.g. {'shape': 0.7}", False),
    },
    "sweep": {
        "mtbf_values": ("platform MTBFs in seconds forming the x-axis", False),
        "alpha_values": ("library-time ratios forming the y-axis", False),
    },
    "simulation": {
        "validate": ("run Monte-Carlo campaigns (default false)", False),
        "runs": ("simulated executions per grid point (default 200)", False),
        "seed": ("root seed of the campaigns (default 2014)", False),
        "backend": (
            "Monte-Carlo engine: 'event', 'vectorized' or 'auto' "
            "(default 'event'; both engines are bit-identical where "
            "'vectorized' is supported)",
            False,
        ),
    },
}


# ---------------------------------------------------------------------- #
# Section specs
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class PlatformSpec:
    """Platform and cost parameters (the paper's Section IV scalars)."""

    mtbf: float
    checkpoint: Optional[float] = None
    recovery: Optional[float] = None
    downtime: float = 60.0
    library_fraction: float = 0.8
    abft_overhead: float = 1.03
    abft_reconstruction: float = 2.0
    remainder_recovery: Optional[float] = None

    def parameters(
        self,
        mtbf: Optional[float] = None,
        *,
        storage: Optional[StorageStack] = None,
    ) -> ResilienceParameters:
        """The equivalent :class:`ResilienceParameters` bundle.

        With a ``storage`` stack, ``C``/``R`` are lowered from it (at the
        effective MTBF) and :attr:`checkpoint`/:attr:`recovery` are unused.
        """
        mtbf_value = self.mtbf if mtbf is None else float(mtbf)
        if storage is not None:
            return ResilienceParameters.from_storage(
                platform_mtbf=mtbf_value,
                storage=storage,
                downtime=self.downtime,
                library_fraction=self.library_fraction,
                abft_overhead=self.abft_overhead,
                abft_reconstruction=self.abft_reconstruction,
                remainder_recovery=self.remainder_recovery,
            )
        if self.checkpoint is None:
            raise ScenarioSpecError(
                "platform.checkpoint",
                "required unless a 'storage' section is given",
            )
        return ResilienceParameters.from_scalars(
            platform_mtbf=mtbf_value,
            checkpoint=self.checkpoint,
            recovery=self.recovery,
            downtime=self.downtime,
            library_fraction=self.library_fraction,
            abft_overhead=self.abft_overhead,
            abft_reconstruction=self.abft_reconstruction,
            remainder_recovery=self.remainder_recovery,
        )

    @classmethod
    def _from_dict(cls, data: Mapping[str, Any], path: str) -> "PlatformSpec":
        schema = SCENARIO_SCHEMA["platform"]
        _check_keys(data, tuple(schema), [f for f, (_, r) in schema.items() if r], path)
        optional_numbers = ("checkpoint", "recovery", "remainder_recovery")
        values: Dict[str, Any] = {}
        for key, value in data.items():
            if key in optional_numbers and value is None:
                values[key] = None
            else:
                values[key] = _number(value, f"{path}.{key}")
        spec = cls(**values)
        if spec.mtbf <= 0:
            raise ScenarioSpecError(f"{path}.mtbf", "must be > 0")
        if not 0.0 <= spec.library_fraction <= 1.0:
            raise ScenarioSpecError(f"{path}.library_fraction", "must be in [0, 1]")
        if spec.abft_overhead < 1.0:
            raise ScenarioSpecError(f"{path}.abft_overhead", "phi must be >= 1")
        return spec


@dataclass(frozen=True)
class WorkloadSpec:
    """The protected application: total duration, alpha, epoch structure."""

    total_time: float
    alpha: float = 0.8
    epochs: int = 1

    def workload(
        self, alpha: Optional[float] = None, *, library_fraction: float = 0.8
    ) -> ApplicationWorkload:
        """Materialise the :class:`ApplicationWorkload` at one alpha."""
        alpha_value = self.alpha if alpha is None else float(alpha)
        if self.epochs == 1:
            return ApplicationWorkload.single_epoch(
                self.total_time, alpha_value, library_fraction=library_fraction
            )
        return ApplicationWorkload.iterative(
            self.epochs,
            self.total_time / self.epochs,
            alpha_value,
            library_fraction=library_fraction,
        )

    @classmethod
    def _from_dict(cls, data: Mapping[str, Any], path: str) -> "WorkloadSpec":
        schema = SCENARIO_SCHEMA["workload"]
        _check_keys(data, tuple(schema), [f for f, (_, r) in schema.items() if r], path)
        total_time = _number(data["total_time"], f"{path}.total_time")
        if total_time <= 0:
            raise ScenarioSpecError(f"{path}.total_time", "must be > 0")
        alpha = _number(data.get("alpha", 0.8), f"{path}.alpha")
        if not 0.0 <= alpha <= 1.0:
            raise ScenarioSpecError(f"{path}.alpha", "must be in [0, 1]")
        epochs = data.get("epochs", 1)
        if isinstance(epochs, bool) or not isinstance(epochs, int) or epochs <= 0:
            raise ScenarioSpecError(
                f"{path}.epochs", f"expected a positive integer, got {epochs!r}"
            )
        return cls(total_time=total_time, alpha=alpha, epochs=epochs)


@dataclass(frozen=True)
class StorageSpec:
    """The checkpoint-storage stack: a registered medium plus its binding.

    ``kind`` names a medium registered with
    :func:`repro.core.registry.register_storage`; ``params`` are its
    constructor parameters (nested media appear as ``{"kind": ...,
    "params": {...}}`` sub-objects and are built recursively).  Stored as a
    sorted tuple of ``(key, value)`` pairs like :class:`FailureSpec` so the
    spec stays frozen and comparable.
    """

    kind: str
    params: Tuple[Tuple[str, Any], ...] = ()
    data_bytes: float = 0.0
    node_count: int = 1

    @property
    def params_dict(self) -> Dict[str, Any]:
        """Constructor parameters as a plain dict (nested trees restored)."""
        return {key: _thaw(value) for key, value in self.params}

    def tree(self) -> Dict[str, Any]:
        """The plain ``{"kind", "params"}`` tree :func:`build_storage` eats."""
        return {"kind": self.kind, "params": self.params_dict}

    def build(self):
        """Instantiate the (possibly nested) storage medium."""
        return build_storage(self.tree(), path="storage")

    def stack(self) -> StorageStack:
        """The medium bound to this spec's data volume and node count."""
        return StorageStack(self.build(), self.data_bytes, self.node_count)

    @classmethod
    def _from_dict(cls, data: Mapping[str, Any], path: str) -> "StorageSpec":
        schema = SCENARIO_SCHEMA["storage"]
        _check_keys(data, tuple(schema), [f for f, (_, r) in schema.items() if r], path)
        kind = data["kind"]
        if not isinstance(kind, str) or not kind:
            raise ScenarioSpecError(
                f"{path}.kind", f"expected a storage kind string, got {kind!r}"
            )
        params = data.get("params", {})
        if not isinstance(params, Mapping):
            raise ScenarioSpecError(
                f"{path}.params", f"expected an object, got {type(params).__name__}"
            )
        data_bytes = _number(data.get("data_bytes", 0.0), f"{path}.data_bytes")
        if data_bytes < 0:
            raise ScenarioSpecError(f"{path}.data_bytes", "must be >= 0")
        node_count = data.get("node_count", 1)
        if (
            isinstance(node_count, bool)
            or not isinstance(node_count, int)
            or node_count <= 0
        ):
            raise ScenarioSpecError(
                f"{path}.node_count",
                f"expected a positive integer, got {node_count!r}",
            )
        return cls(
            kind=kind,
            params=_freeze(params, f"{path}.params"),
            data_bytes=data_bytes,
            node_count=node_count,
        )


def _wrap_storage_error(exc: Exception) -> ScenarioSpecError:
    """Turn a :func:`build_storage` error into a path-bearing spec error.

    ``build_storage`` already prefixes its messages with the dotted path of
    the offending field (``storage.params.local.kind: ...``); split that
    prefix back out so :class:`ScenarioSpecError` reports ``section.field``
    like every other section.
    """
    message = str(exc)
    prefix, separator, problem = message.partition(": ")
    if separator and prefix.startswith("storage") and " " not in prefix:
        return ScenarioSpecError(prefix, problem)
    return ScenarioSpecError("storage", message)


@dataclass(frozen=True)
class FailureSpec:
    """The failure law: a registered model name plus its parameters.

    ``params`` is stored as a sorted tuple of ``(key, value)`` pairs so the
    spec stays frozen and comparable; :attr:`params_dict` gives it back as a
    dict.
    """

    model: str = "exponential"
    params: Tuple[Tuple[str, Any], ...] = ()

    @property
    def params_dict(self) -> Dict[str, Any]:
        """Model parameters as a plain dict (lists restored from tuples)."""
        return {key: _thaw(value) for key, value in self.params}

    @property
    def is_exponential(self) -> bool:
        """Whether the law is the paper's memoryless model."""
        return resolve_failure_model(self.model).name == "exponential"

    def create(self, mtbf: Optional[float] = None):
        """Instantiate the registered failure model for a target MTBF."""
        return create_failure_model(self.model, mtbf, **self.params_dict)

    @classmethod
    def _from_dict(cls, data: Mapping[str, Any], path: str) -> "FailureSpec":
        schema = SCENARIO_SCHEMA["failures"]
        _check_keys(data, tuple(schema), (), path)
        model = data.get("model", "exponential")
        if not isinstance(model, str):
            raise ScenarioSpecError(f"{path}.model", f"expected a string, got {model!r}")
        resolve_failure_model(model)  # raises UnknownFailureModelError early
        params = data.get("params", {})
        if not isinstance(params, Mapping):
            raise ScenarioSpecError(
                f"{path}.params", f"expected an object, got {type(params).__name__}"
            )
        return cls(model=model, params=_freeze(params, f"{path}.params"))


@dataclass(frozen=True)
class SweepSpec:
    """Grid axes; empty axes fall back to the scenario's point values."""

    mtbf_values: Tuple[float, ...] = ()
    alpha_values: Tuple[float, ...] = ()

    @classmethod
    def _from_dict(cls, data: Mapping[str, Any], path: str) -> "SweepSpec":
        schema = SCENARIO_SCHEMA["sweep"]
        _check_keys(data, tuple(schema), (), path)
        axes: Dict[str, Tuple[float, ...]] = {}
        for axis in ("mtbf_values", "alpha_values"):
            values = data.get(axis, ())
            if not isinstance(values, (list, tuple)):
                raise ScenarioSpecError(
                    f"{path}.{axis}", f"expected a list, got {type(values).__name__}"
                )
            axes[axis] = tuple(
                _number(v, f"{path}.{axis}[{i}]") for i, v in enumerate(values)
            )
        return cls(**axes)


@dataclass(frozen=True)
class SimulationSpec:
    """Monte-Carlo campaign settings."""

    validate: bool = False
    runs: int = 200
    seed: int = 2014
    backend: str = "event"

    @classmethod
    def _from_dict(cls, data: Mapping[str, Any], path: str) -> "SimulationSpec":
        schema = SCENARIO_SCHEMA["simulation"]
        _check_keys(data, tuple(schema), (), path)
        validate = data.get("validate", False)
        if not isinstance(validate, bool):
            raise ScenarioSpecError(
                f"{path}.validate", f"expected a boolean, got {validate!r}"
            )
        runs = data.get("runs", 200)
        if isinstance(runs, bool) or not isinstance(runs, int) or runs <= 0:
            raise ScenarioSpecError(
                f"{path}.runs", f"expected a positive integer, got {runs!r}"
            )
        seed = data.get("seed", 2014)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ScenarioSpecError(
                f"{path}.seed", f"expected an integer, got {seed!r}"
            )
        backend = data.get("backend", "event")
        from repro.simulation.vectorized import ENGINE_BACKENDS

        if backend not in ENGINE_BACKENDS:
            raise ScenarioSpecError(
                f"{path}.backend",
                f"expected one of {list(ENGINE_BACKENDS)}, got {backend!r}",
            )
        return cls(validate=validate, runs=runs, seed=seed, backend=backend)


# ---------------------------------------------------------------------- #
# The scenario spec
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, declarative experiment description.

    Examples
    --------
    >>> from repro.scenario import Scenario
    >>> spec = (Scenario.paper_figure7()
    ...         .with_failures("weibull", shape=0.7)
    ...         .with_protocols("BiPeriodicCkpt")
    ...         .build())
    >>> spec.failures.model
    'weibull'
    >>> ScenarioSpec.from_dict(spec.to_dict()) == spec
    True
    """

    platform: PlatformSpec
    workload: WorkloadSpec
    name: str = "scenario"
    protocols: Tuple[str, ...] = ("PurePeriodicCkpt", "BiPeriodicCkpt", "ABFT&PeriodicCkpt")
    failures: FailureSpec = field(default_factory=FailureSpec)
    storage: Optional[StorageSpec] = None
    sweep: SweepSpec = field(default_factory=SweepSpec)
    simulation: SimulationSpec = field(default_factory=SimulationSpec)
    #: Per-protocol analytical-model constructor options, stored as a sorted
    #: tuple of ``(canonical protocol name, ((key, value), ...))`` pairs.
    #: This is how a spec expresses modelling choices like the composite
    #: model's ``per_epoch=False`` (the weak-scaling reading).
    model_params: Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "protocols", tuple(self.protocols))
        if not self.protocols:
            raise ScenarioSpecError("protocols", "must name at least one protocol")
        for name in self.protocols:
            resolve_protocol(name)  # raises UnknownProtocolError with suggestions
        resolve_failure_model(self.failures.model)
        # Probe the failure-model parameters now: a typo'd or missing model
        # parameter should fail at construction with its spec path, not
        # mid-campaign with a bare TypeError.
        try:
            self.failures.create(1.0)
        except (TypeError, ValueError) as exc:
            raise ScenarioSpecError("failures.params", str(exc)) from exc
        # Same early-failure contract for the storage section: a typo'd
        # storage kind or constructor parameter surfaces now, with its
        # dotted spec path, not when parameters() is first materialised.
        if self.storage is not None:
            try:
                self.storage.stack()
            except ScenarioSpecError:
                raise
            except (TypeError, ValueError) as exc:
                raise _wrap_storage_error(exc) from exc
        elif self.platform.checkpoint is None:
            raise ScenarioSpecError(
                "platform.checkpoint",
                "required unless a 'storage' section is given",
            )
        # Engine-backend compatibility is a spec-validity question: a
        # vectorized-only spec naming a protocol or failure law without
        # vectorized support should fail at load/validate time with the
        # offending path, not mid-campaign.  Both support lists are derived
        # from the registry, so this diagnostic widens with the engine.
        from repro.core.registry import (
            vectorized_law_names,
            vectorized_protocol_names,
        )
        from repro.simulation.vectorized import ENGINE_BACKENDS

        backend = self.simulation.backend
        if backend not in ENGINE_BACKENDS:
            raise ScenarioSpecError(
                "simulation.backend",
                f"expected one of {list(ENGINE_BACKENDS)}, got {backend!r}",
            )
        if backend == "vectorized":
            unsupported = [
                name
                for name in self.canonical_protocols
                if not resolve_protocol(name).has_vectorized
            ]
            if unsupported:
                raise ScenarioSpecError(
                    "simulation.backend",
                    f"protocols {unsupported} have no vectorized engine "
                    f"(available: {sorted(vectorized_protocol_names())}); "
                    "use 'event' or 'auto'",
                )
            law = resolve_failure_model(self.failures.model).name
            if law not in vectorized_law_names():
                raise ScenarioSpecError(
                    "simulation.backend",
                    f"failure law {self.failures.model!r} has no vectorized "
                    f"block sampling (vectorized laws: "
                    f"{sorted(vectorized_law_names())}); use 'event' or 'auto'",
                )
        # Canonicalize the model-option keys and keep them sorted so specs
        # built from aliases compare (and serialize) identically.
        canonical_options = tuple(
            sorted(
                (resolve_protocol(protocol).name, tuple(options))
                for protocol, options in self.model_params
            )
        )
        object.__setattr__(self, "model_params", canonical_options)

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def canonical_protocols(self) -> Tuple[str, ...]:
        """Protocol names resolved to their canonical (paper) spelling."""
        return tuple(resolve_protocol(name).name for name in self.protocols)

    @property
    def mtbf_axis(self) -> Tuple[float, ...]:
        """The MTBF sweep axis (the platform MTBF when no sweep is set)."""
        return self.sweep.mtbf_values or (self.platform.mtbf,)

    @property
    def alpha_axis(self) -> Tuple[float, ...]:
        """The alpha sweep axis (the workload alpha when no sweep is set)."""
        return self.sweep.alpha_values or (self.workload.alpha,)

    def parameters(self, mtbf: Optional[float] = None) -> ResilienceParameters:
        """Parameter bundle, optionally at a swept MTBF.

        With a ``storage`` section the bundle carries the built
        :class:`~repro.checkpointing.stack.StorageStack` and its lowered
        ``(C, R)``; every consumer downstream (sweeps, optimizer, service)
        picks the storage axis up from here.
        """
        stack = self.storage.stack() if self.storage is not None else None
        return self.platform.parameters(mtbf, storage=stack)

    def application_workload(
        self, alpha: Optional[float] = None
    ) -> ApplicationWorkload:
        """Workload, optionally at a swept alpha."""
        return self.workload.workload(
            alpha, library_fraction=self.platform.library_fraction
        )

    def failure_model(self, mtbf: Optional[float] = None):
        """The failure model instance at one platform MTBF."""
        return self.failures.create(self.platform.mtbf if mtbf is None else mtbf)

    def model_kwargs_for(self, protocol: str) -> Dict[str, Any]:
        """Analytical-model constructor options for one protocol."""
        canonical = resolve_protocol(protocol).name
        for name, options in self.model_params:
            if name == canonical:
                return {key: _thaw(value) for key, value in options}
        return {}

    def resolve(
        self,
        protocol: Optional[str] = None,
        *,
        mtbf: Optional[float] = None,
        alpha: Optional[float] = None,
        model_kwargs: Optional[Mapping[str, Any]] = None,
        simulator_kwargs: Optional[Mapping[str, Any]] = None,
    ) -> ResolvedProtocol:
        """Bind one protocol of the scenario to concrete instances.

        Returns the ``(analytical model, simulator, failure model)`` triple
        of :func:`repro.core.registry.resolve`, evaluated at the scenario's
        (or the given) MTBF and alpha.
        """
        name = protocol if protocol is not None else self.protocols[0]
        merged_model_kwargs = {
            **self.model_kwargs_for(name),
            **dict(model_kwargs or {}),
        }
        return resolve(
            name,
            self.parameters(mtbf),
            self.application_workload(alpha),
            failure_model=self.failures.model,
            failure_params=self.failures.params_dict,
            model_kwargs=merged_model_kwargs,
            simulator_kwargs=simulator_kwargs,
        )

    def replace(self, **changes: Any) -> "ScenarioSpec":
        """Return a copy with the given top-level fields replaced."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data (JSON-compatible) form; inverse of :meth:`from_dict`."""
        platform: Dict[str, Any] = {
            "mtbf": self.platform.mtbf,
            "downtime": self.platform.downtime,
            "library_fraction": self.platform.library_fraction,
            "abft_overhead": self.platform.abft_overhead,
            "abft_reconstruction": self.platform.abft_reconstruction,
        }
        if self.platform.checkpoint is not None:
            platform["checkpoint"] = self.platform.checkpoint
        if self.platform.recovery is not None:
            platform["recovery"] = self.platform.recovery
        if self.platform.remainder_recovery is not None:
            platform["remainder_recovery"] = self.platform.remainder_recovery
        data: Dict[str, Any] = {
            "version": SCENARIO_SPEC_VERSION,
            "name": self.name,
            "protocols": list(self.protocols),
            "platform": platform,
            "workload": {
                "total_time": self.workload.total_time,
                "alpha": self.workload.alpha,
                "epochs": self.workload.epochs,
            },
            "failures": {
                "model": self.failures.model,
                "params": self.failures.params_dict,
            },
            "simulation": {
                "validate": self.simulation.validate,
                "runs": self.simulation.runs,
                "seed": self.simulation.seed,
                "backend": self.simulation.backend,
            },
        }
        if self.storage is not None:
            storage: Dict[str, Any] = {"kind": self.storage.kind}
            if self.storage.params:
                storage["params"] = self.storage.params_dict
            if self.storage.data_bytes:
                storage["data_bytes"] = self.storage.data_bytes
            if self.storage.node_count != 1:
                storage["node_count"] = self.storage.node_count
            data["storage"] = storage
        sweep: Dict[str, Any] = {}
        if self.sweep.mtbf_values:
            sweep["mtbf_values"] = list(self.sweep.mtbf_values)
        if self.sweep.alpha_values:
            sweep["alpha_values"] = list(self.sweep.alpha_values)
        if sweep:
            data["sweep"] = sweep
        if self.model_params:
            data["model_params"] = {
                name: {key: _thaw(value) for key, value in options}
                for name, options in self.model_params
            }
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Build (and validate) a spec from plain data.

        Raises :class:`ScenarioSpecError` naming the exact offending path on
        any schema violation, and the registry's unknown-name errors (with
        nearest-match suggestions) for unregistered protocols or failure
        models.
        """
        schema = SCENARIO_SCHEMA[""]
        _check_keys(data, tuple(schema), [f for f, (_, r) in schema.items() if r], "")
        # Forward-migration shim: files without a version field are the
        # pre-storage v1 layout, whose every field is still valid; anything
        # newer than this build cannot be trusted to parse.
        version = data.get("version", 1)
        if isinstance(version, bool) or not isinstance(version, int) or version < 1:
            raise ScenarioSpecError(
                "version", f"expected a positive integer, got {version!r}"
            )
        if version > SCENARIO_SPEC_VERSION:
            raise ScenarioSpecError(
                "version",
                f"document version {version} is newer than the supported "
                f"version {SCENARIO_SPEC_VERSION}; upgrade repro to read it",
            )
        name = data.get("name", "scenario")
        if not isinstance(name, str):
            raise ScenarioSpecError("name", f"expected a string, got {name!r}")
        protocols = data.get(
            "protocols", ["PurePeriodicCkpt", "BiPeriodicCkpt", "ABFT&PeriodicCkpt"]
        )
        if not isinstance(protocols, (list, tuple)) or not all(
            isinstance(p, str) for p in protocols
        ):
            raise ScenarioSpecError(
                "protocols", f"expected a list of strings, got {protocols!r}"
            )
        model_params = data.get("model_params", {})
        if not isinstance(model_params, Mapping):
            raise ScenarioSpecError(
                "model_params",
                f"expected an object, got {type(model_params).__name__}",
            )
        frozen_options = []
        for protocol, options in model_params.items():
            if not isinstance(options, Mapping):
                raise ScenarioSpecError(
                    f"model_params.{protocol}",
                    f"expected an object, got {type(options).__name__}",
                )
            frozen_options.append(
                (protocol, _freeze(options, f"model_params.{protocol}"))
            )
        storage = None
        if data.get("storage") is not None:
            storage = StorageSpec._from_dict(data["storage"], "storage")
        return cls(
            name=name,
            protocols=tuple(protocols),
            platform=PlatformSpec._from_dict(data["platform"], "platform"),
            workload=WorkloadSpec._from_dict(data["workload"], "workload"),
            failures=FailureSpec._from_dict(data.get("failures", {}), "failures"),
            storage=storage,
            sweep=SweepSpec._from_dict(data.get("sweep", {}), "sweep"),
            simulation=SimulationSpec._from_dict(
                data.get("simulation", {}), "simulation"
            ),
            model_params=tuple(frozen_options),
        )

    def to_json(self, *, indent: int = 2) -> str:
        """Serialize to a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def content_hash(self) -> str:
        """SHA-256 content address of the spec (canonical sorted-key JSON).

        Delegates to :func:`repro.campaign.cache.canonical_digest` -- the
        digest behind :class:`~repro.campaign.cache.SweepCache` point keys --
        applied to :meth:`to_dict`, so two logically equal specs share one
        hash regardless of field order, construction path or process: this
        is the key the advisor service's content-addressed answer cache and
        the on-disk sweep caches agree on.  The hash is pinned by a test;
        changing :meth:`to_dict`'s layout invalidates existing caches.

        The ``version`` field is stripped before digesting: it describes
        the file format, not the experiment, so a v1 file and its v2
        re-serialization stay one cache entry.
        """
        from repro.campaign.cache import canonical_digest

        data = self.to_dict()
        data.pop("version", None)
        return canonical_digest(data)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse and validate a JSON document."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioSpecError("", f"invalid JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: "str | Path") -> Path:
        """Write the spec to a JSON file; returns the path."""
        target = Path(path)
        target.write_text(self.to_json() + "\n", encoding="utf-8")
        return target

    @classmethod
    def load(cls, path: "str | Path") -> "ScenarioSpec":
        """Read and validate a spec from a JSON file."""
        source = Path(path)
        if not source.exists():
            raise ScenarioSpecError("", f"scenario file not found: {source}")
        return cls.from_json(source.read_text(encoding="utf-8"))

    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """One-paragraph human summary (used by ``scenario run``)."""
        grid = f"{len(self.mtbf_axis)} MTBF x {len(self.alpha_axis)} alpha"
        failures = self.failures.model
        if self.failures.params:
            args = ", ".join(f"{k}={v!r}" for k, v in self.failures.params)
            failures += f"({args})"
        sim = (
            f"validated with {self.simulation.runs} runs (seed {self.simulation.seed})"
            if self.simulation.validate
            else "model only"
        )
        storage = ""
        if self.storage is not None:
            storage = f"; checkpoints on {self.storage.stack().describe()}"
        return (
            f"scenario {self.name!r}: {', '.join(self.canonical_protocols)} under "
            f"{failures} failures; grid {grid}; {sim}{storage}"
        )
