"""Execute a :class:`ScenarioSpec` end-to-end through the campaign layer.

:func:`run_scenario` is the one call behind both the ``scenario run`` CLI
subcommand and :meth:`Scenario.run`: it lowers the spec onto a
:class:`~repro.campaign.sweep_runner.SweepJob`, runs it (resumably, in
parallel when asked) and wraps the grid in a :class:`ScenarioResult` that
renders the same table/CSV output as the figure harnesses.

When the spec selects a non-exponential failure law *and* asks for the
analytical column, an :class:`ExponentialAssumptionWarning` is emitted: the
closed-form waste formulas of Section IV hold for the memoryless law only,
so the model column is then a reference curve, not a prediction (the
Monte-Carlo column is exact either way).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.campaign.sweep_runner import SweepJob, SweepResult, SweepRunner
from repro.scenario.spec import ScenarioSpec
from repro.utils.tables import Table
from repro.utils.units import MINUTE

__all__ = [
    "ExponentialAssumptionWarning",
    "ScenarioResult",
    "run_scenario",
    "OptimizedPoint",
    "ScenarioOptimizationResult",
    "optimize_scenario",
]


class ExponentialAssumptionWarning(UserWarning):
    """The analytical column was requested under a non-exponential law.

    The Section IV closed forms assume memoryless (exponential) failures;
    under Weibull / log-normal / trace-based laws they are only an
    exponential-equivalent reference.  Compare against the simulated column.
    """


def scenario_sweep_job(spec: ScenarioSpec) -> SweepJob:
    """Lower a scenario spec onto the campaign layer's job description."""
    return SweepJob(
        parameters=spec.parameters(spec.mtbf_axis[0]),
        application_time=spec.workload.total_time,
        mtbf_values=spec.mtbf_axis,
        alpha_values=spec.alpha_axis,
        protocols=spec.canonical_protocols,
        library_fraction=spec.platform.library_fraction,
        epochs=spec.workload.epochs,
        simulate=spec.simulation.validate,
        simulation_runs=spec.simulation.runs,
        seed=spec.simulation.seed,
        failure_model=spec.failures.model,
        failure_params=spec.failures.params,
        model_params=spec.model_params,
        backend=spec.simulation.backend,
    )


@dataclass(frozen=True)
class ScenarioResult:
    """A scenario's evaluated grid, with the spec that produced it."""

    spec: ScenarioSpec
    sweep: SweepResult

    @property
    def points(self):
        """The evaluated grid points, MTBF-major."""
        return self.sweep.points

    @property
    def validated(self) -> bool:
        """Whether the Monte-Carlo columns are present."""
        return self.spec.simulation.validate

    def waste_grid(self, protocol: str, *, simulated: bool = False) -> dict:
        """Map ``(mtbf, alpha) -> waste`` for one protocol."""
        return self.sweep.waste_grid(protocol, simulated=simulated)

    @property
    def truncated_trials(self) -> int:
        """Total truncated trials over all grid points and protocols.

        Non-zero counts flag infeasible regimes (a simulated execution hit
        the ``max_slowdown`` cap); the affected campaigns report a waste of
        ~1 rather than looping forever.
        """
        return sum(
            point.truncated_trials(name)
            for point in self.points
            for name in self.spec.canonical_protocols
        )

    def to_table(self) -> Table:
        """Render the grid as the paper-style series table."""
        protocols = self.spec.canonical_protocols
        headers = ["mtbf_minutes", "alpha"]
        headers.extend(f"model_waste[{name}]" for name in protocols)
        if self.validated:
            headers.extend(f"sim_waste[{name}]" for name in protocols)
        table = Table(headers, title=self.spec.describe())
        for point in self.points:
            cells: list = [point.mtbf / MINUTE, point.alpha]
            cells.extend(point.model_waste.get(name, float("nan")) for name in protocols)
            if self.validated:
                cells.extend(
                    point.simulated_waste.get(name, float("nan"))
                    for name in protocols
                )
            table.add_row(cells)
        return table

    def write_csv(self, path: "str | Path") -> Path:
        """Write the series table as CSV."""
        return self.to_table().write(path)


def run_scenario(
    spec: ScenarioSpec,
    *,
    validate: Optional[bool] = None,
    runs: Optional[int] = None,
    seed: Optional[int] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    cache_dir: Optional["str | Path"] = None,
    resume: bool = True,
    vectorized: bool = True,
) -> ScenarioResult:
    """Run a scenario spec end-to-end and return its grid.

    Parameters
    ----------
    spec:
        The scenario to run.
    validate / runs / seed / backend:
        Override the spec's ``simulation`` section (CLI flags land here);
        ``None`` keeps the spec's values.  ``backend`` selects the
        Monte-Carlo engine (``"event"``, ``"vectorized"`` or ``"auto"``).
    workers / cache_dir / resume / vectorized:
        Campaign execution knobs, as in
        :class:`~repro.campaign.sweep_runner.SweepRunner` (``vectorized``
        here refers to the *analytical grid* evaluation, not the
        Monte-Carlo engine backend).
    """
    simulation = spec.simulation
    changes = {}
    if validate is not None:
        changes["validate"] = bool(validate)
    if runs is not None:
        changes["runs"] = int(runs)
    if seed is not None:
        changes["seed"] = int(seed)
    if backend is not None:
        changes["backend"] = str(backend)
    if changes:
        import dataclasses

        spec = spec.replace(simulation=dataclasses.replace(simulation, **changes))

    if spec.simulation.validate and not spec.failures.is_exponential:
        warnings.warn(
            f"scenario {spec.name!r} simulates {spec.failures.model!r} failures; "
            "the analytical (model_waste) column assumes exponential failures "
            "and is only an exponential-equivalent reference here",
            ExponentialAssumptionWarning,
            stacklevel=2,
        )

    runner = SweepRunner(
        cache_dir=cache_dir,
        resume=resume,
        workers=workers,
        vectorized=vectorized,
    )
    sweep = runner.run(scenario_sweep_job(spec))
    return ScenarioResult(spec=spec, sweep=sweep)


# ---------------------------------------------------------------------- #
# Numeric period optimization over a scenario grid
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class OptimizedPoint:
    """One grid point of an optimized scenario.

    ``optima`` maps each canonical protocol name to its
    :class:`~repro.optimize.period.PeriodOptimum`; ``winner`` is the
    protocol with the lowest optimized waste (ties break towards the
    scenario's protocol order).
    """

    mtbf: float
    alpha: float
    optima: Dict[str, "object"]
    winner: str

    def waste(self, protocol: str) -> float:
        """Minimal waste of one protocol at this point."""
        return self.optima[protocol].waste


@dataclass(frozen=True)
class ScenarioOptimizationResult:
    """Per-point numeric optima and winners over a scenario's grid."""

    spec: ScenarioSpec
    points: Tuple[OptimizedPoint, ...]

    def winner_grid(self) -> Dict[Tuple[float, float], str]:
        """Map ``(mtbf, alpha) -> winning protocol``."""
        return {(p.mtbf, p.alpha): p.winner for p in self.points}

    def to_table(self) -> Table:
        """Paper-style series table: optimal period and waste per protocol."""
        protocols = self.spec.canonical_protocols
        headers = ["mtbf_minutes", "alpha", "winner"]
        headers.extend(f"opt_waste[{name}]" for name in protocols)
        headers.extend(f"opt_period[{name}]" for name in protocols)
        table = Table(
            headers,
            title=f"optimized {self.spec.describe()}",
        )
        for point in self.points:
            cells: list = [point.mtbf / MINUTE, point.alpha, point.winner]
            cells.extend(point.optima[name].waste for name in protocols)
            for name in protocols:
                periods = point.optima[name].periods
                finite = [
                    value
                    for value in periods.values()
                    if value == value  # not NaN
                ]
                cells.append(min(finite) if finite else float("nan"))
            table.add_row(cells)
        return table

    def write_csv(self, path: "str | Path") -> Path:
        """Write the series table as CSV."""
        return self.to_table().write(path)

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible form: the spec plus per-point optima and winners.

        This is the machine-readable shape behind both ``optimize compare
        --json`` (printed to stdout) and the advisor service's ``/compare``
        endpoint, so scripted consumers see one layout everywhere.  Non-
        finite periods serialize as ``null`` (via
        :meth:`~repro.optimize.period.PeriodOptimum.to_dict`).
        """
        protocols = self.spec.canonical_protocols
        return {
            "spec": self.spec.to_dict(),
            "content_hash": self.spec.content_hash(),
            "protocols": list(protocols),
            "points": [
                {
                    "mtbf": point.mtbf,
                    "alpha": point.alpha,
                    "winner": point.winner,
                    "optima": {
                        name: point.optima[name].to_dict() for name in protocols
                    },
                }
                for point in self.points
            ],
        }


def optimize_scenario(
    spec: ScenarioSpec,
    *,
    protocols: Optional[Tuple[str, ...]] = None,
    rtol: float = 1e-10,
) -> ScenarioOptimizationResult:
    """Numerically optimize every protocol over a scenario's sweep grid.

    For each ``(mtbf, alpha)`` grid point of the spec, every protocol's
    tunable periods are optimized with
    :func:`repro.optimize.period.optimize_period` (honouring the spec's
    ``model_params``, e.g. the composite's ``per_epoch=False``) and the
    protocol with the lowest optimized waste is named the point's winner.

    This is the analytical strategy advisor behind ``optimize compare``;
    Monte-Carlo refinement and the four-axis regime maps live in
    :mod:`repro.optimize.refine` / :mod:`repro.optimize.regime`.
    """
    from repro.core.registry import resolve_protocol
    from repro.optimize.period import optimize_period

    names = tuple(
        resolve_protocol(name).name
        for name in (protocols if protocols is not None else spec.protocols)
    )
    points: list[OptimizedPoint] = []
    for mtbf in spec.mtbf_axis:
        parameters = spec.parameters(mtbf)
        for alpha in spec.alpha_axis:
            workload = spec.application_workload(alpha)
            optima = {
                name: optimize_period(
                    name,
                    parameters,
                    workload,
                    model_kwargs=spec.model_kwargs_for(name),
                    rtol=rtol,
                )
                for name in names
            }
            winner = min(names, key=lambda name: (optima[name].waste,))
            points.append(
                OptimizedPoint(
                    mtbf=float(mtbf),
                    alpha=float(alpha),
                    optima=optima,
                    winner=winner,
                )
            )
    result_spec = spec if protocols is None else spec.replace(protocols=names)
    return ScenarioOptimizationResult(spec=result_spec, points=tuple(points))
