"""Fluent builder for :class:`~repro.scenario.spec.ScenarioSpec`.

The builder is the ergonomic front door of the scenario API::

    spec = (Scenario.paper_figure7()
            .with_failures("weibull", shape=0.7)
            .with_protocols("BiPeriodicCkpt")
            .build())

Every ``with_*`` method returns a *new* builder (builders are immutable), so
partially configured builders can be shared and forked safely -- e.g. one
base scenario forked into one builder per failure law in a sensitivity
study.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Any, Optional, Sequence, Tuple

from repro.scenario.spec import (
    FailureSpec,
    PlatformSpec,
    ScenarioSpec,
    ScenarioSpecError,
    SimulationSpec,
    StorageSpec,
    SweepSpec,
    WorkloadSpec,
    _freeze,
)
from repro.utils.units import MINUTE, WEEK

__all__ = ["Scenario"]


@dataclass(frozen=True)
class Scenario:
    """Immutable fluent builder producing validated :class:`ScenarioSpec` values."""

    _name: str = "scenario"
    _protocols: Tuple[str, ...] = (
        "PurePeriodicCkpt",
        "BiPeriodicCkpt",
        "ABFT&PeriodicCkpt",
    )
    _platform: Optional[PlatformSpec] = None
    _workload: Optional[WorkloadSpec] = None
    _failures: FailureSpec = field(default_factory=FailureSpec)
    _storage: Optional[StorageSpec] = None
    _sweep: SweepSpec = field(default_factory=SweepSpec)
    _simulation: SimulationSpec = field(default_factory=SimulationSpec)
    _model_params: Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...] = ()

    # ------------------------------------------------------------------ #
    # Starting points
    # ------------------------------------------------------------------ #
    @classmethod
    def paper_figure7(cls) -> "Scenario":
        """The Figure 7 scenario exactly as in the paper's caption.

        One-week application, ``C = R = 10`` minutes, ``D = 1`` minute,
        ``rho = 0.8``, ``phi = 1.03``, ``Recons_ABFT = 2`` s, MTBF swept over
        60-240 minutes and alpha over [0, 1].
        """
        return cls(
            _name="paper-figure7",
            _platform=PlatformSpec(
                mtbf=120 * MINUTE,
                checkpoint=10 * MINUTE,
                recovery=10 * MINUTE,
                downtime=1 * MINUTE,
                library_fraction=0.8,
                abft_overhead=1.03,
                abft_reconstruction=2.0,
            ),
            _workload=WorkloadSpec(total_time=1 * WEEK, alpha=0.8, epochs=1),
            _sweep=SweepSpec(
                mtbf_values=tuple(float(m) * MINUTE for m in range(60, 241, 20)),
                alpha_values=tuple(round(i / 10.0, 3) for i in range(11)),
            ),
        )

    @classmethod
    def quick(cls) -> "Scenario":
        """A small, fast scenario for smoke tests and CI.

        Same parameters as Figure 7 but a 4 x 3 grid and a short (one-day)
        application, so a validated run completes in seconds.
        """
        return cls.paper_figure7().named("quick").with_workload(
            total_time=86_400.0
        ).with_sweep(
            mtbf_values=tuple(float(m) * MINUTE for m in (60, 120, 180, 240)),
            alpha_values=(0.0, 0.5, 1.0),
        )

    # ------------------------------------------------------------------ #
    # Fluent configuration
    # ------------------------------------------------------------------ #
    def named(self, name: str) -> "Scenario":
        """Set the scenario label."""
        return replace(self, _name=str(name))

    def with_protocols(self, *names: str) -> "Scenario":
        """Select the protocols to evaluate (names or aliases)."""
        if not names:
            raise ScenarioSpecError("protocols", "must name at least one protocol")
        return replace(self, _protocols=tuple(names))

    #: Singular alias, reading naturally when selecting one protocol.
    with_protocol = with_protocols

    def with_platform(self, **kwargs: Any) -> "Scenario":
        """Set or update platform/cost fields (see :class:`PlatformSpec`)."""
        if self._platform is None:
            return replace(self, _platform=PlatformSpec(**kwargs))
        return replace(self, _platform=dataclasses.replace(self._platform, **kwargs))

    def with_mtbf(self, mtbf: float) -> "Scenario":
        """Shorthand for ``with_platform(mtbf=...)``."""
        return self.with_platform(mtbf=float(mtbf))

    def with_workload(self, **kwargs: Any) -> "Scenario":
        """Set or update workload fields (see :class:`WorkloadSpec`)."""
        if self._workload is None:
            return replace(self, _workload=WorkloadSpec(**kwargs))
        return replace(self, _workload=dataclasses.replace(self._workload, **kwargs))

    def with_failures(self, model: str, **params: Any) -> "Scenario":
        """Select the failure law, e.g. ``with_failures("weibull", shape=0.7)``."""
        return replace(
            self,
            _failures=FailureSpec(
                model=model, params=_freeze(params, "failures.params")
            ),
        )

    def with_storage(
        self,
        kind: str,
        *,
        data_bytes: float = 0.0,
        node_count: int = 1,
        **params: Any,
    ) -> "Scenario":
        """Checkpoint on a registered storage stack instead of scalar costs.

        E.g. ``with_storage("multi-level", data_bytes=64e12,
        node_count=1000, local={"kind": "nvram", "params": {...}},
        remote={"kind": "pfs", "params": {...}}, remote_fraction=0.3)``.
        Nested media are plain ``{"kind", "params"}`` trees, exactly as in
        the scenario JSON.  ``platform.checkpoint`` becomes optional.
        """
        return replace(
            self,
            _storage=StorageSpec(
                kind=str(kind),
                params=_freeze(params, "storage.params"),
                data_bytes=float(data_bytes),
                node_count=int(node_count),
            ),
        )

    def with_model_params(self, protocol: str, **options: Any) -> "Scenario":
        """Set analytical-model constructor options for one protocol.

        E.g. ``with_model_params("ABFT&PeriodicCkpt", per_epoch=False)`` for
        the weak-scaling reading of the composite model.
        """
        kept = tuple(
            (name, opts) for name, opts in self._model_params if name != protocol
        )
        entry = (protocol, _freeze(options, f"model_params.{protocol}"))
        return replace(self, _model_params=(*kept, entry))

    def with_sweep(
        self,
        *,
        mtbf_values: Sequence[float] = (),
        alpha_values: Sequence[float] = (),
    ) -> "Scenario":
        """Set the sweep axes; empty axes keep the point values."""
        return replace(
            self,
            _sweep=SweepSpec(
                mtbf_values=tuple(float(m) for m in mtbf_values),
                alpha_values=tuple(float(a) for a in alpha_values),
            ),
        )

    def with_simulation(
        self,
        *,
        validate: bool = True,
        runs: Optional[int] = None,
        seed: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> "Scenario":
        """Enable (or configure) the Monte-Carlo validation campaigns.

        ``backend`` selects the engine: ``"event"`` (default),
        ``"vectorized"`` (across-trials NumPy engine, bit-identical where
        supported) or ``"auto"``.
        """
        current = self._simulation
        return replace(
            self,
            _simulation=SimulationSpec(
                validate=validate,
                runs=current.runs if runs is None else int(runs),
                seed=current.seed if seed is None else int(seed),
                backend=current.backend if backend is None else str(backend),
            ),
        )

    # ------------------------------------------------------------------ #
    def build(self) -> ScenarioSpec:
        """Validate and return the immutable :class:`ScenarioSpec`."""
        if self._platform is None:
            raise ScenarioSpecError(
                "platform",
                "not configured; start from Scenario.paper_figure7() or call "
                "with_platform(mtbf=..., checkpoint=...)",
            )
        if self._workload is None:
            raise ScenarioSpecError(
                "workload",
                "not configured; call with_workload(total_time=..., alpha=...)",
            )
        return ScenarioSpec(
            name=self._name,
            protocols=self._protocols,
            platform=self._platform,
            workload=self._workload,
            failures=self._failures,
            storage=self._storage,
            sweep=self._sweep,
            simulation=self._simulation,
            model_params=self._model_params,
        )

    def run(self, **kwargs: Any):
        """Build the spec and run it (see :func:`repro.scenario.run_scenario`)."""
        from repro.scenario.runner import run_scenario

        return run_scenario(self.build(), **kwargs)
